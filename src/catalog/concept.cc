#include "catalog/concept.h"

#include <deque>

#include "util/string_util.h"

namespace gaea {

void ConceptDef::Serialize(BinaryWriter* w) const {
  w->PutU32(id);
  w->PutString(name);
  w->PutString(doc);
  w->PutU32(static_cast<uint32_t>(member_classes.size()));
  for (ClassId cid : member_classes) w->PutU32(cid);
}

StatusOr<ConceptDef> ConceptDef::Deserialize(BinaryReader* r) {
  ConceptDef def;
  GAEA_ASSIGN_OR_RETURN(def.id, r->GetU32());
  GAEA_ASSIGN_OR_RETURN(def.name, r->GetString());
  GAEA_ASSIGN_OR_RETURN(def.doc, r->GetString());
  GAEA_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
  for (uint32_t i = 0; i < n; ++i) {
    GAEA_ASSIGN_OR_RETURN(ClassId cid, r->GetU32());
    def.member_classes.insert(cid);
  }
  return def;
}

StatusOr<ConceptId> ConceptRegistry::Register(ConceptDef def) {
  if (!IsIdentifier(def.name)) {
    return Status::InvalidArgument("bad concept name: '" + def.name + "'");
  }
  if (by_name_.count(def.name) > 0) {
    return Status::AlreadyExists("concept already defined: " + def.name);
  }
  ConceptId id = def.id;
  if (id == kInvalidConceptId) {
    id = next_id_;
    def.id = id;
  }
  if (by_id_.count(id) > 0) {
    return Status::AlreadyExists("concept id already in use: " +
                                 std::to_string(id));
  }
  next_id_ = std::max(next_id_, id + 1);
  by_name_[def.name] = id;
  by_id_.emplace(id, std::move(def));
  return id;
}

StatusOr<const ConceptDef*> ConceptRegistry::LookupByName(
    const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("concept not defined: " + name);
  }
  return &by_id_.at(it->second);
}

StatusOr<const ConceptDef*> ConceptRegistry::LookupById(ConceptId id) const {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return Status::NotFound("concept id not defined: " + std::to_string(id));
  }
  return &it->second;
}

bool ConceptRegistry::Contains(const std::string& name) const {
  return by_name_.count(name) > 0;
}

bool ConceptRegistry::WouldCreateCycle(ConceptId child,
                                       ConceptId parent) const {
  // A cycle appears iff `child` is already an ancestor of `parent`.
  if (child == parent) return true;
  std::deque<ConceptId> frontier{parent};
  std::set<ConceptId> seen;
  while (!frontier.empty()) {
    ConceptId cur = frontier.front();
    frontier.pop_front();
    auto it = parents_.find(cur);
    if (it == parents_.end()) continue;
    for (ConceptId up : it->second) {
      if (up == child) return true;
      if (seen.insert(up).second) frontier.push_back(up);
    }
  }
  return false;
}

Status ConceptRegistry::AddIsA(ConceptId child, ConceptId parent) {
  if (by_id_.count(child) == 0 || by_id_.count(parent) == 0) {
    return Status::NotFound("ISA endpoints must be registered concepts");
  }
  if (WouldCreateCycle(child, parent)) {
    return Status::InvalidArgument(
        "ISA edge would create a cycle in the specialization hierarchy");
  }
  parents_[child].insert(parent);
  children_[parent].insert(child);
  return Status::OK();
}

Status ConceptRegistry::AddMemberClass(ConceptId concept_id,
                                       ClassId class_id) {
  auto it = by_id_.find(concept_id);
  if (it == by_id_.end()) {
    return Status::NotFound("concept id not defined: " +
                            std::to_string(concept_id));
  }
  it->second.member_classes.insert(class_id);
  return Status::OK();
}

std::vector<ConceptId> ConceptRegistry::Parents(ConceptId id) const {
  auto it = parents_.find(id);
  if (it == parents_.end()) return {};
  return std::vector<ConceptId>(it->second.begin(), it->second.end());
}

std::vector<ConceptId> ConceptRegistry::Children(ConceptId id) const {
  auto it = children_.find(id);
  if (it == children_.end()) return {};
  return std::vector<ConceptId>(it->second.begin(), it->second.end());
}

namespace {
StatusOr<std::set<ConceptId>> Closure(
    ConceptId id, const std::map<ConceptId, std::set<ConceptId>>& edges,
    const std::map<ConceptId, ConceptDef>& known) {
  if (known.count(id) == 0) {
    return Status::NotFound("concept id not defined: " + std::to_string(id));
  }
  std::set<ConceptId> out;
  std::deque<ConceptId> frontier{id};
  while (!frontier.empty()) {
    ConceptId cur = frontier.front();
    frontier.pop_front();
    auto it = edges.find(cur);
    if (it == edges.end()) continue;
    for (ConceptId next : it->second) {
      if (out.insert(next).second) frontier.push_back(next);
    }
  }
  return out;
}
}  // namespace

StatusOr<std::set<ConceptId>> ConceptRegistry::Ancestors(ConceptId id) const {
  return Closure(id, parents_, by_id_);
}

StatusOr<std::set<ConceptId>> ConceptRegistry::Descendants(
    ConceptId id) const {
  return Closure(id, children_, by_id_);
}

StatusOr<std::set<ClassId>> ConceptRegistry::CoveredClasses(
    ConceptId id) const {
  GAEA_ASSIGN_OR_RETURN(const ConceptDef* def, LookupById(id));
  std::set<ClassId> out = def->member_classes;
  GAEA_ASSIGN_OR_RETURN(std::set<ConceptId> down, Descendants(id));
  for (ConceptId cid : down) {
    const ConceptDef& d = by_id_.at(cid);
    out.insert(d.member_classes.begin(), d.member_classes.end());
  }
  return out;
}

std::vector<ConceptId> ConceptRegistry::ConceptsOfClass(
    ClassId class_id) const {
  std::vector<ConceptId> out;
  for (const auto& [id, def] : by_id_) {
    if (def.member_classes.count(class_id) > 0) out.push_back(id);
  }
  return out;
}

std::vector<const ConceptDef*> ConceptRegistry::List() const {
  std::vector<const ConceptDef*> out;
  out.reserve(by_id_.size());
  for (const auto& [id, def] : by_id_) out.push_back(&def);
  return out;
}

std::vector<std::pair<ConceptId, ConceptId>> ConceptRegistry::IsAEdges()
    const {
  std::vector<std::pair<ConceptId, ConceptId>> out;
  for (const auto& [child, parents] : parents_) {
    for (ConceptId parent : parents) out.emplace_back(child, parent);
  }
  return out;
}

}  // namespace gaea
