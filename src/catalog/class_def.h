// Non-primitive class definitions (paper §2.1.1-2.1.2).
//
// A non-primitive class is the unit of the derivation semantics layer: a
// named record type whose attributes are primitive classes, plus the two
// orthogonal extents (SPATIAL EXTENT / TEMPORAL EXTENT) and, for derived
// classes, the DERIVED BY process that uniquely defines it. The paper's
// example:
//
//   CLASS landcover (
//     ATTRIBUTES: area = char16; ... data = image;
//     SPATIAL EXTENT: spatialextent = box;
//     TEMPORAL EXTENT: timestamp = abstime;
//     DERIVED BY: unsupervised-classification )

#ifndef GAEA_CATALOG_CLASS_DEF_H_
#define GAEA_CATALOG_CLASS_DEF_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "types/value.h"
#include "util/serialize.h"
#include "util/status.h"

namespace gaea {

using ClassId = uint32_t;
constexpr ClassId kInvalidClassId = 0;

// One attribute of a non-primitive class.
struct AttributeDef {
  std::string name;
  TypeId type = TypeId::kNull;
  // The DDL spelling ("char16", "float4", ...), kept for display fidelity.
  std::string ddl_type;
  std::string doc;
};

enum class ClassKind : uint8_t {
  kBase = 0,     // well-known source data (Landsat TM, census, rainfall)
  kDerived = 1,  // defined uniquely by its derivation process
};

// Definition of one non-primitive class.
class ClassDef {
 public:
  ClassDef() = default;
  ClassDef(std::string name, ClassKind kind)
      : name_(std::move(name)), kind_(kind) {}

  const std::string& name() const { return name_; }
  ClassId id() const { return id_; }
  void set_id(ClassId id) { id_ = id; }
  ClassKind kind() const { return kind_; }

  // Adds a regular attribute. Rejects duplicates and reserved names.
  Status AddAttribute(AttributeDef attr);
  // Declares the spatial-extent attribute (type box).
  Status SetSpatialExtent(const std::string& attr_name);
  // Declares the temporal-extent attribute (type abstime).
  Status SetTemporalExtent(const std::string& attr_name);
  // Names the process deriving this class (derived classes only).
  Status SetDerivedBy(const std::string& process_name);

  const std::vector<AttributeDef>& attributes() const { return attributes_; }
  // Index of `name` in attributes(), or kNotFound.
  StatusOr<size_t> AttributeIndex(const std::string& name) const;
  StatusOr<const AttributeDef*> FindAttribute(const std::string& name) const;

  const std::string& spatial_attr() const { return spatial_attr_; }
  const std::string& temporal_attr() const { return temporal_attr_; }
  bool has_spatial_extent() const { return !spatial_attr_.empty(); }
  bool has_temporal_extent() const { return !temporal_attr_.empty(); }
  const std::string& derived_by() const { return derived_by_; }

  // Structural validation: derived classes must name a process; extent
  // attributes must exist with box/abstime types.
  Status Validate() const;

  // DDL-like rendering (used by the catalog browser and tests).
  std::string ToDdl() const;

  void Serialize(BinaryWriter* w) const;
  static StatusOr<ClassDef> Deserialize(BinaryReader* r);

 private:
  std::string name_;
  ClassId id_ = kInvalidClassId;
  ClassKind kind_ = ClassKind::kBase;
  std::vector<AttributeDef> attributes_;
  std::string spatial_attr_;
  std::string temporal_attr_;
  std::string derived_by_;
};

// In-memory registry of class definitions, id- and name-addressed.
class ClassRegistry {
 public:
  ClassRegistry() = default;
  ClassRegistry(const ClassRegistry&) = delete;
  ClassRegistry& operator=(const ClassRegistry&) = delete;

  // Validates and registers, assigning the next class id (or honoring a
  // pre-set one on replay). Name collisions are rejected: a class is
  // uniquely defined by its derivation, never redefined.
  StatusOr<ClassId> Register(ClassDef def);

  StatusOr<const ClassDef*> LookupByName(const std::string& name) const;
  StatusOr<const ClassDef*> LookupById(ClassId id) const;
  bool Contains(const std::string& name) const;

  std::vector<const ClassDef*> List() const;
  // Ids of classes derived by `process_name`.
  std::vector<ClassId> DerivedBy(const std::string& process_name) const;

  size_t size() const { return by_id_.size(); }

 private:
  std::map<ClassId, ClassDef> by_id_;
  std::map<std::string, ClassId> by_name_;
  ClassId next_id_ = 1;
};

}  // namespace gaea

#endif  // GAEA_CATALOG_CLASS_DEF_H_
