#include "catalog/data_object.h"

#include <sstream>

namespace gaea {

DataObject::DataObject(const ClassDef& def)
    : class_id_(def.id()), values_(def.attributes().size()) {}

StatusOr<Value> DataObject::Get(const ClassDef& def,
                                const std::string& attr) const {
  GAEA_ASSIGN_OR_RETURN(size_t idx, def.AttributeIndex(attr));
  if (idx >= values_.size()) {
    return Status::Internal("object value vector shorter than class schema");
  }
  return values_[idx];
}

Status DataObject::Set(const ClassDef& def, const std::string& attr,
                       Value value) {
  GAEA_ASSIGN_OR_RETURN(size_t idx, def.AttributeIndex(attr));
  if (idx >= values_.size()) values_.resize(def.attributes().size());
  const AttributeDef& adef = def.attributes()[idx];
  if (!value.is_null() && value.type() != adef.type &&
      !(adef.type == TypeId::kDouble && value.type() == TypeId::kInt)) {
    return Status::InvalidArgument(
        "attribute " + def.name() + "." + attr + " expects " +
        TypeIdName(adef.type) + ", got " + TypeIdName(value.type()));
  }
  values_[idx] = std::move(value);
  return Status::OK();
}

StatusOr<const Value*> DataObject::At(size_t index) const {
  if (index >= values_.size()) {
    return Status::OutOfRange("attribute index " + std::to_string(index) +
                              " out of range");
  }
  return &values_[index];
}

StatusOr<Box> DataObject::SpatialExtent(const ClassDef& def) const {
  if (!def.has_spatial_extent()) {
    return Status::FailedPrecondition("class " + def.name() +
                                      " has no spatial extent");
  }
  GAEA_ASSIGN_OR_RETURN(Value v, Get(def, def.spatial_attr()));
  return v.AsBox();
}

StatusOr<AbsTime> DataObject::Timestamp(const ClassDef& def) const {
  if (!def.has_temporal_extent()) {
    return Status::FailedPrecondition("class " + def.name() +
                                      " has no temporal extent");
  }
  GAEA_ASSIGN_OR_RETURN(Value v, Get(def, def.temporal_attr()));
  return v.AsTime();
}

Status DataObject::TypeCheck(const ClassDef& def) const {
  if (class_id_ != def.id()) {
    return Status::InvalidArgument("object class id " +
                                   std::to_string(class_id_) +
                                   " does not match class " + def.name());
  }
  if (values_.size() != def.attributes().size()) {
    return Status::InvalidArgument(
        "object has " + std::to_string(values_.size()) + " values, class " +
        def.name() + " declares " +
        std::to_string(def.attributes().size()) + " attributes");
  }
  for (size_t i = 0; i < values_.size(); ++i) {
    const Value& v = values_[i];
    const AttributeDef& adef = def.attributes()[i];
    if (v.is_null()) continue;
    if (v.type() != adef.type &&
        !(adef.type == TypeId::kDouble && v.type() == TypeId::kInt)) {
      return Status::InvalidArgument(
          "attribute " + def.name() + "." + adef.name + " expects " +
          TypeIdName(adef.type) + ", got " + TypeIdName(v.type()));
    }
  }
  return Status::OK();
}

std::string DataObject::ToString(const ClassDef& def) const {
  std::ostringstream os;
  os << def.name() << "#" << oid_ << "{";
  for (size_t i = 0; i < values_.size() && i < def.attributes().size(); ++i) {
    if (i > 0) os << ", ";
    os << def.attributes()[i].name << "=" << values_[i].ToString();
  }
  os << "}";
  return os.str();
}

void DataObject::Serialize(BinaryWriter* w) const {
  w->PutU64(oid_);
  w->PutU32(class_id_);
  w->PutU32(static_cast<uint32_t>(values_.size()));
  for (const Value& v : values_) v.Serialize(w);
}

StatusOr<DataObject> DataObject::Deserialize(BinaryReader* r) {
  DataObject obj;
  GAEA_ASSIGN_OR_RETURN(obj.oid_, r->GetU64());
  GAEA_ASSIGN_OR_RETURN(obj.class_id_, r->GetU32());
  GAEA_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
  obj.values_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    GAEA_ASSIGN_OR_RETURN(Value v, Value::Deserialize(r));
    obj.values_.push_back(std::move(v));
  }
  return obj;
}

}  // namespace gaea
