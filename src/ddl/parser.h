// Recursive-descent parser for the Gaea definition language.
//
// Statements:
//
//   CLASS landcover (
//     ATTRIBUTES:
//       area = char16;          // comments allowed
//       numclass = int4;
//       data = image;
//     SPATIAL EXTENT:  spatialextent = box;
//     TEMPORAL EXTENT: timestamp = abstime;
//     DERIVED BY: unsupervised-classification
//   )
//
//   DEFINE PROCESS unsupervised-classification
//   OUTPUT landcover
//   ARGUMENT ( SETOF landsat_tm bands MIN 3 )
//   PARAMETERS { numclass = 12; }
//   TEMPLATE {
//     ASSERTIONS:
//       card(bands) >= 3;
//       common(bands.spatialextent);
//     MAPPINGS:
//       landcover.data = unsuperclassify(composite(bands.data), $numclass);
//       landcover.spatialextent = ANYOF bands.spatialextent;
//   }
//
//   DEFINE CONCEPT desert DOC "imprecise: arid regions" ISA region
//     MEMBERS (hot_desert_class, ice_desert_class)
//
// The parser builds catalog/core definition objects but does not register
// them — the kernel applies parsed statements transactionally.

#ifndef GAEA_DDL_PARSER_H_
#define GAEA_DDL_PARSER_H_

#include <string>
#include <variant>
#include <vector>

#include "catalog/class_def.h"
#include "core/process.h"
#include "ddl/lexer.h"
#include "util/status.h"

namespace gaea {

// A parsed DEFINE CONCEPT statement (registration is name-based and happens
// at apply time, after referenced concepts/classes exist).
struct ConceptStmt {
  std::string name;
  std::string doc;
  std::vector<std::string> isa_parents;
  std::vector<std::string> member_classes;
};

using ParsedStatement = std::variant<ClassDef, ProcessDef, ConceptStmt>;

// A statement plus the 1-based source line its first token sits on, so
// downstream consumers (the linter) can anchor diagnostics to DDL lines.
struct LocatedStatement {
  ParsedStatement stmt;
  int line = 0;
};

// Parses a script of zero or more statements.
StatusOr<std::vector<ParsedStatement>> ParseScript(const std::string& source);

// Like ParseScript, but records the source line of each statement.
StatusOr<std::vector<LocatedStatement>> ParseScriptLocated(
    const std::string& source);

// Parses exactly one statement.
StatusOr<ParsedStatement> ParseStatement(const std::string& source);

}  // namespace gaea

#endif  // GAEA_DDL_PARSER_H_
