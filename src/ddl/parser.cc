#include "ddl/parser.h"

#include <cstdlib>

#include "util/string_util.h"

namespace gaea {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<std::vector<ParsedStatement>> Script() {
    std::vector<ParsedStatement> out;
    while (!Peek().Is(TokenKind::kEof)) {
      GAEA_ASSIGN_OR_RETURN(ParsedStatement stmt, Statement());
      out.push_back(std::move(stmt));
    }
    return out;
  }

  StatusOr<std::vector<LocatedStatement>> ScriptLocated() {
    std::vector<LocatedStatement> out;
    while (!Peek().Is(TokenKind::kEof)) {
      int line = Peek().line;
      GAEA_ASSIGN_OR_RETURN(ParsedStatement stmt, Statement());
      out.push_back(LocatedStatement{std::move(stmt), line});
    }
    return out;
  }

  StatusOr<ParsedStatement> Statement() {
    const Token& tok = Peek();
    if (tok.IsKeyword("class")) return ClassStatement();
    if (tok.IsKeyword("define")) {
      const Token& next = Peek(1);
      if (next.IsKeyword("process")) return ProcessStatement();
      if (next.IsKeyword("concept")) return ConceptStatement();
      return Error("expected PROCESS or CONCEPT after DEFINE");
    }
    return Error("expected CLASS or DEFINE, got '" + tok.text + "'");
  }

 private:
  // ---- plumbing ----

  const Token& Peek(size_t ahead = 0) const {
    size_t idx = pos_ + ahead;
    if (idx >= tokens_.size()) idx = tokens_.size() - 1;  // EOF token
    return tokens_[idx];
  }
  Token Take() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  Status Error(const std::string& msg) const {
    const Token& tok = Peek();
    return Status::InvalidArgument(
        "DDL parse error at line " + std::to_string(tok.line) + ":" +
        std::to_string(tok.column) + ": " + msg);
  }

  StatusOr<Token> Expect(TokenKind kind) {
    if (!Peek().Is(kind)) {
      return Error(std::string("expected ") + TokenKindName(kind) + ", got '" +
                   Peek().text + "'");
    }
    return Take();
  }

  StatusOr<std::string> ExpectIdentifier() {
    GAEA_ASSIGN_OR_RETURN(Token tok, Expect(TokenKind::kIdentifier));
    return tok.text;
  }

  Status ExpectKeyword(const char* keyword) {
    if (!Peek().IsKeyword(keyword)) {
      return Error(std::string("expected keyword '") + keyword + "', got '" +
                   Peek().text + "'");
    }
    Take();
    return Status::OK();
  }

  bool ConsumeKeyword(const char* keyword) {
    if (Peek().IsKeyword(keyword)) {
      Take();
      return true;
    }
    return false;
  }

  StatusOr<Value> NumberValue(const std::string& spelling) {
    if (spelling.find('.') != std::string::npos) {
      return Value::Double(std::strtod(spelling.c_str(), nullptr));
    }
    return Value::Int(std::strtoll(spelling.c_str(), nullptr, 10));
  }

  // ---- CLASS ----

  StatusOr<ParsedStatement> ClassStatement() {
    GAEA_RETURN_IF_ERROR(ExpectKeyword("class"));
    GAEA_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    GAEA_RETURN_IF_ERROR(Expect(TokenKind::kLParen).status());
    ClassDef def(name, ClassKind::kBase);
    while (!Peek().Is(TokenKind::kRParen)) {
      if (ConsumeKeyword("attributes")) {
        GAEA_RETURN_IF_ERROR(Expect(TokenKind::kColon).status());
        GAEA_RETURN_IF_ERROR(AttributeList(&def, ""));
      } else if (Peek().IsKeyword("spatial") || Peek().IsKeyword("temporal")) {
        bool spatial = Peek().IsKeyword("spatial");
        Take();
        GAEA_RETURN_IF_ERROR(ExpectKeyword("extent"));
        GAEA_RETURN_IF_ERROR(Expect(TokenKind::kColon).status());
        GAEA_RETURN_IF_ERROR(AttributeList(&def, spatial ? "spatial" : "temporal"));
      } else if (ConsumeKeyword("derived")) {
        GAEA_RETURN_IF_ERROR(ExpectKeyword("by"));
        GAEA_RETURN_IF_ERROR(Expect(TokenKind::kColon).status());
        GAEA_ASSIGN_OR_RETURN(std::string proc, ExpectIdentifier());
        GAEA_RETURN_IF_ERROR(def.SetDerivedBy(proc));
      } else {
        return Error("expected ATTRIBUTES, SPATIAL EXTENT, TEMPORAL EXTENT or "
                     "DERIVED BY, got '" + Peek().text + "'");
      }
    }
    GAEA_RETURN_IF_ERROR(Expect(TokenKind::kRParen).status());
    return ParsedStatement(std::move(def));
  }

  // Parses `name = type;` lines until the next section keyword or ')'.
  // `extent` is "", "spatial" or "temporal".
  Status AttributeList(ClassDef* def, const std::string& extent) {
    while (Peek().Is(TokenKind::kIdentifier) && Peek(1).Is(TokenKind::kEq)) {
      GAEA_ASSIGN_OR_RETURN(std::string attr_name, ExpectIdentifier());
      GAEA_RETURN_IF_ERROR(Expect(TokenKind::kEq).status());
      GAEA_ASSIGN_OR_RETURN(std::string type_name, ExpectIdentifier());
      GAEA_RETURN_IF_ERROR(Expect(TokenKind::kSemi).status());
      GAEA_ASSIGN_OR_RETURN(TypeId type, TypeIdFromDdlName(type_name));
      AttributeDef attr;
      attr.name = attr_name;
      attr.type = type;
      attr.ddl_type = type_name;
      GAEA_RETURN_IF_ERROR(def->AddAttribute(std::move(attr)));
      if (extent == "spatial") {
        GAEA_RETURN_IF_ERROR(def->SetSpatialExtent(attr_name));
      } else if (extent == "temporal") {
        GAEA_RETURN_IF_ERROR(def->SetTemporalExtent(attr_name));
      }
    }
    return Status::OK();
  }

  // ---- DEFINE PROCESS ----

  StatusOr<ParsedStatement> ProcessStatement() {
    GAEA_RETURN_IF_ERROR(ExpectKeyword("define"));
    GAEA_RETURN_IF_ERROR(ExpectKeyword("process"));
    GAEA_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    GAEA_RETURN_IF_ERROR(ExpectKeyword("output"));
    GAEA_ASSIGN_OR_RETURN(std::string output, ExpectIdentifier());
    ProcessDef def(name, output);

    GAEA_RETURN_IF_ERROR(ExpectKeyword("argument"));
    GAEA_RETURN_IF_ERROR(Expect(TokenKind::kLParen).status());
    while (!Peek().Is(TokenKind::kRParen)) {
      ProcessArg arg;
      if (ConsumeKeyword("setof")) arg.setof = true;
      GAEA_ASSIGN_OR_RETURN(arg.class_name, ExpectIdentifier());
      GAEA_ASSIGN_OR_RETURN(arg.name, ExpectIdentifier());
      if (ConsumeKeyword("min")) {
        GAEA_ASSIGN_OR_RETURN(Token num, Expect(TokenKind::kNumber));
        arg.min_card = static_cast<int>(
            std::strtol(num.text.c_str(), nullptr, 10));
      }
      GAEA_RETURN_IF_ERROR(def.AddArg(std::move(arg)));
      if (!Peek().Is(TokenKind::kRParen)) {
        GAEA_RETURN_IF_ERROR(Expect(TokenKind::kComma).status());
      }
    }
    GAEA_RETURN_IF_ERROR(Expect(TokenKind::kRParen).status());

    if (ConsumeKeyword("parameters")) {
      GAEA_RETURN_IF_ERROR(Expect(TokenKind::kLBrace).status());
      while (!Peek().Is(TokenKind::kRBrace)) {
        GAEA_ASSIGN_OR_RETURN(std::string pname, ExpectIdentifier());
        GAEA_RETURN_IF_ERROR(Expect(TokenKind::kEq).status());
        GAEA_ASSIGN_OR_RETURN(Value pvalue, LiteralValue());
        GAEA_RETURN_IF_ERROR(Expect(TokenKind::kSemi).status());
        GAEA_RETURN_IF_ERROR(def.AddParam(pname, std::move(pvalue)));
      }
      GAEA_RETURN_IF_ERROR(Expect(TokenKind::kRBrace).status());
    }

    GAEA_RETURN_IF_ERROR(ExpectKeyword("template"));
    GAEA_RETURN_IF_ERROR(Expect(TokenKind::kLBrace).status());
    if (ConsumeKeyword("assertions")) {
      GAEA_RETURN_IF_ERROR(Expect(TokenKind::kColon).status());
      while (!Peek().IsKeyword("mappings") && !Peek().Is(TokenKind::kRBrace)) {
        GAEA_ASSIGN_OR_RETURN(ExprPtr assertion, Assertion());
        GAEA_RETURN_IF_ERROR(Expect(TokenKind::kSemi).status());
        GAEA_RETURN_IF_ERROR(def.AddAssertion(std::move(assertion)));
      }
    }
    if (ConsumeKeyword("mappings")) {
      GAEA_RETURN_IF_ERROR(Expect(TokenKind::kColon).status());
      while (!Peek().Is(TokenKind::kRBrace)) {
        GAEA_ASSIGN_OR_RETURN(std::string cls, ExpectIdentifier());
        if (cls != output) {
          return Error("mapping target class '" + cls +
                       "' does not match OUTPUT class '" + output + "'");
        }
        GAEA_RETURN_IF_ERROR(Expect(TokenKind::kDot).status());
        GAEA_ASSIGN_OR_RETURN(std::string attr, ExpectIdentifier());
        GAEA_RETURN_IF_ERROR(Expect(TokenKind::kEq).status());
        GAEA_ASSIGN_OR_RETURN(ExprPtr expr, Expression());
        GAEA_RETURN_IF_ERROR(Expect(TokenKind::kSemi).status());
        GAEA_RETURN_IF_ERROR(def.AddMapping(attr, std::move(expr)));
      }
    }
    GAEA_RETURN_IF_ERROR(Expect(TokenKind::kRBrace).status());
    return ParsedStatement(std::move(def));
  }

  StatusOr<Value> LiteralValue() {
    const Token& tok = Peek();
    if (tok.Is(TokenKind::kNumber)) {
      return NumberValue(Take().text);
    }
    if (tok.Is(TokenKind::kString)) {
      return Value::String(Take().text);
    }
    if (tok.IsKeyword("true")) {
      Take();
      return Value::Bool(true);
    }
    if (tok.IsKeyword("false")) {
      Take();
      return Value::Bool(false);
    }
    return Error("expected literal value, got '" + tok.text + "'");
  }

  // assertion := expr (cmpop expr)?
  StatusOr<ExprPtr> Assertion() {
    GAEA_ASSIGN_OR_RETURN(ExprPtr lhs, Expression());
    const char* op = nullptr;
    switch (Peek().kind) {
      case TokenKind::kEq: op = "eq"; break;
      case TokenKind::kNe: op = "ne"; break;
      case TokenKind::kLt: op = "lt"; break;
      case TokenKind::kLe: op = "le"; break;
      case TokenKind::kGt: op = "gt"; break;
      case TokenKind::kGe: op = "ge"; break;
      default:
        return lhs;
    }
    Take();
    GAEA_ASSIGN_OR_RETURN(ExprPtr rhs, Expression());
    return Expr::OpCall(op, {std::move(lhs), std::move(rhs)});
  }

  // expr := ANYOF expr | literal | '$' ident | ident '(' args ')' |
  //         ident '.' ident
  StatusOr<ExprPtr> Expression() {
    const Token& tok = Peek();
    if (tok.IsKeyword("anyof")) {
      Take();
      GAEA_ASSIGN_OR_RETURN(ExprPtr child, Expression());
      return Expr::AnyOf(std::move(child));
    }
    if (tok.Is(TokenKind::kNumber) || tok.Is(TokenKind::kString) ||
        tok.IsKeyword("true") || tok.IsKeyword("false")) {
      GAEA_ASSIGN_OR_RETURN(Value v, LiteralValue());
      return Expr::Literal(std::move(v));
    }
    if (tok.Is(TokenKind::kDollar)) {
      Take();
      GAEA_ASSIGN_OR_RETURN(std::string pname, ExpectIdentifier());
      return Expr::Param(std::move(pname));
    }
    if (tok.Is(TokenKind::kIdentifier)) {
      GAEA_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
      if (Peek().Is(TokenKind::kLParen)) {
        Take();
        std::vector<ExprPtr> args;
        while (!Peek().Is(TokenKind::kRParen)) {
          GAEA_ASSIGN_OR_RETURN(ExprPtr arg, Expression());
          args.push_back(std::move(arg));
          if (!Peek().Is(TokenKind::kRParen)) {
            GAEA_RETURN_IF_ERROR(Expect(TokenKind::kComma).status());
          }
        }
        GAEA_RETURN_IF_ERROR(Expect(TokenKind::kRParen).status());
        std::string lower = StrToLower(name);
        if (lower == "card") {
          if (args.size() != 1) return Error("card() takes one argument");
          // card's operand must be a bare argument name, parsed as an
          // attr-less reference; re-interpret.
          return CardFromExpr(args[0]);
        }
        if (lower == "common") {
          if (args.empty()) {
            return Error("common() needs at least one argument");
          }
          return Expr::Common(std::move(args));
        }
        return Expr::OpCall(std::move(name), std::move(args));
      }
      if (Peek().Is(TokenKind::kDot)) {
        Take();
        GAEA_ASSIGN_OR_RETURN(std::string attr, ExpectIdentifier());
        return Expr::AttrRef(std::move(name), std::move(attr));
      }
      // Bare identifier: only meaningful inside card(); represent as an
      // attr ref with empty attribute and let CardFromExpr unwrap it.
      return Expr::AttrRef(std::move(name), "");
    }
    return Error("expected expression, got '" + tok.text + "'");
  }

  StatusOr<ExprPtr> CardFromExpr(const ExprPtr& operand) {
    // card(bands): the operand parses as AttrRef("bands", ""). Recover the
    // argument name from its rendering.
    std::string repr = operand->ToString();
    if (operand->kind() != Expr::Kind::kAttrRef || repr.empty() ||
        repr.back() != '.') {
      return Status::InvalidArgument(
          "card() operand must be a process argument name, got " + repr);
    }
    repr.pop_back();
    return Expr::Card(std::move(repr));
  }

  // ---- DEFINE CONCEPT ----

  StatusOr<ParsedStatement> ConceptStatement() {
    GAEA_RETURN_IF_ERROR(ExpectKeyword("define"));
    GAEA_RETURN_IF_ERROR(ExpectKeyword("concept"));
    ConceptStmt stmt;
    GAEA_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier());
    if (ConsumeKeyword("doc")) {
      GAEA_ASSIGN_OR_RETURN(Token doc, Expect(TokenKind::kString));
      stmt.doc = doc.text;
    }
    if (ConsumeKeyword("isa")) {
      GAEA_ASSIGN_OR_RETURN(std::string parent, ExpectIdentifier());
      stmt.isa_parents.push_back(std::move(parent));
      while (Peek().Is(TokenKind::kComma)) {
        Take();
        GAEA_ASSIGN_OR_RETURN(std::string more, ExpectIdentifier());
        stmt.isa_parents.push_back(std::move(more));
      }
    }
    if (ConsumeKeyword("members")) {
      GAEA_RETURN_IF_ERROR(Expect(TokenKind::kLParen).status());
      while (!Peek().Is(TokenKind::kRParen)) {
        GAEA_ASSIGN_OR_RETURN(std::string member, ExpectIdentifier());
        stmt.member_classes.push_back(std::move(member));
        if (!Peek().Is(TokenKind::kRParen)) {
          GAEA_RETURN_IF_ERROR(Expect(TokenKind::kComma).status());
        }
      }
      GAEA_RETURN_IF_ERROR(Expect(TokenKind::kRParen).status());
    }
    return ParsedStatement(std::move(stmt));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<std::vector<ParsedStatement>> ParseScript(const std::string& source) {
  GAEA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.Script();
}

StatusOr<std::vector<LocatedStatement>> ParseScriptLocated(
    const std::string& source) {
  GAEA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ScriptLocated();
}

StatusOr<ParsedStatement> ParseStatement(const std::string& source) {
  GAEA_ASSIGN_OR_RETURN(std::vector<ParsedStatement> stmts,
                        ParseScript(source));
  if (stmts.size() != 1) {
    return Status::InvalidArgument("expected exactly one DDL statement, got " +
                                   std::to_string(stmts.size()));
  }
  return std::move(stmts[0]);
}

}  // namespace gaea
