#include "ddl/lexer.h"

#include <cctype>

#include "util/string_util.h"

namespace gaea {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kString: return "string";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemi: return "';'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kDollar: return "'$'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kEof: return "end of input";
  }
  return "?";
}

bool Token::IsKeyword(const char* keyword) const {
  return kind == TokenKind::kIdentifier && StrToLower(text) == keyword;
}

StatusOr<std::vector<Token>> Tokenize(const std::string& source) {
  std::vector<Token> tokens;
  int line = 1, column = 1;
  size_t i = 0;
  auto error = [&](const std::string& msg) {
    return Status::InvalidArgument("DDL lex error at line " +
                                   std::to_string(line) + ":" +
                                   std::to_string(column) + ": " + msg);
  };
  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n && i < source.size(); ++k, ++i) {
      if (source[i] == '\n') {
        line++;
        column = 1;
      } else {
        column++;
      }
    }
  };
  auto push = [&](TokenKind kind, std::string text) {
    tokens.push_back(Token{kind, std::move(text), line, column});
  };

  while (i < source.size()) {
    char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      while (i < source.size() && source[i] != '\n') advance(1);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < source.size()) {
        char k = source[i];
        if (std::isalnum(static_cast<unsigned char>(k)) || k == '_' ||
            k == '-') {
          advance(1);
        } else {
          break;
        }
      }
      push(TokenKind::kIdentifier, source.substr(start, i - start));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < source.size() &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      size_t start = i;
      advance(1);  // sign or first digit
      bool seen_dot = false;
      while (i < source.size()) {
        char k = source[i];
        if (std::isdigit(static_cast<unsigned char>(k))) {
          advance(1);
        } else if (k == '.' && !seen_dot && i + 1 < source.size() &&
                   std::isdigit(static_cast<unsigned char>(source[i + 1]))) {
          seen_dot = true;
          advance(1);
        } else {
          break;
        }
      }
      push(TokenKind::kNumber, source.substr(start, i - start));
      continue;
    }
    if (c == '"') {
      advance(1);
      std::string text;
      bool closed = false;
      while (i < source.size()) {
        if (source[i] == '"') {
          closed = true;
          advance(1);
          break;
        }
        if (source[i] == '\n') break;
        text.push_back(source[i]);
        advance(1);
      }
      if (!closed) return error("unterminated string literal");
      push(TokenKind::kString, std::move(text));
      continue;
    }
    switch (c) {
      case '(': push(TokenKind::kLParen, "("); advance(1); continue;
      case ')': push(TokenKind::kRParen, ")"); advance(1); continue;
      case '{': push(TokenKind::kLBrace, "{"); advance(1); continue;
      case '}': push(TokenKind::kRBrace, "}"); advance(1); continue;
      case ',': push(TokenKind::kComma, ","); advance(1); continue;
      case ';': push(TokenKind::kSemi, ";"); advance(1); continue;
      case ':': push(TokenKind::kColon, ":"); advance(1); continue;
      case '.': push(TokenKind::kDot, "."); advance(1); continue;
      case '$': push(TokenKind::kDollar, "$"); advance(1); continue;
      case '=': push(TokenKind::kEq, "="); advance(1); continue;
      case '!':
        if (i + 1 < source.size() && source[i + 1] == '=') {
          push(TokenKind::kNe, "!=");
          advance(2);
          continue;
        }
        return error("unexpected '!'");
      case '<':
        if (i + 1 < source.size() && source[i + 1] == '=') {
          push(TokenKind::kLe, "<=");
          advance(2);
        } else {
          push(TokenKind::kLt, "<");
          advance(1);
        }
        continue;
      case '>':
        if (i + 1 < source.size() && source[i + 1] == '=') {
          push(TokenKind::kGe, ">=");
          advance(2);
        } else {
          push(TokenKind::kGt, ">");
          advance(1);
        }
        continue;
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
  }
  push(TokenKind::kEof, "");
  return tokens;
}

}  // namespace gaea
