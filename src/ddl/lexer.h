// Tokenizer for the Gaea definition language — the textual syntax of the
// paper's Figure 3 (CLASS ..., DEFINE PROCESS ... TEMPLATE { ASSERTIONS /
// MAPPINGS }) plus concept definitions.
//
// Identifiers may contain '-' (the paper writes unsupervised-classification),
// so the language has no infix minus; arithmetic uses named operators
// (sub(a, b)). '//' starts a line comment.

#ifndef GAEA_DDL_LEXER_H_
#define GAEA_DDL_LEXER_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace gaea {

enum class TokenKind : uint8_t {
  kIdentifier,
  kNumber,   // integer or decimal literal
  kString,   // "double quoted"
  kLParen,   // (
  kRParen,   // )
  kLBrace,   // {
  kRBrace,   // }
  kComma,    // ,
  kSemi,     // ;
  kColon,    // :
  kDot,      // .
  kDollar,   // $
  kEq,       // =
  kNe,       // !=
  kLt,       // <
  kLe,       // <=
  kGt,       // >
  kGe,       // >=
  kEof,
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;  // identifier/string contents, number spelling
  int line = 1;
  int column = 1;

  bool Is(TokenKind k) const { return kind == k; }
  // Case-insensitive keyword check for identifiers.
  bool IsKeyword(const char* keyword) const;
};

// Tokenizes `source`; the final token is always kEof.
StatusOr<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace gaea

#endif  // GAEA_DDL_LEXER_H_
