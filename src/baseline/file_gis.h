// FileGis: the file-based GIS strawman of paper §4.1 (IDRISI / GRASS).
//
// "A typical working scenario ... is to perform analysis with sequences of
// commands that read data from input files and store results into output
// files." The shortcomings the paper lists are modeled faithfully:
//   1. a file name is the only identifier for stored data;
//   2. data sharing is almost impossible — no machine-readable metadata
//      describes how data were generated;
//   3. scientists manage the analysis process themselves via awkward
//      transcript files (we keep one);
//   4. abstraction of the analysis process is impossible — reproduction
//      from the free-text transcript fails by construction.
//
// The reproducibility bench (Q4) runs the same workload through GaeaKernel
// and FileGis and contrasts metadata capability and overhead.

#ifndef GAEA_BASELINE_FILE_GIS_H_
#define GAEA_BASELINE_FILE_GIS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "raster/image.h"
#include "util/status.h"

namespace gaea {

class FileGis {
 public:
  // Opens a working directory (created if missing) with a transcript file.
  static StatusOr<std::unique_ptr<FileGis>> Open(const std::string& dir);

  // Imports an image under a user-chosen file name (the only identifier).
  Status Import(const std::string& name, const Image& image);

  // Loads an image by file name.
  StatusOr<Image> Load(const std::string& name) const;

  bool Exists(const std::string& name) const;

  // Runs an analysis command: loads the inputs, applies `fn`, stores the
  // output under `output_name` (silently overwriting any existing file —
  // shortcoming 1), and appends the free-text command line to the
  // transcript.
  Status Run(const std::string& command_line,
             const std::vector<std::string>& inputs,
             const std::string& output_name,
             const std::function<StatusOr<Image>(
                 const std::vector<Image>&)>& fn);

  // The accumulated transcript lines.
  StatusOr<std::vector<std::string>> Transcript() const;

  // Attempts to reproduce `output_name` from the transcript. Finds the
  // line that created it but cannot re-execute free text: returns
  // kNotSupported with the line in the message — the paper's data-sharing
  // failure, made concrete.
  Status Reproduce(const std::string& output_name) const;

 private:
  explicit FileGis(std::string dir) : dir_(std::move(dir)) {}

  std::string PathFor(const std::string& name) const;

  std::string dir_;
};

}  // namespace gaea

#endif  // GAEA_BASELINE_FILE_GIS_H_
