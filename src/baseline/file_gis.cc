#include "baseline/file_gis.h"

#include <sys/stat.h>

#include <filesystem>
#include <fstream>
#include <memory>

#include "util/string_util.h"

namespace gaea {

StatusOr<std::unique_ptr<FileGis>> FileGis::Open(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("mkdir " + dir + ": " + ec.message());
  }
  return std::unique_ptr<FileGis>(new FileGis(dir));
}

std::string FileGis::PathFor(const std::string& name) const {
  return dir_ + "/" + name + ".img";
}

Status FileGis::Import(const std::string& name, const Image& image) {
  return image.Save(PathFor(name));
}

StatusOr<Image> FileGis::Load(const std::string& name) const {
  return Image::Load(PathFor(name));
}

bool FileGis::Exists(const std::string& name) const {
  struct stat st;
  return ::stat(PathFor(name).c_str(), &st) == 0;
}

Status FileGis::Run(const std::string& command_line,
                    const std::vector<std::string>& inputs,
                    const std::string& output_name,
                    const std::function<StatusOr<Image>(
                        const std::vector<Image>&)>& fn) {
  std::vector<Image> loaded;
  loaded.reserve(inputs.size());
  for (const std::string& name : inputs) {
    GAEA_ASSIGN_OR_RETURN(Image img, Load(name));
    loaded.push_back(std::move(img));
  }
  GAEA_ASSIGN_OR_RETURN(Image out, fn(loaded));
  // Shortcoming 1: whatever was stored under this name before is gone.
  GAEA_RETURN_IF_ERROR(out.Save(PathFor(output_name)));
  std::ofstream transcript(dir_ + "/transcript.txt", std::ios::app);
  if (!transcript) {
    return Status::IOError("cannot append to transcript in " + dir_);
  }
  transcript << command_line << " -> " << output_name << "\n";
  return Status::OK();
}

StatusOr<std::vector<std::string>> FileGis::Transcript() const {
  std::ifstream in(dir_ + "/transcript.txt");
  std::vector<std::string> lines;
  if (!in) return lines;  // no commands run yet
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

Status FileGis::Reproduce(const std::string& output_name) const {
  GAEA_ASSIGN_OR_RETURN(std::vector<std::string> lines, Transcript());
  for (const std::string& line : lines) {
    if (StrEndsWith(line, "-> " + output_name)) {
      return Status::NotSupported(
          "transcript records the command as free text and cannot "
          "re-execute it: \"" + line + "\" (no process template, no "
          "parameters, no input lineage — paper §4.1)");
    }
  }
  return Status::NotFound("no transcript line produced '" + output_name +
                          "' (file may have been overwritten by another "
                          "user's command)");
}

}  // namespace gaea
