// GaeaKernel: the public face of the Gaea kernel (paper Figure 1).
//
// Wires the three metadata layers over one database directory:
//   * system level   — primitive classes + operators (types/)
//   * derivation     — processes, tasks, Petri net, planner, deriver (core/)
//   * experiment     — concepts, experiments, reproduction (catalog/,
//                      experiment/)
// plus the storage substrate and the §2.1.5 query engine. All definitions
// and tasks are journaled in the directory and replayed on reopen.

#ifndef GAEA_GAEA_KERNEL_H_
#define GAEA_GAEA_KERNEL_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "analysis/analysis_cache.h"
#include "analysis/diagnostic.h"
#include "catalog/catalog.h"
#include "core/compound_process.h"
#include "core/derivation_cache.h"
#include "core/deriver.h"
#include "core/lineage.h"
#include "core/petri.h"
#include "core/planner.h"
#include "core/process_registry.h"
#include "core/scheduler.h"
#include "core/task.h"
#include "ddl/parser.h"
#include "experiment/experiment.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "provenance/prov_index.h"
#include "provenance/prov_query.h"
#include "query/interpolate.h"
#include "query/query.h"
#include "recovery/checkpoint.h"
#include "storage/buffer_pool.h"
#include "types/compound_op.h"
#include "types/op_registry.h"
#include "types/primitive_class.h"
#include "util/status.h"

namespace gaea {

class GaeaKernel {
 public:
  struct Options {
    std::string dir;           // database directory
    std::string user = "gaea"; // recorded on tasks
    // File system to run on; nullptr means Env::Default(). Tests pass a
    // FaultInjectingEnv here to crash the kernel at chosen write ops.
    Env* env = nullptr;
    // Journal Sync policy applied to every journal (catalog, process, task,
    // experiment); see DurabilityMode in storage/journal.h.
    DurabilityMode durability = DurabilityMode::kOs;
    // Cluster member (primary or replica): additionally journals base-object
    // inserts into objects.journal so they ship to replicas like every other
    // component (derived objects never need this — replicas rematerialize
    // them from shipped task records). Off by default: a standalone kernel
    // pays no insert-journaling cost.
    bool replicated = false;
  };

  // Opens (creating if needed) a Gaea database and runs crash recovery:
  // loads the newest valid checkpoint (src/recovery/) and replays only the
  // journal tails past it, falling back to the previous checkpoint and
  // finally to a full replay (archive chain + live journals) when a
  // snapshot turns out to be corrupt. Ends with the startup invariant check
  // (see Recover below).
  static StatusOr<std::unique_ptr<GaeaKernel>> Open(const Options& options);

  GaeaKernel(const GaeaKernel&) = delete;
  GaeaKernel& operator=(const GaeaKernel&) = delete;

  // ---- layer access ----
  Catalog& catalog() { return *catalog_; }
  const Catalog& catalog() const { return *catalog_; }
  const PrimitiveClassRegistry& primitive_classes() const {
    return primitives_;
  }
  OperatorRegistry& operators() { return ops_; }
  const OperatorRegistry& operators() const { return ops_; }
  const ProcessRegistry& processes() const { return processes_; }
  TaskLog& tasks() { return *task_log_; }
  const TaskLog& tasks() const { return *task_log_; }
  ExperimentManager& experiments() { return *experiments_; }
  // The Env this kernel was opened on (clock + file system).
  Env* env() { return env_; }

  // ---- observability ----
  // Instrument registry for this kernel: derivation counters/latency live
  // here, and scrape-time collectors mirror catalog/cache/pool/journal/
  // store state into gauges. gaead serves metrics().Render() over the wire
  // (Prometheus text format); see docs/OBSERVABILITY.md.
  obs::MetricsRegistry& metrics() { return metrics_; }
  // Cumulative per-process ("process/<name>") and per-operator
  // ("op/<name>") timing tables (shell `profile`).
  obs::Profiler& profiler() { return profiler_; }
  const obs::Profiler& profiler() const { return profiler_; }

  // ---- definitions ----

  // Parses and applies a DDL script (classes, processes, concepts).
  Status ExecuteDdl(const std::string& source);

  // Like above, but additionally runs the static analyzer (src/analysis/)
  // over the loaded catalog and appends its findings to `diagnostics`
  // (warn-on-load: findings never fail an otherwise valid load; process
  // templates with error-severity findings were already rejected by
  // DefineProcess). See docs/ANALYSIS.md for the policy.
  Status ExecuteDdl(const std::string& source,
                    std::vector<Diagnostic>* diagnostics);

  // Registers a process built programmatically (journaled, versioned).
  // Reject-on-error: the definition is refused when the static analyzer
  // reports any error-severity diagnostic (e.g. a trivially false
  // assertion), in addition to ProcessDef::Validate.
  StatusOr<int> DefineProcess(ProcessDef def);

  // ---- static analysis ----

  // Runs every analysis pass over the current catalog and returns the
  // normalized findings. Incremental: results are memoized per catalog
  // version, and per-process passes are keyed on `name#version`, so after a
  // DDL batch only new or re-versioned processes are re-analyzed (classes
  // are never redefined and process versions are immutable, so old entries
  // stay valid). The reference is invalidated by the next definition.
  const std::vector<Diagnostic>& LintCatalog();

  // Monotonic counter bumped by every successful definition; keys the
  // incremental analysis cache above.
  uint64_t catalog_version() const { return catalog_version_; }

  // Cache effectiveness counters (tests, shell `lint` diagnostics).
  const AnalysisCache::Stats& analysis_stats() const {
    return analysis_cache_.stats();
  }

  // ---- data & derivation ----

  // Stores a base object. On a replicated kernel the stored payload is also
  // journaled (objects.journal) so replicas receive it via shipping.
  StatusOr<Oid> Insert(DataObject obj);
  StatusOr<DataObject> Get(Oid oid) const { return catalog_->GetObject(oid); }

  // Fires a process on explicit inputs; records the task.
  StatusOr<Oid> Derive(const std::string& process,
                       const std::map<std::string, std::vector<Oid>>& inputs,
                       int version = 0);

  // Executes a batch of independent derivation requests on the scheduler's
  // thread pool (SetDeriveThreads), consulting the derivation cache. One
  // outcome per request, in request order; per-request failures are
  // reported in the outcomes, not as a batch failure.
  StatusOr<std::vector<DeriveOutcome>> DeriveBatch(
      const std::vector<DeriveRequest>& requests);

  // Worker threads for DeriveBatch/DeriveCompound (clamped to >= 1).
  void SetDeriveThreads(int threads);
  int derive_threads() const { return derive_threads_; }

  DerivationCache& derivation_cache() { return *derivation_cache_; }
  const DerivationCache& derivation_cache() const {
    return *derivation_cache_;
  }

  // Like Derive, but first checks the task log for a completed run of the
  // same process version on the same inputs whose output is still stored —
  // and returns that object instead of recomputing ("experiment management
  // also helps avoid unnecessary duplication of experiments", paper §1).
  // Since derivations are deterministic, the reused object equals what a
  // fresh run would produce.
  StatusOr<Oid> DeriveOrReuse(
      const std::string& process,
      const std::map<std::string, std::vector<Oid>>& inputs, int version = 0);

  // Drops a *derived* object's stored bytes while keeping its task record:
  // "typically, when data are not stored in the database, we may generate
  // the needed data with the help of such derivation relationships"
  // (§2.1.2) — eviction is the storage/recompute trade-off that sentence
  // implies. A later query for the same window re-derives an attribute-
  // identical object. Base objects (no producing task) are refused: they
  // cannot be regenerated. Objects consumed by other stored objects'
  // derivations are refused too, so recorded tasks always reference
  // re-derivable inputs.
  Status Evict(Oid oid);

  // Expands a compound process on external inputs and runs its primitive
  // stages on the scheduler (independent stages execute concurrently when
  // SetDeriveThreads > 1); returns the output stage's object. Compound runs
  // bypass the derivation cache: every invocation records its stage tasks,
  // matching the sequential Derive-per-stage semantics.
  StatusOr<Oid> DeriveCompound(
      const CompoundProcessDef& compound,
      const std::map<std::string, std::vector<Oid>>& external_inputs);

  // Records a *non-applicative* derivation (paper §5: "a process may
  // consist of a mapping which is described by experimental procedures that
  // do not follow a well known algorithm"): the outputs were produced
  // outside Gaea (lab work, manual digitizing, a remote service), but their
  // lineage — which stored objects went in, what came out, who did it — is
  // still captured. Such tasks cannot be replayed (version -1); lineage and
  // comparison work normally. Every input and output OID must be stored.
  StatusOr<TaskId> RecordExternalTask(
      const std::string& procedure_name,
      const std::map<std::string, std::vector<Oid>>& inputs,
      const std::vector<Oid>& outputs, const std::string& description);

  // Marker version for external (non-replayable) tasks.
  static constexpr int kExternalTaskVersion = -1;

  // ---- query (paper §2.1.5) ----
  StatusOr<QueryResult> Query(const QueryRequest& request);
  // Parses a GQL SELECT statement (query/qparser.h) and executes it.
  StatusOr<QueryResult> QueryText(const std::string& gql);

  // ---- concept-instance comparison (paper §2.1.5 item 2) ----
  // "Users may ... study the meaning and compare instances of concepts
  // according to their derivation procedures." For every pair of stored
  // instances of the concept's covered classes (within the window), reports
  // whether they came from the same procedure and how their derivations
  // diverge.
  struct InstanceComparison {
    Oid a = kInvalidOid;
    Oid b = kInvalidOid;
    std::string class_a;
    std::string class_b;
    bool same_procedure = false;
    std::string explanation;
  };
  StatusOr<std::vector<InstanceComparison>> CompareConceptInstances(
      const std::string& concept_name, const Window& window = {});

  // ---- catalog statistics (shell `stats`, monitoring) ----
  struct PoolStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    std::vector<BufferPool::ShardStats> per_shard;
  };
  struct Stats {
    size_t classes = 0;
    size_t concepts = 0;
    size_t processes = 0;        // latest versions
    size_t process_versions = 0; // total across history
    size_t objects = 0;
    size_t tasks = 0;
    size_t experiments = 0;
    size_t quarantined_tasks = 0;    // flagged by startup recovery
    std::string durability = "os";   // journal Sync policy in effect

    // Recovery & checkpoint state (docs/ROBUSTNESS.md). records_replayed
    // is what the last Open actually replayed from the journals;
    // checkpoint_seq is the newest installed checkpoint (0 = none).
    uint64_t records_replayed = 0;
    uint64_t recovered_checkpoint_seq = 0;
    uint64_t recovery_fallbacks = 0;
    uint64_t checkpoint_seq = 0;
    uint64_t checkpoints_taken = 0;
    uint64_t checkpoint_failures = 0;
    uint64_t last_checkpoint_duration_us = 0;
    uint64_t last_checkpoint_bytes = 0;
    uint64_t journal_records_total = 0;  // across all live journals
    uint64_t cluster_lsn = 0;            // see ClusterLsn()

    // Provenance index state (docs/PROVENANCE.md).
    uint64_t prov_index_entries = 0;
    uint64_t prov_indexed_through = 0;
    uint64_t prov_index_rebuilds = 0;
    uint64_t prov_archive_fetches = 0;

    DerivationCache::Stats derivation_cache;
    PoolStats heap_pool;   // object store: heap file frames
    PoolStats index_pool;  // object store: OID index frames

    // Machine-readable snapshot (shell `stats --json`, the gaead stats RPC;
    // schema in docs/NET.md). Compact: no whitespace.
    std::string ToJson() const;
  };
  Stats GetStats() const;

  // ---- crash recovery ----
  // Startup invariant check, run by Open after every journal has replayed:
  // each committed task must either still have all its output objects
  // stored, or be re-derivable (its process version is registered — missing
  // outputs are then legitimate evictions, re-derivable on demand). Tasks
  // that satisfy neither are *quarantined*: recorded in
  // `dir`/quarantine.journal (deduplicated across reopens) and counted in
  // stats, but never fatal — the database stays usable and the damage is
  // reported instead of silently ignored. Recovery also raises the object
  // store's OID allocator past every task output, so a crash that lost
  // index pages can never lead to an OID being handed out twice.
  struct RecoveryReport {
    size_t tasks_checked = 0;
    size_t rederivable_missing = 0;  // missing outputs covered by lineage
    std::vector<TaskId> quarantined; // tasks with unrecoverable outputs
    Oid max_task_output = kInvalidOid;
  };
  const RecoveryReport& recovery_report() const { return recovery_report_; }

  DurabilityMode durability() const { return durability_; }

  // ---- checkpointing ----

  // Takes one fuzzy checkpoint: flushes the object store, captures every
  // journal-backed component under its own lock (derivations keep running),
  // installs snapshots + manifest atomically, truncates the journal
  // prefixes the *previous* checkpoint covers into archive segments, and
  // GCs all but the latest two checkpoints. Serialized internally; safe
  // against concurrent derivations and inserts, but must not race DDL
  // (process/experiment definition) — the server guarantees that by
  // running DDL under its exclusive lock and Checkpoint under the shared
  // one.
  StatusOr<recovery::CheckpointInfo> Checkpoint();

  // Background checkpoint policy: a checkpoint is due when the live
  // journals hold at least `journal_bytes` bytes appended since the last
  // checkpoint, or at least `tasks` task records past the last covered
  // LSN. Zero disables a threshold; both zero (the default) disables
  // MaybeCheckpoint entirely.
  struct CheckpointPolicy {
    uint64_t journal_bytes = 0;
    uint64_t tasks = 0;
  };
  void SetCheckpointPolicy(const CheckpointPolicy& policy);
  CheckpointPolicy checkpoint_policy() const;

  // Runs Checkpoint() if the policy says one is due. Returns whether one
  // ran. gaead's background poll thread and post-batch hooks call this.
  StatusOr<bool> MaybeCheckpoint();

  // How this kernel came up: 0 = full journal replay, else the manifest
  // sequence number the state was loaded from.
  uint64_t recovered_checkpoint_seq() const {
    return recovered_checkpoint_seq_;
  }
  // Journal records replayed at startup (tail past the checkpoint, or the
  // whole history without one) — the quantity checkpoints exist to bound.
  uint64_t records_replayed() const { return records_replayed_; }
  // Candidate recovery plans that failed (corrupt snapshot → fallback).
  uint64_t recovery_fallbacks() const { return recovery_fallbacks_; }

  // ---- replication (src/replication/, docs/ROBUSTNESS.md) ----

  // The journal-backed components a cluster ships, in apply order (each may
  // reference state established by its predecessors: a task needs its
  // process version and input objects, an experiment its tasks).
  static const std::vector<std::string>& ReplicationComponents();

  bool replicated() const { return object_journal_ != nullptr; }

  // Cluster LSN: the sum of every component journal's logical length
  // (record_count, which TruncatePrefix preserves). Monotonic; two kernels
  // with equal cluster LSNs that shipped from the same history hold the
  // same definitions, tasks and experiments.
  uint64_t ClusterLsn() const;

  // component -> record_count for every replication component; a replica's
  // ShipBatch cursors are exactly its own counts.
  std::vector<std::pair<std::string, uint64_t>> ReplicationCursors() const;

  // Reads records of `component` with LSN >= `from` for shipping: live
  // journal first, archive-chain fallback when a checkpoint truncated the
  // prefix away (the TruncatePrefix-vs-live-shipper race). `*next` is one
  // past the last record returned.
  Status ShipRange(const std::string& component, uint64_t from,
                   size_t max_records, size_t max_bytes,
                   std::vector<std::string>* out, uint64_t* next);

  // Applies shipped records of `component` starting at LSN `from` — journal
  // append verbatim plus the in-memory apply, exactly like replay. Records
  // below the current count are skipped (duplicate delivery is idempotent);
  // a gap is kFailedPrecondition and the applier retries after the missing
  // prefix ships. Completed task records eagerly rematerialize their
  // outputs: the process is re-run (pure, deterministic) and the output
  // stored under the primary-recorded OID, so replicas hold byte-identical
  // derived objects. Caller must hold the server's exclusive kernel lock
  // (or otherwise exclude concurrent definition readers).
  Status ApplyReplicated(const std::string& component, uint64_t from,
                         const std::vector<std::string>& records);

  // Read-only derivation lookup for replica serving: resolves the process,
  // consults the derivation cache and the task log, and returns the
  // recorded output when this exact derivation already ran. kNotFound when
  // the request is novel — a replica answers that with a bounce to the
  // primary instead of forking history with a local write.
  StatusOr<Oid> TryRecordedDerive(
      const std::string& process,
      const std::map<std::string, std::vector<Oid>>& inputs, int version = 0);

  // ---- provenance (src/provenance/, docs/PROVENANCE.md) ----
  // Indexed lineage queries: closure/why/where resolve through the B+tree
  // index (never a log scan); diff additionally reads the versioned process
  // registry. All are reads — replicas serve them over the wire. max_depth
  // 0 = unbounded.
  StatusOr<provenance::ClosureResult> ProvenanceAncestors(Oid oid,
                                                          int max_depth = 0);
  StatusOr<provenance::ClosureResult> ProvenanceDescendants(Oid oid,
                                                            int max_depth = 0);
  StatusOr<provenance::WhyResult> ProvenanceWhy(Oid oid);
  StatusOr<provenance::WhereResult> ProvenanceWhere(Oid oid);
  StatusOr<provenance::DiffResult> ProvenanceDiff(Oid a, Oid b);

  const provenance::ProvenanceIndex& provenance_index() const {
    return *prov_index_;
  }
  // Task fetches that crossed into the archive chain (metrics, tests).
  uint64_t provenance_archive_fetches() const {
    return prov_source_->archive_fetches();
  }

  // ---- lineage & Petri net ----
  LineageGraph lineage() const { return LineageGraph(task_log_.get()); }
  StatusOr<DerivationNet> BuildDerivationNet() const {
    return DerivationNet::Build(catalog_->classes(), processes_);
  }
  // Current marking: stored object count per class.
  StatusOr<DerivationNet::Marking> CurrentMarking() const;
  // Can an object of `class_name` be produced from the stored data?
  StatusOr<bool> CanDerive(const std::string& class_name) const;

  // ---- experiments ----
  StatusOr<ExperimentId> DefineExperiment(Experiment experiment) {
    return experiments_->Define(std::move(experiment));
  }
  StatusOr<ReproductionReport> Reproduce(const std::string& experiment);

  // ---- clock ----
  // Logical clock recorded on tasks; deterministic sessions set it
  // explicitly, interactive ones may tick it per operation.
  void SetClock(AbsTime now);
  AbsTime clock() const { return now_; }

  Status Flush();

 private:
  GaeaKernel() = default;

  // One attempt to bring the kernel up under `plan`; kCorruption makes
  // Open move on to the next candidate with a fresh kernel.
  static StatusOr<std::unique_ptr<GaeaKernel>> OpenWithPlan(
      const Options& options, Env* env, const recovery::RecoveryPlan& plan);
  // The per-component capture/sync/truncate hooks RunCheckpoint drives.
  std::vector<recovery::CheckpointSource> BuildCheckpointSources();
  // Streams the process registry (name order, versions ascending) and the
  // covered process-journal LSN; mirrors Catalog::SnapshotDefinitions.
  Status SnapshotProcesses(
      const std::function<Status(const std::string&)>& sink,
      uint64_t* covered_lsn) const;

  Status ApplyStatement(ParsedStatement stmt);
  // record_count of one replication component's journal (0 when the
  // component has no journal on this kernel).
  uint64_t ComponentRecordCount(const std::string& component) const;
  // Replays objects.journal idempotently (insert-if-absent at the recorded
  // OID) — on the primary a reconciliation no-op, on a replica the base
  // objects the primary shipped. Runs after the catalog is open (class
  // definitions must exist) and before Recover's invariant check.
  Status ReplayObjectJournal();
  // Applies one objects.journal record: [u64 oid][string DataObject bytes].
  Status ApplyObjectRecord(const std::string& record);
  // Journals the stored bytes of `oid` into objects.journal.
  Status AppendObjectRecord(Oid oid);
  // Journals the outputs of interpolation tasks (process_version 0) recorded
  // after `from_task_id` into objects.journal: interpolation outputs are
  // inserted by the interpolator, not through Insert, yet replicas cannot
  // rematerialize them (the requested instant lives only in the output), so
  // a replicated kernel ships the bytes instead. Query/Reproduce call this
  // after running.
  Status JournalInterpolationOutputs(uint64_t from_task_id);
  // Re-runs a replicated completed task and stores its outputs under the
  // recorded OIDs (skipping ones already present).
  Status RematerializeTask(const Task& task);
  // Eagerly re-derives every completed single-output task whose stored
  // output a crash took with it. Replicas rematerialize when task records
  // arrive, so a replicated primary must do the same at open or its store
  // diverges from what it already shipped.
  Status RematerializeMissingOutputs();
  // Seeds the derivation cache from the recovered task log so a derive
  // retried across a restart finds the memoized output instead of running
  // twice (exactly-once under client retry + idempotency dedup).
  void WarmDerivationCache();
  // The startup invariant check described at RecoveryReport; `env` is the
  // file system the quarantine journal is written through.
  Status Recover(Env* env);
  // Registers the scrape-time collectors that mirror subsystem stats into
  // registry gauges, and hands the deriver its instruments.
  void WireObservability();

  std::string dir_;
  std::string user_ = "gaea";
  PrimitiveClassRegistry primitives_;
  OperatorRegistry ops_;
  std::unique_ptr<Catalog> catalog_;
  ProcessRegistry processes_;
  std::unique_ptr<Journal> process_journal_;
  // Base-object insert journal; non-null only on replicated kernels.
  std::unique_ptr<Journal> object_journal_;
  std::unique_ptr<TaskLog> task_log_;
  std::unique_ptr<provenance::ProvenanceIndex> prov_index_;
  std::unique_ptr<provenance::DbTaskSource> prov_source_;
  std::unique_ptr<ExperimentManager> experiments_;
  std::unique_ptr<Deriver> deriver_;
  std::unique_ptr<DerivationCache> derivation_cache_;
  std::unique_ptr<Interpolator> interpolator_;
  std::unique_ptr<QueryEngine> query_engine_;
  int derive_threads_ = 1;
  AbsTime now_;
  DurabilityMode durability_ = DurabilityMode::kOs;
  RecoveryReport recovery_report_;
  Env* env_ = nullptr;
  obs::MetricsRegistry metrics_;
  obs::Profiler profiler_;
  uint64_t catalog_version_ = 0;
  AnalysisCache analysis_cache_;

  // ---- checkpoint state ----
  // Serializes Checkpoint()/MaybeCheckpoint() runs; never held while a
  // component lock is (each capture hook takes and releases its own).
  std::mutex checkpoint_mu_;
  // Policy thresholds, readable without blocking on a running checkpoint.
  std::atomic<uint64_t> policy_journal_bytes_{0};
  std::atomic<uint64_t> policy_tasks_{0};
  // Set once by Open; read-only afterwards.
  uint64_t recovered_checkpoint_seq_ = 0;
  uint64_t records_replayed_ = 0;
  uint64_t recovery_fallbacks_ = 0;
  // Updated by Checkpoint(), read by stats/metrics threads.
  std::atomic<uint64_t> checkpoint_seq_{0};    // newest installed manifest
  std::atomic<uint64_t> checkpoints_taken_{0};
  std::atomic<uint64_t> checkpoint_failures_{0};
  std::atomic<uint64_t> last_checkpoint_duration_us_{0};
  std::atomic<uint64_t> last_checkpoint_bytes_{0};
  // Policy inputs: task-journal LSN covered by the newest checkpoint, and
  // the live-journal byte floor right after it (post-truncation).
  std::atomic<uint64_t> ckpt_covered_tasks_{0};
  std::atomic<uint64_t> ckpt_bytes_floor_{0};
};

}  // namespace gaea

#endif  // GAEA_GAEA_KERNEL_H_
