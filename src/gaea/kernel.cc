#include "gaea/kernel.h"

#include <algorithm>
#include <cstdlib>
#include <set>

#include "analysis/analyzer.h"
#include "analysis/dataflow.h"
#include "core/tile_pool.h"
#include "obs/trace.h"
#include "query/qparser.h"
#include "replication/shipper.h"
#include "util/string_util.h"

namespace gaea {

StatusOr<std::unique_ptr<GaeaKernel>> GaeaKernel::Open(
    const Options& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("GaeaKernel needs a database directory");
  }
  Env* env = options.env != nullptr ? options.env : Env::Default();
  GAEA_ASSIGN_OR_RETURN(std::vector<recovery::RecoveryPlan> plans,
                        recovery::BuildRecoveryPlans(env, options.dir));
  uint64_t newest_seq = 0;
  for (const recovery::RecoveryPlan& plan : plans) {
    newest_seq = std::max(newest_seq, plan.checkpoint_seq);
  }
  Status last_error = Status::OK();
  for (size_t i = 0; i < plans.size(); ++i) {
    auto kernel = OpenWithPlan(options, env, plans[i]);
    if (kernel.ok()) {
      (*kernel)->recovery_fallbacks_ = i;
      (*kernel)->checkpoint_seq_.store(newest_seq, std::memory_order_release);
      return kernel;
    }
    // Only corruption justifies retrying under an older plan — an
    // environmental error (ENOSPC, permissions) would fail every candidate
    // identically. Each attempt starts from a fresh kernel, so a plan that
    // died mid-load leaves nothing behind.
    if (kernel.status().code() != StatusCode::kCorruption) {
      return kernel.status();
    }
    last_error = kernel.status();
  }
  return last_error;
}

StatusOr<std::unique_ptr<GaeaKernel>> GaeaKernel::OpenWithPlan(
    const Options& options, Env* env, const recovery::RecoveryPlan& plan) {
  std::unique_ptr<GaeaKernel> kernel(new GaeaKernel());
  kernel->dir_ = options.dir;
  kernel->user_ = options.user;
  kernel->env_ = env;
  kernel->durability_ = options.durability;
  kernel->primitives_ = PrimitiveClassRegistry::WithBuiltins();
  GAEA_RETURN_IF_ERROR(RegisterBuiltinOperators(&kernel->ops_));
  kernel->recovered_checkpoint_seq_ = plan.checkpoint_seq;

  // Builds the recovery hook one journal-backed component feeds its Open:
  // snapshot load + tail replay under a checkpoint plan, archive chain +
  // full live replay under the last-resort plan, nothing when the plan
  // does not mention the component (fresh database).
  auto make_recovery = [env, &plan](const std::string& name,
                                    const std::string& db_dir,
                                    JournalRecovery* out) -> bool {
    auto it = plan.components.find(name);
    if (it == plan.components.end()) return false;
    const recovery::ComponentPlan& cp = it->second;
    if (cp.has_snapshot) {
      recovery::SnapshotEntry entry = cp.entry;
      out->load_snapshot =
          [env, db_dir, entry](
              const std::function<Status(const std::string&)>& apply) {
            return recovery::ReadSnapshot(env, db_dir, entry, apply);
          };
      out->start_lsn = cp.start_lsn;
      return true;
    }
    if (cp.archives.empty()) return false;
    std::vector<std::string> archives = cp.archives;
    uint64_t expected = cp.start_lsn;
    out->load_snapshot =
        [env, archives, expected](
            const std::function<Status(const std::string&)>& apply) -> Status {
      GAEA_ASSIGN_OR_RETURN(uint64_t cursor,
                            recovery::ReplayArchiveChain(env, archives, apply));
      if (cursor != expected) {
        return Status::Corruption(
            "archive chain ends at LSN " + std::to_string(cursor) +
            ", expected " + std::to_string(expected));
      }
      return Status::OK();
    };
    out->start_lsn = expected;
    return true;
  };

  // The catalog creates the directory and replays class/concept records.
  JournalRecovery catalog_rec;
  const JournalRecovery* catalog_rec_ptr =
      make_recovery("catalog", options.dir, &catalog_rec) ? &catalog_rec
                                                          : nullptr;
  GAEA_ASSIGN_OR_RETURN(kernel->catalog_,
                        Catalog::Open(options.dir, env, catalog_rec_ptr));
  kernel->catalog_->SetDurability(options.durability);

  // Processes journal. The registry re-derives each version number as it
  // registers (per name, ascending), so both the snapshot stream and the
  // journal tail reproduce the exact version history.
  GAEA_ASSIGN_OR_RETURN(kernel->process_journal_,
                        Journal::Open(options.dir + "/process.journal", env));
  kernel->process_journal_->set_durability(options.durability);
  auto apply_process = [&kernel](const std::string& record) -> Status {
    BinaryReader r(record);
    GAEA_ASSIGN_OR_RETURN(ProcessDef def, ProcessDef::Deserialize(&r));
    return kernel->processes_.Register(std::move(def)).status();
  };
  JournalRecovery process_rec;
  uint64_t process_start = 0;
  if (make_recovery("process", options.dir, &process_rec)) {
    GAEA_RETURN_IF_ERROR(process_rec.load_snapshot(apply_process));
    process_start = process_rec.start_lsn;
  }
  GAEA_RETURN_IF_ERROR(
      kernel->process_journal_->Replay(apply_process, process_start));

  JournalRecovery tasks_rec;
  const JournalRecovery* tasks_rec_ptr =
      make_recovery("tasks", options.dir, &tasks_rec) ? &tasks_rec : nullptr;
  GAEA_ASSIGN_OR_RETURN(
      kernel->task_log_,
      TaskLog::Open(options.dir + "/tasks.journal", env, tasks_rec_ptr));
  kernel->task_log_->SetDurability(options.durability);

  // Provenance index: catch up with the recovered log (rebuilding from it
  // when a tree came up torn or ahead of the journals), then hook task
  // commits so the index advances inside the log mutex — a query never
  // observes a half-indexed task, and replication apply is covered by the
  // same hook.
  GAEA_ASSIGN_OR_RETURN(kernel->prov_index_,
                        provenance::ProvenanceIndex::Open(options.dir, env));
  GAEA_RETURN_IF_ERROR(kernel->prov_index_->CatchUp(*kernel->task_log_));
  provenance::ProvenanceIndex* prov = kernel->prov_index_.get();
  kernel->task_log_->SetCommitHook(
      [prov](const Task& task) { return prov->IndexTask(task); });
  kernel->prov_source_ = std::make_unique<provenance::DbTaskSource>(
      env, options.dir, kernel->task_log_.get());

  JournalRecovery exp_rec;
  const JournalRecovery* exp_rec_ptr =
      make_recovery("experiments", options.dir, &exp_rec) ? &exp_rec : nullptr;
  GAEA_ASSIGN_OR_RETURN(
      kernel->experiments_,
      ExperimentManager::Open(options.dir + "/experiments.journal", env,
                              exp_rec_ptr));
  kernel->experiments_->SetDurability(options.durability);

  // Cluster members additionally journal base-object bytes so inserts ship
  // to replicas. Not covered by checkpoints (the object store itself is the
  // durable state); replay is idempotent, so a full pass per open is a
  // reconciliation on the primary and the shipped objects on a replica.
  if (options.replicated) {
    GAEA_ASSIGN_OR_RETURN(
        kernel->object_journal_,
        Journal::Open(options.dir + "/objects.journal", env));
    kernel->object_journal_->set_durability(options.durability);
    GAEA_RETURN_IF_ERROR(kernel->ReplayObjectJournal());
  }

  // OID allocator floor recorded in the manifest: belt-and-suspenders
  // against reallocating an OID whose index pages died with the crash.
  if (plan.next_oid > 0) {
    kernel->catalog_->store()->EnsureNextOidAtLeast(plan.next_oid);
  }

  // What this startup actually replayed from journals (checkpoints exist
  // to bound this number; stats/CI assert on it). Archive-chain records
  // count too — the full-replay plan really does the whole history.
  uint64_t replayed = 0;
  auto add_replayed = [&](const std::string& name, uint64_t count) {
    auto it = plan.components.find(name);
    uint64_t start = (it != plan.components.end() && it->second.has_snapshot)
                         ? it->second.entry.covered_lsn
                         : 0;
    replayed += count - std::min(start, count);
  };
  add_replayed("catalog", kernel->catalog_->JournalRecordCount());
  add_replayed("process", kernel->process_journal_->record_count());
  add_replayed("tasks", kernel->task_log_->JournalRecordCount());
  add_replayed("experiments", kernel->experiments_->JournalRecordCount());
  if (kernel->object_journal_ != nullptr) {
    add_replayed("objects", kernel->object_journal_->record_count());
  }
  kernel->records_replayed_ = replayed;
  if (plan.checkpoint_seq > 0) {
    auto it = plan.components.find("tasks");
    if (it != plan.components.end() && it->second.has_snapshot) {
      kernel->ckpt_covered_tasks_.store(it->second.entry.covered_lsn,
                                        std::memory_order_release);
    }
  }

  kernel->deriver_ = std::make_unique<Deriver>(
      kernel->catalog_.get(), &kernel->processes_, &kernel->ops_,
      kernel->task_log_.get());
  kernel->deriver_->set_user(options.user);
  kernel->derivation_cache_ = std::make_unique<DerivationCache>();
  kernel->interpolator_ = std::make_unique<Interpolator>(
      kernel->catalog_.get(), kernel->task_log_.get());
  kernel->interpolator_->set_user(options.user);
  kernel->query_engine_ = std::make_unique<QueryEngine>(
      kernel->catalog_.get(), &kernel->processes_, kernel->deriver_.get(),
      kernel->interpolator_.get());
  GAEA_RETURN_IF_ERROR(kernel->Recover(env));
  // Cluster members seed the derivation cache from the recovered task log:
  // a derive the client retries across a primary crash then hits the cache
  // and returns the original OIDs instead of recording a duplicate task
  // (exactly-once together with the server's idempotency dedup).
  if (kernel->object_journal_ != nullptr) {
    // Restore derived objects whose pages never reached disk before warming
    // the cache: warming only memoizes tasks whose output is stored, and a
    // replicated kernel must hold the exact bytes it shipped to replicas.
    GAEA_RETURN_IF_ERROR(kernel->RematerializeMissingOutputs());
    kernel->WarmDerivationCache();
  }
  kernel->WireObservability();
  return kernel;
}

void GaeaKernel::WireObservability() {
  deriver_->set_env(env_);
  deriver_->set_profiler(&profiler_);
  deriver_->set_metrics(metrics_.GetCounter("gaea_derives_completed_total"),
                        metrics_.GetCounter("gaea_derives_failed_total"),
                        metrics_.GetHistogram("gaea_derive_latency_micros"));

  // Scrape-time mirror of subsystem state into gauges. The callback runs
  // inside MetricsRegistry::Render with no registry lock held; everything
  // it reads is itself thread-safe.
  metrics_.AddCollector([this] {
    metrics_.GetGauge("gaea_catalog_classes")
        ->Set(static_cast<int64_t>(catalog_->classes().size()));
    metrics_.GetGauge("gaea_catalog_concepts")
        ->Set(static_cast<int64_t>(catalog_->concepts().size()));
    metrics_.GetGauge("gaea_catalog_processes")
        ->Set(static_cast<int64_t>(processes_.ListLatest().size()));
    metrics_.GetGauge("gaea_catalog_objects")->Set(catalog_->ObjectCount());
    metrics_.GetGauge("gaea_tasks_logged")
        ->Set(static_cast<int64_t>(task_log_->size()));
    metrics_.GetGauge("gaea_quarantined_tasks")
        ->Set(static_cast<int64_t>(recovery_report_.quarantined.size()));

    DerivationCache::Stats cache = derivation_cache_->stats();
    metrics_.GetGauge("gaea_derivation_cache_hits")
        ->Set(static_cast<int64_t>(cache.hits));
    metrics_.GetGauge("gaea_derivation_cache_misses")
        ->Set(static_cast<int64_t>(cache.misses));
    metrics_.GetGauge("gaea_derivation_cache_evictions")
        ->Set(static_cast<int64_t>(cache.evictions));
    metrics_.GetGauge("gaea_derivation_cache_invalidations")
        ->Set(static_cast<int64_t>(cache.invalidations));
    metrics_.GetGauge("gaea_derivation_cache_entries")
        ->Set(static_cast<int64_t>(cache.entries));
    metrics_.GetGauge("gaea_derivation_cache_capacity")
        ->Set(static_cast<int64_t>(cache.capacity));

    auto pool_gauges = [this](const BufferPool* pool, const char* label) {
      std::string suffix = std::string("{pool=\"") + label + "\"}";
      metrics_.GetGauge("gaea_pool_page_hits" + suffix)
          ->Set(static_cast<int64_t>(pool->hits()));
      metrics_.GetGauge("gaea_pool_page_misses" + suffix)
          ->Set(static_cast<int64_t>(pool->misses()));
      metrics_.GetGauge("gaea_pool_page_evictions" + suffix)
          ->Set(static_cast<int64_t>(pool->evictions()));
    };
    pool_gauges(catalog_->store()->heap_pool(), "heap");
    pool_gauges(catalog_->store()->index_pool(), "index");

    metrics_.GetGauge("gaea_journal_appends{journal=\"process\"}")
        ->Set(process_journal_->appended());
    metrics_.GetGauge("gaea_journal_appends{journal=\"tasks\"}")
        ->Set(task_log_->journal_appended());

    metrics_.GetGauge("gaea_provenance_index_entries")
        ->Set(prov_index_->entry_count());
    metrics_.GetGauge("gaea_provenance_indexed_through")
        ->Set(static_cast<int64_t>(prov_index_->indexed_through()));
    metrics_.GetGauge("gaea_provenance_index_rebuilds")
        ->Set(static_cast<int64_t>(prov_index_->rebuilds()));
    metrics_.GetGauge("gaea_provenance_archive_fetches")
        ->Set(static_cast<int64_t>(prov_source_->archive_fetches()));

    TilePool::Stats tiles = TilePool::Global().stats();
    metrics_.GetGauge("gaea_tile_jobs_total")
        ->Set(static_cast<int64_t>(tiles.jobs));
    metrics_.GetGauge("gaea_tile_fanout_jobs_total")
        ->Set(static_cast<int64_t>(tiles.fanout_jobs));
    metrics_.GetGauge("gaea_tile_inline_jobs_total")
        ->Set(static_cast<int64_t>(tiles.inline_jobs));
    metrics_.GetGauge("gaea_tile_tiles_total")
        ->Set(static_cast<int64_t>(tiles.tiles));
    metrics_.GetGauge("gaea_tile_helper_tiles_total")
        ->Set(static_cast<int64_t>(tiles.helper_tiles));
    metrics_.GetGauge("gaea_tile_helpers")->Set(tiles.helpers);

    metrics_.GetGauge("gaea_checkpoint_seq")
        ->Set(static_cast<int64_t>(
            checkpoint_seq_.load(std::memory_order_acquire)));
    metrics_.GetGauge("gaea_checkpoint_last_duration_micros")
        ->Set(static_cast<int64_t>(
            last_checkpoint_duration_us_.load(std::memory_order_acquire)));
    metrics_.GetGauge("gaea_checkpoint_last_snapshot_bytes")
        ->Set(static_cast<int64_t>(
            last_checkpoint_bytes_.load(std::memory_order_acquire)));
    metrics_.GetGauge("gaea_recovery_records_replayed")
        ->Set(static_cast<int64_t>(records_replayed_));
    metrics_.GetGauge("gaea_recovery_checkpoint_seq")
        ->Set(static_cast<int64_t>(recovered_checkpoint_seq_));
    metrics_.GetGauge("gaea_recovery_fallbacks")
        ->Set(static_cast<int64_t>(recovery_fallbacks_));

    metrics_.GetGauge("gaea_store_next_oid")
        ->Set(static_cast<int64_t>(catalog_->store()->next_oid()));
    metrics_.GetGauge("gaea_store_scrubbed_entries")
        ->Set(static_cast<int64_t>(catalog_->store()->scrubbed_entries()));
    metrics_.GetGauge("gaea_store_restored_entries")
        ->Set(static_cast<int64_t>(catalog_->store()->restored_entries()));
  });
}

Status GaeaKernel::Recover(Env* env) {
  RecoveryReport report;
  std::vector<std::pair<TaskId, std::string>> orphans;
  for (const Task& task : task_log_->tasks()) {
    if (task.status != TaskStatus::kCompleted) continue;
    report.tasks_checked++;
    for (Oid oid : task.outputs) {
      if (oid > report.max_task_output) report.max_task_output = oid;
      if (catalog_->ContainsObject(oid)) continue;
      // A missing output is legitimate if the task can be replayed: Evict
      // deliberately drops stored bytes of re-derivable objects. External
      // tasks (version -1) and tasks whose process definition vanished with
      // the crash have no way back — quarantine those.
      bool rederivable =
          task.process_version >= 1 &&
          processes_.Version(task.process_name, task.process_version).ok();
      if (rederivable) {
        report.rederivable_missing++;
      } else {
        orphans.emplace_back(task.id,
                             "output " + std::to_string(oid) +
                                 " lost and process " + task.process_name +
                                 " v" + std::to_string(task.process_version) +
                                 " not replayable");
        break;  // one quarantine record per task
      }
    }
  }
  // OIDs recorded by committed tasks must never be reallocated, even when
  // the objects themselves (and the index pages that recovered next_oid)
  // were lost in the crash.
  if (report.max_task_output != kInvalidOid) {
    catalog_->store()->EnsureNextOidAtLeast(report.max_task_output + 1);
  }
  if (!orphans.empty()) {
    // Quarantine is itself a journal so reports survive reopen; records are
    // "id<TAB>reason" text, deduplicated against prior runs by replay.
    GAEA_ASSIGN_OR_RETURN(std::unique_ptr<Journal> quarantine,
                          Journal::Open(dir_ + "/quarantine.journal", env));
    quarantine->set_durability(durability_);
    std::set<TaskId> known;
    GAEA_RETURN_IF_ERROR(
        quarantine->Replay([&known](const std::string& record) -> Status {
          known.insert(static_cast<TaskId>(
              std::strtoull(record.c_str(), nullptr, 10)));
          return Status::OK();
        }));
    for (const auto& [id, reason] : orphans) {
      report.quarantined.push_back(id);
      if (known.count(id) > 0) continue;
      GAEA_RETURN_IF_ERROR(
          quarantine->Append(std::to_string(id) + "\t" + reason));
    }
    GAEA_RETURN_IF_ERROR(quarantine->Sync());
  }
  recovery_report_ = std::move(report);
  return Status::OK();
}

Status GaeaKernel::SnapshotProcesses(
    const std::function<Status(const std::string&)>& sink,
    uint64_t* covered_lsn) const {
  // Grouped by name, versions ascending: registration re-derives each
  // version number, and per-name ordering is all that matters (names are
  // independent). Must not race DefineProcess — see Checkpoint().
  for (const ProcessDef* latest : processes_.ListLatest()) {
    GAEA_ASSIGN_OR_RETURN(std::vector<const ProcessDef*> history,
                          processes_.History(latest->name()));
    for (const ProcessDef* def : history) {
      BinaryWriter w;
      def->Serialize(&w);
      GAEA_RETURN_IF_ERROR(sink(w.buffer()));
    }
  }
  *covered_lsn = process_journal_->record_count();
  return Status::OK();
}

std::vector<recovery::CheckpointSource> GaeaKernel::BuildCheckpointSources() {
  std::vector<recovery::CheckpointSource> sources;
  {
    recovery::CheckpointSource s;
    s.component = "catalog";
    s.capture = [this](const std::function<Status(const std::string&)>& sink,
                       uint64_t* lsn) {
      return catalog_->SnapshotDefinitions(sink, lsn);
    };
    s.sync_journal = [this] { return catalog_->SyncJournal(); };
    s.base_lsn = [this] { return catalog_->JournalBaseLsn(); };
    s.truncate_prefix = [this](uint64_t upto, const std::string& path) {
      return catalog_->TruncateJournalPrefix(upto, path);
    };
    sources.push_back(std::move(s));
  }
  {
    recovery::CheckpointSource s;
    s.component = "process";
    s.capture = [this](const std::function<Status(const std::string&)>& sink,
                       uint64_t* lsn) { return SnapshotProcesses(sink, lsn); };
    s.sync_journal = [this] { return process_journal_->Sync(); };
    s.base_lsn = [this] { return process_journal_->base_lsn(); };
    s.truncate_prefix = [this](uint64_t upto, const std::string& path) {
      return process_journal_->TruncatePrefix(upto, path);
    };
    sources.push_back(std::move(s));
  }
  {
    recovery::CheckpointSource s;
    s.component = "tasks";
    s.capture = [this](const std::function<Status(const std::string&)>& sink,
                       uint64_t* lsn) { return task_log_->Snapshot(sink, lsn); };
    s.sync_journal = [this] { return task_log_->SyncJournal(); };
    s.base_lsn = [this] { return task_log_->JournalBaseLsn(); };
    s.truncate_prefix = [this](uint64_t upto, const std::string& path) {
      return task_log_->TruncateJournalPrefix(upto, path);
    };
    sources.push_back(std::move(s));
  }
  {
    recovery::CheckpointSource s;
    s.component = "experiments";
    s.capture = [this](const std::function<Status(const std::string&)>& sink,
                       uint64_t* lsn) {
      return experiments_->Snapshot(sink, lsn);
    };
    s.sync_journal = [this] { return experiments_->SyncJournal(); };
    s.base_lsn = [this] { return experiments_->JournalBaseLsn(); };
    s.truncate_prefix = [this](uint64_t upto, const std::string& path) {
      return experiments_->TruncateJournalPrefix(upto, path);
    };
    sources.push_back(std::move(s));
  }
  return sources;
}

StatusOr<recovery::CheckpointInfo> GaeaKernel::Checkpoint() {
  std::lock_guard<std::mutex> lock(checkpoint_mu_);
  obs::SpanGuard span("checkpoint", "kernel");
  metrics_.GetCounter("gaea_checkpoints_total")->Inc();
  // Objects referenced by captured tasks — and the next_oid floor the
  // manifest records — must be durable before the manifest can claim them.
  Status flushed = catalog_->Flush();
  StatusOr<recovery::CheckpointInfo> info =
      flushed.ok() ? recovery::RunCheckpoint(env_, dir_,
                                             BuildCheckpointSources(),
                                             catalog_->store()->next_oid())
                   : StatusOr<recovery::CheckpointInfo>(flushed);
  if (!info.ok()) {
    checkpoint_failures_.fetch_add(1, std::memory_order_acq_rel);
    metrics_.GetCounter("gaea_checkpoint_failures_total")->Inc();
    return info;
  }
  checkpoints_taken_.fetch_add(1, std::memory_order_acq_rel);
  checkpoint_seq_.store(info->seq, std::memory_order_release);
  last_checkpoint_duration_us_.store(info->duration_us,
                                     std::memory_order_release);
  last_checkpoint_bytes_.store(info->snapshot_bytes,
                               std::memory_order_release);
  auto covered = info->covered.find("tasks");
  if (covered != info->covered.end()) {
    ckpt_covered_tasks_.store(covered->second, std::memory_order_release);
  }
  ckpt_bytes_floor_.store(catalog_->JournalBytes() +
                              task_log_->JournalBytes() +
                              experiments_->JournalBytes() +
                              process_journal_->size_bytes(),
                          std::memory_order_release);
  // Persist the provenance index watermark alongside: recovery then only
  // re-indexes the post-checkpoint tail instead of re-passing the history.
  GAEA_RETURN_IF_ERROR(prov_index_->Flush());
  return info;
}

void GaeaKernel::SetCheckpointPolicy(const CheckpointPolicy& policy) {
  policy_journal_bytes_.store(policy.journal_bytes, std::memory_order_release);
  policy_tasks_.store(policy.tasks, std::memory_order_release);
}

GaeaKernel::CheckpointPolicy GaeaKernel::checkpoint_policy() const {
  CheckpointPolicy policy;
  policy.journal_bytes = policy_journal_bytes_.load(std::memory_order_acquire);
  policy.tasks = policy_tasks_.load(std::memory_order_acquire);
  return policy;
}

StatusOr<bool> GaeaKernel::MaybeCheckpoint() {
  CheckpointPolicy policy = checkpoint_policy();
  if (policy.journal_bytes == 0 && policy.tasks == 0) return false;
  bool due = false;
  if (policy.tasks > 0) {
    uint64_t total = task_log_->JournalRecordCount();
    uint64_t covered = ckpt_covered_tasks_.load(std::memory_order_acquire);
    due = total > covered && total - covered >= policy.tasks;
  }
  if (!due && policy.journal_bytes > 0) {
    uint64_t live = catalog_->JournalBytes() + task_log_->JournalBytes() +
                    experiments_->JournalBytes() +
                    process_journal_->size_bytes();
    uint64_t floor = ckpt_bytes_floor_.load(std::memory_order_acquire);
    due = live > floor && live - floor >= policy.journal_bytes;
  }
  if (!due) return false;
  GAEA_RETURN_IF_ERROR(Checkpoint().status());
  return true;
}

void GaeaKernel::SetClock(AbsTime now) {
  now_ = now;
  deriver_->set_clock(now);
  interpolator_->set_clock(now);
}

Status GaeaKernel::ApplyStatement(ParsedStatement stmt) {
  if (auto* class_def = std::get_if<ClassDef>(&stmt)) {
    // A derived class must reference a known process — enforced here rather
    // than in the catalog so base-first scripts still work when the process
    // arrives in the same script before first use.
    GAEA_RETURN_IF_ERROR(
        catalog_->DefineClass(std::move(*class_def)).status());
    ++catalog_version_;
    return Status::OK();
  }
  if (auto* process_def = std::get_if<ProcessDef>(&stmt)) {
    return DefineProcess(std::move(*process_def)).status();
  }
  if (auto* concept_stmt = std::get_if<ConceptStmt>(&stmt)) {
    if (!catalog_->concepts().Contains(concept_stmt->name)) {
      GAEA_RETURN_IF_ERROR(
          catalog_->DefineConcept(concept_stmt->name, concept_stmt->doc)
              .status());
    }
    for (const std::string& parent : concept_stmt->isa_parents) {
      if (!catalog_->concepts().Contains(parent)) {
        GAEA_RETURN_IF_ERROR(catalog_->DefineConcept(parent, "").status());
      }
      GAEA_RETURN_IF_ERROR(catalog_->AddIsA(concept_stmt->name, parent));
    }
    for (const std::string& member : concept_stmt->member_classes) {
      GAEA_RETURN_IF_ERROR(
          catalog_->AddConceptMember(concept_stmt->name, member));
    }
    ++catalog_version_;
    return Status::OK();
  }
  return Status::Internal("unhandled DDL statement variant");
}

Status GaeaKernel::ExecuteDdl(const std::string& source) {
  return ExecuteDdl(source, nullptr);
}

Status GaeaKernel::ExecuteDdl(const std::string& source,
                              std::vector<Diagnostic>* diagnostics) {
  GAEA_ASSIGN_OR_RETURN(std::vector<ParsedStatement> stmts,
                        ParseScript(source));
  for (ParsedStatement& stmt : stmts) {
    GAEA_RETURN_IF_ERROR(ApplyStatement(std::move(stmt)));
  }
  if (diagnostics != nullptr) {
    // Warn-on-load: surface everything the analyzer finds in the catalog as
    // it now stands. Cross-statement findings (a DERIVED BY process still
    // missing, an unreachable transition) are legal mid-bootstrap — a later
    // script may complete the network — so they do not fail the load.
    // Incremental: only processes new to this script are re-analyzed.
    const std::vector<Diagnostic>& found = LintCatalog();
    diagnostics->insert(diagnostics->end(), found.begin(), found.end());
  }
  return Status::OK();
}

const std::vector<Diagnostic>& GaeaKernel::LintCatalog() {
  // GA502 needs to know which classes a concept vouches for: a derivation
  // feeding no further process is not dead if an experiment-level concept
  // covers its output.
  std::set<std::string> covered;
  for (const ConceptDef* concept_def : catalog_->concepts().List()) {
    for (ClassId id : concept_def->member_classes) {
      auto cls = catalog_->classes().LookupById(id);
      if (cls.ok()) covered.insert((*cls)->name());
    }
  }
  return analysis_cache_.Analyze(catalog_version_, catalog_->classes(),
                                 processes_, ops_, &covered);
}

StatusOr<int> GaeaKernel::DefineProcess(ProcessDef def) {
  GAEA_RETURN_IF_ERROR(def.Validate(catalog_->classes(), ops_));
  // Reject-on-error: a process whose template can never hold (trivially
  // false assertion, contradictory cardinalities, ...) would be a dead
  // transition in every derivation net; refuse it at the door.
  std::vector<Diagnostic> diags;
  AnalyzeProcess(def, catalog_->classes(), ops_, &diags);
  if (!HasErrors(diags)) {
    // Dataflow errors (provable shape mismatch, zero divisor, contradicted
    // assertion) are just as fatal as type errors: the template can never
    // fire, or fires into a guaranteed runtime failure.
    ClassSummaries summaries =
        ComputeClassSummaries(catalog_->classes(), processes_, ops_);
    AnalyzeProcessDataflow(def, catalog_->classes(), ops_, summaries, &diags);
  }
  if (HasErrors(diags)) {
    std::string rendered;
    for (const Diagnostic& d : diags) {
      if (d.severity != Severity::kError) continue;
      if (!rendered.empty()) rendered += "; ";
      rendered += d.ToString();
    }
    return Status::InvalidArgument("process " + def.name() +
                                   " rejected by static analysis: " +
                                   rendered);
  }
  std::string name = def.name();
  GAEA_ASSIGN_OR_RETURN(int version, processes_.Register(std::move(def)));
  // Journal the registered (version-stamped) definition.
  GAEA_ASSIGN_OR_RETURN(const ProcessDef* stored,
                        processes_.Version(name, version));
  BinaryWriter w;
  stored->Serialize(&w);
  GAEA_RETURN_IF_ERROR(process_journal_->Append(w.buffer()));
  ++catalog_version_;
  return version;
}

StatusOr<Oid> GaeaKernel::Derive(
    const std::string& process,
    const std::map<std::string, std::vector<Oid>>& inputs, int version) {
  return deriver_->Derive(process, inputs, version);
}

StatusOr<std::vector<DeriveOutcome>> GaeaKernel::DeriveBatch(
    const std::vector<DeriveRequest>& requests) {
  obs::SpanGuard span("derive-batch", "kernel");
  metrics_.GetCounter("gaea_derive_batches_total")->Inc();
  TaskScheduler::Options opts;
  opts.threads = derive_threads_;
  opts.use_cache = true;
  TaskScheduler scheduler(deriver_.get(), catalog_.get(), &processes_,
                          derivation_cache_.get(), opts);
  return scheduler.RunBatch(requests);
}

void GaeaKernel::SetDeriveThreads(int threads) {
  derive_threads_ = threads < 1 ? 1 : threads;
  // One knob, two levels: the same budget caps batch-level scheduler
  // workers and intra-derivation tile helpers. The TilePool's admission
  // policy keeps the combination from oversubscribing (docs/PERF.md).
  TilePool::Global().SetMaxParallel(derive_threads_);
}

StatusOr<Oid> GaeaKernel::DeriveCompound(
    const CompoundProcessDef& compound,
    const std::map<std::string, std::vector<Oid>>& external_inputs) {
  obs::SpanGuard span("compound:" + compound.name(), "kernel");
  metrics_.GetCounter("gaea_compound_runs_total")->Inc();
  TaskScheduler::Options opts;
  opts.threads = derive_threads_;
  opts.use_cache = false;  // every compound run records its stage tasks
  TaskScheduler scheduler(deriver_.get(), catalog_.get(), &processes_,
                          nullptr, opts);
  return scheduler.RunCompound(compound, external_inputs);
}

StatusOr<Oid> GaeaKernel::DeriveOrReuse(
    const std::string& process,
    const std::map<std::string, std::vector<Oid>>& inputs, int version) {
  const ProcessDef* proc;
  if (version > 0) {
    GAEA_ASSIGN_OR_RETURN(proc, processes_.Version(process, version));
  } else {
    GAEA_ASSIGN_OR_RETURN(proc, processes_.Latest(process));
  }
  int resolved_version = proc->version();

  // Fast path: the derivation cache memoizes exactly this question.
  std::string key = DerivationCache::MakeKey(*proc, inputs);
  if (std::optional<Oid> hit = derivation_cache_->Lookup(key)) {
    if (catalog_->ContainsObject(*hit)) return *hit;
    derivation_cache_->InvalidateOutput(*hit);
  }

  // Newest-first over equivalent completed runs; the first whose output is
  // still stored wins (earlier equivalents may have been evicted).
  const auto& tasks = task_log_->tasks();
  for (auto it = tasks.rbegin(); it != tasks.rend(); ++it) {
    if (it->status == TaskStatus::kCompleted &&
        it->process_version == resolved_version &&
        it->process_name == process && it->inputs == inputs &&
        it->outputs.size() == 1 &&
        catalog_->ContainsObject(it->outputs[0])) {
      derivation_cache_->Insert(key, it->outputs[0]);
      return it->outputs[0];
    }
  }
  GAEA_ASSIGN_OR_RETURN(Oid oid, Derive(process, inputs, resolved_version));
  derivation_cache_->Insert(key, oid);
  return oid;
}

// ---------------------------------------------------------------------------
// Replication
// ---------------------------------------------------------------------------

const std::vector<std::string>& GaeaKernel::ReplicationComponents() {
  static const std::vector<std::string>* kComponents =
      new std::vector<std::string>{"catalog", "process", "objects", "tasks",
                                   "experiments"};
  return *kComponents;
}

uint64_t GaeaKernel::ComponentRecordCount(const std::string& component) const {
  if (component == "catalog") return catalog_->JournalRecordCount();
  if (component == "process") return process_journal_->record_count();
  if (component == "objects") {
    return object_journal_ == nullptr ? 0 : object_journal_->record_count();
  }
  if (component == "tasks") return task_log_->JournalRecordCount();
  if (component == "experiments") return experiments_->JournalRecordCount();
  return 0;
}

uint64_t GaeaKernel::ClusterLsn() const {
  uint64_t total = 0;
  for (const std::string& component : ReplicationComponents()) {
    total += ComponentRecordCount(component);
  }
  return total;
}

std::vector<std::pair<std::string, uint64_t>> GaeaKernel::ReplicationCursors()
    const {
  std::vector<std::pair<std::string, uint64_t>> cursors;
  for (const std::string& component : ReplicationComponents()) {
    cursors.emplace_back(component, ComponentRecordCount(component));
  }
  return cursors;
}

StatusOr<Oid> GaeaKernel::Insert(DataObject obj) {
  GAEA_ASSIGN_OR_RETURN(Oid oid, catalog_->InsertObject(std::move(obj)));
  if (object_journal_ != nullptr) {
    GAEA_RETURN_IF_ERROR(AppendObjectRecord(oid));
  }
  return oid;
}

Status GaeaKernel::AppendObjectRecord(Oid oid) {
  // Journal the exact stored bytes, not a re-serialization: the replica's
  // store ends up byte-identical and convergence checks can compare raw
  // payloads.
  GAEA_ASSIGN_OR_RETURN(std::string payload, catalog_->store()->Get(oid));
  BinaryWriter w;
  w.PutU64(oid);
  w.PutString(payload);
  return object_journal_->Append(w.buffer());
}

Status GaeaKernel::ApplyObjectRecord(const std::string& record) {
  BinaryReader r(record);
  GAEA_ASSIGN_OR_RETURN(Oid oid, r.GetU64());
  GAEA_ASSIGN_OR_RETURN(std::string payload, r.GetString());
  BinaryReader obj_reader(payload);
  GAEA_ASSIGN_OR_RETURN(DataObject obj, DataObject::Deserialize(&obj_reader));
  Status inserted = catalog_->InsertObjectAt(std::move(obj), oid);
  // Duplicate delivery (or a primary replaying its own journal) is a no-op.
  if (inserted.code() == StatusCode::kAlreadyExists) return Status::OK();
  return inserted;
}

Status GaeaKernel::ReplayObjectJournal() {
  return object_journal_->Replay(
      [this](const std::string& record) { return ApplyObjectRecord(record); });
}

Status GaeaKernel::JournalInterpolationOutputs(uint64_t from_task_id) {
  uint64_t total = task_log_->size();
  for (TaskId id = from_task_id + 1; id <= total; ++id) {
    GAEA_ASSIGN_OR_RETURN(const Task* task, task_log_->Get(id));
    if (task->status != TaskStatus::kCompleted || task->process_version != 0) {
      continue;
    }
    for (Oid oid : task->outputs) {
      GAEA_RETURN_IF_ERROR(AppendObjectRecord(oid));
    }
  }
  return Status::OK();
}

Status GaeaKernel::ShipRange(const std::string& component, uint64_t from,
                             size_t max_records, size_t max_bytes,
                             std::vector<std::string>* out, uint64_t* next) {
  *next = from;
  auto read_live = [&](uint64_t f, size_t records_left, size_t bytes_left,
                       uint64_t* n) -> Status {
    if (component == "catalog") {
      return catalog_->ReadJournalRange(f, records_left, bytes_left, out, n);
    }
    if (component == "process") {
      return process_journal_->ReadRange(f, records_left, bytes_left, out, n);
    }
    if (component == "objects") {
      if (object_journal_ == nullptr) {
        *n = f;
        return Status::OK();
      }
      return object_journal_->ReadRange(f, records_left, bytes_left, out, n);
    }
    if (component == "tasks") {
      return task_log_->ReadJournalRange(f, records_left, bytes_left, out, n);
    }
    if (component == "experiments") {
      return experiments_->ReadJournalRange(f, records_left, bytes_left, out,
                                            n);
    }
    return Status::InvalidArgument("unknown replication component: " +
                                   component);
  };
  size_t bytes = 0;
  while (out->size() < max_records && bytes < max_bytes) {
    size_t before = out->size();
    Status live = read_live(*next, max_records - out->size(),
                            max_bytes - bytes, next);
    if (live.code() == StatusCode::kOutOfRange) {
      // The prefix was truncated into the archive chain by a concurrent
      // checkpoint; ship from the segments, then loop to cross the seam
      // back into the live journal.
      GAEA_RETURN_IF_ERROR(replication::ReadFromArchives(
          env_, dir_, component, *next, max_records - out->size(),
          max_bytes - bytes, out, next));
    } else {
      GAEA_RETURN_IF_ERROR(live);
    }
    if (out->size() == before) break;  // at the tail (or byte cap reached)
    for (size_t i = before; i < out->size(); ++i) bytes += (*out)[i].size();
  }
  return Status::OK();
}

Status GaeaKernel::ApplyReplicated(const std::string& component, uint64_t from,
                                   const std::vector<std::string>& records) {
  uint64_t count = ComponentRecordCount(component);
  if (from > count) {
    return Status::FailedPrecondition(
        "replication gap in " + component + ": batch starts at LSN " +
        std::to_string(from) + " but only " + std::to_string(count) +
        " records applied");
  }
  // Records below the local count were already applied (duplicate delivery,
  // or a batch straddling the replica's cursor) — skip them idempotently.
  size_t skip = static_cast<size_t>(
      std::min<uint64_t>(count - from, records.size()));
  for (size_t i = skip; i < records.size(); ++i) {
    const std::string& record = records[i];
    if (component == "catalog") {
      GAEA_RETURN_IF_ERROR(catalog_->ApplyReplicatedRecord(record));
      ++catalog_version_;
    } else if (component == "process") {
      BinaryReader r(record);
      GAEA_ASSIGN_OR_RETURN(ProcessDef def, ProcessDef::Deserialize(&r));
      int expected = def.version();
      GAEA_ASSIGN_OR_RETURN(int version,
                            processes_.Register(std::move(def)));
      if (version != expected) {
        return Status::Corruption(
            "replicated process record carries version " +
            std::to_string(expected) + " but registered as v" +
            std::to_string(version));
      }
      GAEA_RETURN_IF_ERROR(process_journal_->Append(record));
      ++catalog_version_;
    } else if (component == "objects") {
      if (object_journal_ == nullptr) {
        return Status::FailedPrecondition(
            "cannot apply object records: kernel not opened replicated");
      }
      GAEA_RETURN_IF_ERROR(ApplyObjectRecord(record));
      GAEA_RETURN_IF_ERROR(object_journal_->Append(record));
    } else if (component == "tasks") {
      BinaryReader r(record);
      GAEA_ASSIGN_OR_RETURN(Task task, Task::Deserialize(&r));
      if (task.status == TaskStatus::kCompleted) {
        // Cross-component cursors are read without a global lock on the
        // primary, so a task can ship before its process version or input
        // objects. kFailedPrecondition makes the applier retry once the
        // missing prefix ships; nothing was persisted.
        for (const auto& [arg, oids] : task.inputs) {
          for (Oid oid : oids) {
            if (!catalog_->ContainsObject(oid)) {
              return Status::FailedPrecondition(
                  "task #" + std::to_string(task.id) + " input object " +
                  std::to_string(oid) + " not yet shipped");
            }
          }
        }
        if (task.process_version >= 1) {
          if (!processes_.Version(task.process_name, task.process_version)
                   .ok()) {
            return Status::FailedPrecondition(
                "task #" + std::to_string(task.id) + " process " +
                task.process_name + " v" +
                std::to_string(task.process_version) + " not yet shipped");
          }
          // Store outputs before the task record, mirroring the primary's
          // insert-then-log order (a crash between the two leaves the same
          // state Recover already handles).
          GAEA_RETURN_IF_ERROR(RematerializeTask(task));
        } else {
          // Interpolation (v0) and external (v-1) outputs cannot be re-run
          // here; their bytes ship through the objects component.
          for (Oid oid : task.outputs) {
            if (!catalog_->ContainsObject(oid)) {
              return Status::FailedPrecondition(
                  "task #" + std::to_string(task.id) + " output object " +
                  std::to_string(oid) + " not yet shipped");
            }
          }
        }
      }
      GAEA_RETURN_IF_ERROR(task_log_->ApplyReplicated(record).status());
    } else if (component == "experiments") {
      GAEA_RETURN_IF_ERROR(experiments_->ApplyReplicated(record));
    } else {
      return Status::InvalidArgument("unknown replication component: " +
                                     component);
    }
  }
  return Status::OK();
}

Status GaeaKernel::RematerializeMissingOutputs() {
  // Task order is id order, so an input that is itself a derived object was
  // rematerialized by an earlier iteration. Tasks the deriver cannot re-run
  // (external, interpolation, multi-output) ship their bytes through the
  // objects journal instead and were restored by its replay; tasks whose
  // process vanished were already quarantined by Recover.
  for (const Task& task : task_log_->tasks()) {
    if (task.status != TaskStatus::kCompleted || task.process_version < 1 ||
        task.outputs.size() != 1) {
      continue;
    }
    if (catalog_->ContainsObject(task.outputs[0])) continue;
    if (!processes_.Version(task.process_name, task.process_version).ok()) {
      continue;
    }
    GAEA_RETURN_IF_ERROR(RematerializeTask(task));
  }
  return Status::OK();
}

Status GaeaKernel::RematerializeTask(const Task& task) {
  bool missing = false;
  for (Oid oid : task.outputs) {
    if (!catalog_->ContainsObject(oid)) missing = true;
  }
  if (!missing) return Status::OK();  // duplicate remat after a crash
  if (task.outputs.size() != 1) {
    return Status::FailedPrecondition(
        "task #" + std::to_string(task.id) +
        " has multiple outputs; cannot rematerialize");
  }
  GAEA_ASSIGN_OR_RETURN(
      const ProcessDef* proc,
      processes_.Version(task.process_name, task.process_version));
  // Pure compute half of a derivation: processes are deterministic, so the
  // replica's object is attribute-identical to the primary's.
  Deriver::Prepared prepared = deriver_->Prepare(*proc, task.inputs);
  GAEA_RETURN_IF_ERROR(prepared.status);
  return catalog_->InsertObjectAt(std::move(*prepared.output),
                                  task.outputs[0]);
}

StatusOr<Oid> GaeaKernel::TryRecordedDerive(
    const std::string& process,
    const std::map<std::string, std::vector<Oid>>& inputs, int version) {
  const ProcessDef* proc;
  if (version > 0) {
    GAEA_ASSIGN_OR_RETURN(proc, processes_.Version(process, version));
  } else {
    GAEA_ASSIGN_OR_RETURN(proc, processes_.Latest(process));
  }
  int resolved_version = proc->version();
  std::string key = DerivationCache::MakeKey(*proc, inputs);
  if (std::optional<Oid> hit = derivation_cache_->Lookup(key)) {
    if (catalog_->ContainsObject(*hit)) return *hit;
    derivation_cache_->InvalidateOutput(*hit);
  }
  const auto& tasks = task_log_->tasks();
  for (auto it = tasks.rbegin(); it != tasks.rend(); ++it) {
    if (it->status == TaskStatus::kCompleted &&
        it->process_version == resolved_version &&
        it->process_name == process && it->inputs == inputs &&
        it->outputs.size() == 1 &&
        catalog_->ContainsObject(it->outputs[0])) {
      derivation_cache_->Insert(key, it->outputs[0]);
      return it->outputs[0];
    }
  }
  return Status::NotFound("no recorded derivation of " + process +
                          " with these inputs");
}

void GaeaKernel::WarmDerivationCache() {
  for (const Task& task : task_log_->tasks()) {
    if (task.status != TaskStatus::kCompleted || task.process_version < 1 ||
        task.outputs.size() != 1) {
      continue;
    }
    if (!catalog_->ContainsObject(task.outputs[0])) continue;
    auto proc = processes_.Version(task.process_name, task.process_version);
    if (!proc.ok()) continue;
    derivation_cache_->Insert(DerivationCache::MakeKey(**proc, task.inputs),
                              task.outputs[0]);
  }
}

Status GaeaKernel::Evict(Oid oid) {
  if (!catalog_->ContainsObject(oid)) {
    return Status::NotFound("object " + std::to_string(oid) + " is not stored");
  }
  auto producer = task_log_->Producer(oid);
  if (!producer.ok()) {
    return Status::FailedPrecondition(
        "object " + std::to_string(oid) +
        " is base data and cannot be regenerated; eviction refused");
  }
  if (!task_log_->Consumers(oid).empty()) {
    return Status::FailedPrecondition(
        "object " + std::to_string(oid) +
        " is an input of recorded derivations; evicting it would break "
        "their replay");
  }
  GAEA_RETURN_IF_ERROR(catalog_->DeleteObject(oid));
  // The memoized derivation no longer points at a stored object.
  derivation_cache_->InvalidateOutput(oid);
  return Status::OK();
}

StatusOr<TaskId> GaeaKernel::RecordExternalTask(
    const std::string& procedure_name,
    const std::map<std::string, std::vector<Oid>>& inputs,
    const std::vector<Oid>& outputs, const std::string& description) {
  if (!IsIdentifier(procedure_name)) {
    return Status::InvalidArgument("bad external procedure name: '" +
                                   procedure_name + "'");
  }
  if (outputs.empty()) {
    return Status::InvalidArgument("external task needs at least one output");
  }
  for (const auto& [arg, oids] : inputs) {
    for (Oid oid : oids) {
      if (!catalog_->ContainsObject(oid)) {
        return Status::NotFound("external task input object " +
                                std::to_string(oid) + " is not stored");
      }
    }
  }
  for (Oid oid : outputs) {
    if (!catalog_->ContainsObject(oid)) {
      return Status::NotFound("external task output object " +
                              std::to_string(oid) + " is not stored");
    }
  }
  Task task;
  task.process_name = procedure_name;
  task.process_version = kExternalTaskVersion;
  task.inputs = inputs;
  task.outputs = outputs;
  task.user = user_;
  task.note = description;
  task.started = now_;
  return task_log_->Append(std::move(task));
}

StatusOr<QueryResult> GaeaKernel::Query(const QueryRequest& request) {
  if (object_journal_ == nullptr) return query_engine_->Execute(request);
  uint64_t watermark = task_log_->size();
  StatusOr<QueryResult> result = query_engine_->Execute(request);
  // A query may interpolate (synthetic v0 tasks); ship those outputs.
  GAEA_RETURN_IF_ERROR(JournalInterpolationOutputs(watermark));
  return result;
}

StatusOr<QueryResult> GaeaKernel::QueryText(const std::string& gql) {
  GAEA_ASSIGN_OR_RETURN(QueryRequest request, ParseQuery(gql));
  return Query(request);
}

StatusOr<std::vector<GaeaKernel::InstanceComparison>>
GaeaKernel::CompareConceptInstances(const std::string& concept_name,
                                    const Window& window) {
  GAEA_ASSIGN_OR_RETURN(const ConceptDef* concept_def,
                        catalog_->concepts().LookupByName(concept_name));
  GAEA_ASSIGN_OR_RETURN(std::set<ClassId> covered,
                        catalog_->concepts().CoveredClasses(concept_def->id));
  // Collect (oid, class name) per covered class within the window.
  std::vector<std::pair<Oid, std::string>> instances;
  for (ClassId class_id : covered) {
    GAEA_ASSIGN_OR_RETURN(const ClassDef* def,
                          catalog_->classes().LookupById(class_id));
    GAEA_ASSIGN_OR_RETURN(
        std::vector<Oid> oids,
        catalog_->Candidates(class_id, window.region, window.time));
    for (Oid oid : oids) instances.emplace_back(oid, def->name());
  }
  LineageGraph graph = lineage();
  std::vector<InstanceComparison> out;
  for (size_t i = 0; i < instances.size(); ++i) {
    for (size_t j = i + 1; j < instances.size(); ++j) {
      GAEA_ASSIGN_OR_RETURN(
          DerivationComparison cmp,
          graph.Compare(instances[i].first, instances[j].first));
      InstanceComparison entry;
      entry.a = instances[i].first;
      entry.b = instances[j].first;
      entry.class_a = instances[i].second;
      entry.class_b = instances[j].second;
      entry.same_procedure = cmp.same_procedure;
      entry.explanation = std::move(cmp.explanation);
      out.push_back(std::move(entry));
    }
  }
  return out;
}

GaeaKernel::Stats GaeaKernel::GetStats() const {
  Stats stats;
  stats.classes = catalog_->classes().size();
  stats.concepts = catalog_->concepts().size();
  stats.processes = processes_.ListLatest().size();
  for (const ProcessDef* def : processes_.ListLatest()) {
    auto history = processes_.History(def->name());
    stats.process_versions += history.ok() ? history->size() : 0;
  }
  stats.objects = static_cast<size_t>(catalog_->ObjectCount());
  stats.tasks = task_log_->size();
  stats.experiments = experiments_->List().size();
  stats.quarantined_tasks = recovery_report_.quarantined.size();
  stats.durability = DurabilityModeName(durability_);
  stats.records_replayed = records_replayed_;
  stats.recovered_checkpoint_seq = recovered_checkpoint_seq_;
  stats.recovery_fallbacks = recovery_fallbacks_;
  stats.checkpoint_seq = checkpoint_seq_.load(std::memory_order_acquire);
  stats.checkpoints_taken =
      checkpoints_taken_.load(std::memory_order_acquire);
  stats.checkpoint_failures =
      checkpoint_failures_.load(std::memory_order_acquire);
  stats.last_checkpoint_duration_us =
      last_checkpoint_duration_us_.load(std::memory_order_acquire);
  stats.last_checkpoint_bytes =
      last_checkpoint_bytes_.load(std::memory_order_acquire);
  stats.journal_records_total =
      catalog_->JournalRecordCount() + process_journal_->record_count() +
      task_log_->JournalRecordCount() + experiments_->JournalRecordCount();
  if (object_journal_ != nullptr) {
    stats.journal_records_total += object_journal_->record_count();
  }
  stats.cluster_lsn = ClusterLsn();
  stats.prov_index_entries = static_cast<uint64_t>(prov_index_->entry_count());
  stats.prov_indexed_through = prov_index_->indexed_through();
  stats.prov_index_rebuilds = prov_index_->rebuilds();
  stats.prov_archive_fetches = prov_source_->archive_fetches();
  stats.derivation_cache = derivation_cache_->stats();
  auto fill_pool = [](const BufferPool* pool, PoolStats* out) {
    out->hits = pool->hits();
    out->misses = pool->misses();
    out->evictions = pool->evictions();
    out->per_shard = pool->PerShardStats();
  };
  fill_pool(catalog_->store()->heap_pool(), &stats.heap_pool);
  fill_pool(catalog_->store()->index_pool(), &stats.index_pool);
  return stats;
}

std::string GaeaKernel::Stats::ToJson() const {
  auto field = [](std::string* json, const char* key, uint64_t value,
                  bool first = false) {
    if (!first) *json += ',';
    *json += '"';
    *json += key;
    *json += "\":";
    *json += std::to_string(value);
  };
  auto pool_json = [&field](const PoolStats& pool) {
    std::string json = "{";
    field(&json, "hits", pool.hits, /*first=*/true);
    field(&json, "misses", pool.misses);
    field(&json, "evictions", pool.evictions);
    json += ",\"shards\":[";
    for (size_t i = 0; i < pool.per_shard.size(); ++i) {
      const BufferPool::ShardStats& shard = pool.per_shard[i];
      if (i > 0) json += ',';
      std::string entry = "{";
      field(&entry, "hits", shard.hits, /*first=*/true);
      field(&entry, "misses", shard.misses);
      field(&entry, "evictions", shard.evictions);
      field(&entry, "resident", shard.resident);
      field(&entry, "pinned", shard.pinned);
      entry += '}';
      json += entry;
    }
    json += "]}";
    return json;
  };
  std::string json = "{";
  field(&json, "classes", classes, /*first=*/true);
  field(&json, "concepts", concepts);
  field(&json, "processes", processes);
  field(&json, "process_versions", process_versions);
  field(&json, "objects", objects);
  field(&json, "tasks", tasks);
  field(&json, "experiments", experiments);
  field(&json, "quarantined_tasks", quarantined_tasks);
  field(&json, "cluster_lsn", cluster_lsn);
  json += ",\"durability\":\"" + durability + "\"";
  json += ",\"recovery\":{";
  field(&json, "records_replayed", records_replayed, /*first=*/true);
  field(&json, "checkpoint_seq", recovered_checkpoint_seq);
  field(&json, "fallbacks", recovery_fallbacks);
  json += "},\"checkpoint\":{";
  field(&json, "seq", checkpoint_seq, /*first=*/true);
  field(&json, "taken", checkpoints_taken);
  field(&json, "failures", checkpoint_failures);
  field(&json, "last_duration_us", last_checkpoint_duration_us);
  field(&json, "last_bytes", last_checkpoint_bytes);
  field(&json, "journal_records", journal_records_total);
  json += "}";
  json += ",\"provenance\":{";
  field(&json, "index_entries", prov_index_entries, /*first=*/true);
  field(&json, "indexed_through", prov_indexed_through);
  field(&json, "rebuilds", prov_index_rebuilds);
  field(&json, "archive_fetches", prov_archive_fetches);
  json += "}";
  json += ",\"derivation_cache\":{";
  field(&json, "entries", derivation_cache.entries, /*first=*/true);
  field(&json, "capacity", derivation_cache.capacity);
  field(&json, "hits", derivation_cache.hits);
  field(&json, "misses", derivation_cache.misses);
  field(&json, "evictions", derivation_cache.evictions);
  field(&json, "invalidations", derivation_cache.invalidations);
  json += "},\"heap_pool\":" + pool_json(heap_pool);
  json += ",\"index_pool\":" + pool_json(index_pool);
  json += '}';
  return json;
}

StatusOr<DerivationNet::Marking> GaeaKernel::CurrentMarking() const {
  DerivationNet::Marking marking;
  for (const ClassDef* def : catalog_->classes().List()) {
    GAEA_ASSIGN_OR_RETURN(std::vector<Oid> oids,
                          catalog_->ObjectsOfClass(def->id()));
    if (!oids.empty()) {
      marking[def->id()] = static_cast<int64_t>(oids.size());
    }
  }
  return marking;
}

StatusOr<bool> GaeaKernel::CanDerive(const std::string& class_name) const {
  GAEA_ASSIGN_OR_RETURN(const ClassDef* def,
                        catalog_->classes().LookupByName(class_name));
  GAEA_ASSIGN_OR_RETURN(DerivationNet net, BuildDerivationNet());
  GAEA_ASSIGN_OR_RETURN(DerivationNet::Marking marking, CurrentMarking());
  return net.CanDerive(def->id(), marking);
}

StatusOr<ReproductionReport> GaeaKernel::Reproduce(
    const std::string& experiment) {
  if (object_journal_ == nullptr) {
    return experiments_->Reproduce(experiment, catalog_.get(), deriver_.get(),
                                   interpolator_.get(), task_log_.get());
  }
  uint64_t watermark = task_log_->size();
  StatusOr<ReproductionReport> report = experiments_->Reproduce(
      experiment, catalog_.get(), deriver_.get(), interpolator_.get(),
      task_log_.get());
  GAEA_RETURN_IF_ERROR(JournalInterpolationOutputs(watermark));
  return report;
}

Status GaeaKernel::Flush() {
  GAEA_RETURN_IF_ERROR(catalog_->Flush());
  GAEA_RETURN_IF_ERROR(prov_index_->Flush());
  return process_journal_->Sync();
}

// ---- provenance queries ----

namespace {
// Counts and times one provenance query; kind labels the metric.
class ProvQueryScope {
 public:
  ProvQueryScope(obs::MetricsRegistry* metrics, Env* env, const char* kind)
      : metrics_(metrics), env_(env),
        span_(std::string("provenance:") + kind, "kernel"),
        start_us_(env->NowMicros()) {
    metrics_->GetCounter(std::string("gaea_provenance_queries_total{kind=\"") +
                         kind + "\"}")
        ->Inc();
  }
  ~ProvQueryScope() {
    metrics_->GetHistogram("gaea_provenance_query_micros")
        ->Observe(env_->NowMicros() - start_us_);
  }

 private:
  obs::MetricsRegistry* const metrics_;
  Env* const env_;
  obs::SpanGuard span_;
  const uint64_t start_us_;
};
}  // namespace

StatusOr<provenance::ClosureResult> GaeaKernel::ProvenanceAncestors(
    Oid oid, int max_depth) {
  ProvQueryScope scope(&metrics_, env_, "ancestors");
  provenance::ProvenanceEngine engine(prov_index_.get(), prov_source_.get(),
                                      &processes_);
  provenance::ProvenanceEngine::Limits limits;
  limits.max_depth = max_depth;
  return engine.Ancestors(oid, limits);
}

StatusOr<provenance::ClosureResult> GaeaKernel::ProvenanceDescendants(
    Oid oid, int max_depth) {
  ProvQueryScope scope(&metrics_, env_, "descendants");
  provenance::ProvenanceEngine engine(prov_index_.get(), prov_source_.get(),
                                      &processes_);
  provenance::ProvenanceEngine::Limits limits;
  limits.max_depth = max_depth;
  return engine.Descendants(oid, limits);
}

StatusOr<provenance::WhyResult> GaeaKernel::ProvenanceWhy(Oid oid) {
  ProvQueryScope scope(&metrics_, env_, "why");
  provenance::ProvenanceEngine engine(prov_index_.get(), prov_source_.get(),
                                      &processes_);
  return engine.Why(oid);
}

StatusOr<provenance::WhereResult> GaeaKernel::ProvenanceWhere(Oid oid) {
  ProvQueryScope scope(&metrics_, env_, "where");
  provenance::ProvenanceEngine engine(prov_index_.get(), prov_source_.get(),
                                      &processes_);
  return engine.Where(oid);
}

StatusOr<provenance::DiffResult> GaeaKernel::ProvenanceDiff(Oid a, Oid b) {
  ProvQueryScope scope(&metrics_, env_, "diff");
  provenance::ProvenanceEngine engine(prov_index_.get(), prov_source_.get(),
                                      &processes_);
  return engine.Diff(a, b);
}

}  // namespace gaea
