#include "replication/shipper.h"

#include <algorithm>

#include "recovery/checkpoint.h"
#include "storage/journal.h"

namespace gaea {
namespace replication {

namespace {

struct Segment {
  std::string path;
  uint64_t base = 0;
  uint64_t upto = 0;
};

}  // namespace

Status ReadFromArchives(Env* env, const std::string& db_dir,
                        const std::string& component, uint64_t from,
                        size_t max_records, size_t max_bytes,
                        std::vector<std::string>* out, uint64_t* next) {
  *next = from;
  const std::string archive_dir = recovery::ArchiveDirPath(db_dir);
  StatusOr<std::vector<std::string>> names = env->ListDir(archive_dir);
  if (!names.ok()) {
    if (names.status().code() == StatusCode::kNotFound) {
      return Status::Corruption("no archive directory under " + db_dir +
                                " but " + component + " LSN " +
                                std::to_string(from) + " was truncated away");
    }
    return names.status();
  }
  std::vector<Segment> segments;
  for (const std::string& name : *names) {
    Segment seg;
    std::string seg_component;
    if (!recovery::ParseArchiveSegmentName(name, &seg_component, &seg.base,
                                           &seg.upto)) {
      continue;
    }
    if (seg_component != component || seg.upto <= from) continue;
    seg.path = archive_dir + "/" + name;
    segments.push_back(std::move(seg));
  }
  std::sort(segments.begin(), segments.end(),
            [](const Segment& a, const Segment& b) { return a.base < b.base; });
  if (segments.empty()) {
    return Status::Corruption("no archive segment covers " + component +
                              " LSN " + std::to_string(from));
  }

  uint64_t cursor = from;
  size_t bytes = 0;
  bool full = false;
  for (const Segment& seg : segments) {
    if (full) break;
    if (seg.base > cursor) {
      return Status::Corruption(
          "archive chain gap for " + component + ": need LSN " +
          std::to_string(cursor) + ", next segment starts at " +
          std::to_string(seg.base));
    }
    GAEA_RETURN_IF_ERROR(Journal::ReplayFile(
        env, seg.path, /*strict=*/true,
        [&](uint64_t lsn, const std::string& record) -> Status {
          if (full || lsn < cursor) return Status::OK();  // overlap / skip
          if (lsn > cursor) {
            return Status::Corruption(
                "archive segment " + seg.path + " jumps from LSN " +
                std::to_string(cursor) + " to " + std::to_string(lsn));
          }
          if (out->size() >= max_records ||
              (bytes > 0 && bytes + record.size() > max_bytes)) {
            full = true;
            return Status::OK();
          }
          bytes += record.size();
          out->push_back(record);
          cursor = lsn + 1;
          return Status::OK();
        }));
  }
  *next = cursor;
  return Status::OK();
}

}  // namespace replication
}  // namespace gaea
