// ReplicationApplier: the replica side of journal shipping (docs/NET.md
// "Replication", docs/ROBUSTNESS.md "Replication & failover").
//
// A background thread polls the primary with ShipBatch, offering the local
// kernel's per-component journal lengths as cursors, and applies each
// returned segment through GaeaKernel::ApplyReplicated — the same code path
// replay uses, so a replica's on-disk journals are byte-identical to the
// primary's prefix. When the replica also serves traffic, each apply runs
// under the server's exclusive kernel lock so it never races a concurrently
// served read or derive.
//
// Failure handling is deliberately dumb and safe: a dead primary means the
// poll fails and is retried on the next tick (the ship cursors are re-read
// from the kernel each round, so nothing is lost); a kFailedPrecondition
// from ApplyReplicated (cross-component ordering — e.g. a task record
// arriving before the object it reads) stops the current round and resolves
// itself the next one.

#ifndef GAEA_REPLICATION_APPLIER_H_
#define GAEA_REPLICATION_APPLIER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "gaea/kernel.h"
#include "net/client.h"
#include "net/server.h"
#include "util/status.h"

namespace gaea {
namespace replication {

class ReplicationApplier {
 public:
  struct Options {
    std::string primary_host = "127.0.0.1";
    int primary_port = 0;
    // Name this replica reports to the primary (shown by replica-status).
    std::string replica_id = "replica";
    int poll_ms = 50;
    uint32_t max_records = 512;      // per component per poll
    uint32_t max_bytes = 4u << 20;   // per component per poll
  };

  struct Stats {
    uint64_t polls = 0;
    uint64_t batches_applied = 0;   // non-empty replies applied
    uint64_t records_applied = 0;
    uint64_t reconnects = 0;
    uint64_t primary_lsn = 0;       // from the last successful reply
    std::string last_error;         // most recent poll/apply failure, if any
  };

  // `server` may be null (in-process tests apply directly to the kernel);
  // when set, every apply runs under GaeaServer::WithExclusiveKernel.
  ReplicationApplier(GaeaKernel* kernel, net::GaeaServer* server,
                     Options options);
  ~ReplicationApplier();

  ReplicationApplier(const ReplicationApplier&) = delete;
  ReplicationApplier& operator=(const ReplicationApplier&) = delete;

  // Spawns the poll thread. The primary does not need to be reachable yet —
  // the thread keeps dialing until it is.
  Status Start();

  // Stops and joins the poll thread. Idempotent; run by the destructor.
  void Stop();

  // One synchronous poll-and-apply round using the given connection.
  // Exposed for deterministic tests; the background thread calls this too.
  Status PollOnce(net::GaeaClient* client);

  // Blocks until the local kernel's cluster LSN reaches `lsn` or
  // `timeout_ms` elapses; true on success.
  bool WaitForLsn(uint64_t lsn, int timeout_ms) const;

  Stats stats() const;

 private:
  void Loop();
  Status Apply(const std::string& component, uint64_t from,
               const std::vector<std::string>& records);

  GaeaKernel* kernel_;
  net::GaeaServer* server_;  // nullable
  Options options_;

  std::atomic<bool> stop_{false};
  std::thread thread_;
  bool started_ = false;

  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace replication
}  // namespace gaea

#endif  // GAEA_REPLICATION_APPLIER_H_
