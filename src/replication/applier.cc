#include "replication/applier.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace gaea {
namespace replication {

ReplicationApplier::ReplicationApplier(GaeaKernel* kernel,
                                       net::GaeaServer* server,
                                       Options options)
    : kernel_(kernel), server_(server), options_(std::move(options)) {
  if (options_.poll_ms < 1) options_.poll_ms = 1;
}

ReplicationApplier::~ReplicationApplier() { Stop(); }

Status ReplicationApplier::Start() {
  if (started_) return Status::FailedPrecondition("applier already started");
  if (!kernel_->replicated()) {
    return Status::FailedPrecondition(
        "kernel was not opened with Options::replicated; the objects journal "
        "is required to apply shipped history");
  }
  started_ = true;
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void ReplicationApplier::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

Status ReplicationApplier::Apply(const std::string& component, uint64_t from,
                                 const std::vector<std::string>& records) {
  if (server_ != nullptr) {
    return server_->WithExclusiveKernel([&] {
      return kernel_->ApplyReplicated(component, from, records);
    });
  }
  return kernel_->ApplyReplicated(component, from, records);
}

Status ReplicationApplier::PollOnce(net::GaeaClient* client) {
  net::ShipRequest request;
  request.replica_id = options_.replica_id;
  request.max_records = options_.max_records;
  request.max_bytes = options_.max_bytes;
  for (const auto& [component, count] : kernel_->ReplicationCursors()) {
    request.cursors.push_back(net::ShipCursor{component, count});
  }
  GAEA_ASSIGN_OR_RETURN(net::ShipReply reply, client->ShipBatch(request));

  uint64_t applied = 0;
  Status result = Status::OK();
  // Segments arrive in cursor order — the kernel's canonical component
  // order (catalog before process before objects before tasks before
  // experiments) — so intra-batch dependencies resolve front to back. A
  // kFailedPrecondition means a cross-batch ordering hole (e.g. a task
  // whose input object ships next round): stop here, the next poll's
  // cursors pick up exactly where this one left off.
  for (const net::ShipSegment& segment : reply.segments) {
    result = Apply(segment.component, segment.from, segment.records);
    if (!result.ok()) break;
    applied += segment.records.size();
  }

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.polls;
    stats_.primary_lsn = reply.primary_lsn;
    if (applied > 0) {
      ++stats_.batches_applied;
      stats_.records_applied += applied;
    }
    if (result.ok()) {
      stats_.last_error.clear();
    } else {
      stats_.last_error = result.ToString();
    }
  }
  if (result.code() == StatusCode::kFailedPrecondition) {
    // Expected transient: not an error for the loop.
    return Status::OK();
  }
  return result;
}

void ReplicationApplier::Loop() {
  std::unique_ptr<net::GaeaClient> client;
  while (!stop_.load(std::memory_order_acquire)) {
    if (client == nullptr) {
      net::GaeaClient::Options copts;
      auto connected = net::GaeaClient::Connect(options_.primary_host,
                                                options_.primary_port, copts);
      if (!connected.ok()) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.last_error = connected.status().ToString();
      } else {
        client = *std::move(connected);
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.reconnects;
      }
    }
    if (client != nullptr) {
      Status polled = PollOnce(client.get());
      if (polled.code() == StatusCode::kIOError ||
          polled.code() == StatusCode::kUnavailable) {
        // Primary gone (crashed, restarting, draining): drop the connection
        // and dial again next tick. Cursors live in the kernel, so catch-up
        // resumes from the exact record where shipping stopped.
        client.reset();
      }
    }
    // Sleep in small slices so Stop() is responsive at large poll_ms.
    int slept = 0;
    while (slept < options_.poll_ms &&
           !stop_.load(std::memory_order_acquire)) {
      int slice = std::min(options_.poll_ms - slept, 10);
      std::this_thread::sleep_for(std::chrono::milliseconds(slice));
      slept += slice;
    }
  }
}

bool ReplicationApplier::WaitForLsn(uint64_t lsn, int timeout_ms) const {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (kernel_->ClusterLsn() < lsn) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

ReplicationApplier::Stats ReplicationApplier::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace replication
}  // namespace gaea
