// Archive-chain shipping: reading truncated journal prefixes for replicas.
//
// A checkpoint's TruncatePrefix moves the journal prefix a replica may still
// need into archive/<component>.<base>-<upto>.seg. Journal::ReadRange reports
// that case as kOutOfRange; the kernel's ShipRange then falls through to
// ReadFromArchives, which serves the requested LSNs out of the segment chain.
// Segments can overlap (a crash between the two truncation renames re-archives
// a prefix), so reads dedup with an LSN cursor exactly like
// recovery::ReplayArchiveChain does.

#ifndef GAEA_REPLICATION_SHIPPER_H_
#define GAEA_REPLICATION_SHIPPER_H_

#include <string>
#include <vector>

#include "util/env.h"
#include "util/status.h"

namespace gaea {
namespace replication {

// Reads records of `component` with LSN >= `from` out of the archive chain
// under `db_dir`, stopping after `max_records` records or roughly `max_bytes`
// payload bytes (at least one record is returned when any qualifies).
// `*next` is one past the last record delivered; when the chain is exhausted
// before the caps are hit, the caller continues from `*next` in the live
// journal. A `from` that falls before the chain or in a gap between segments
// is kCorruption — those records exist nowhere.
Status ReadFromArchives(Env* env, const std::string& db_dir,
                        const std::string& component, uint64_t from,
                        size_t max_records, size_t max_bytes,
                        std::vector<std::string>* out, uint64_t* next);

}  // namespace replication
}  // namespace gaea

#endif  // GAEA_REPLICATION_SHIPPER_H_
