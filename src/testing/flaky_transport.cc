#include "testing/flaky_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace gaea::testing {

namespace {

// Reads exactly n bytes into buf; false on EOF/error or when `stop` flips.
bool ReadFull(int fd, char* buf, size_t n, const std::atomic<bool>& stop) {
  size_t got = 0;
  while (got < n) {
    if (stop.load(std::memory_order_acquire)) return false;
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) return false;
    if (ready <= 0) continue;
    ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r <= 0) return false;
    got += static_cast<size_t>(r);
  }
  return true;
}

bool WriteFull(int fd, const char* buf, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t w = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(w);
  }
  return true;
}

}  // namespace

struct FlakyProxy::Link {
  int client_fd = -1;
  int upstream_fd = -1;
  std::thread up;    // client -> upstream
  std::thread down;  // upstream -> client
  std::atomic<bool> dead{false};

  void CloseBoth() {
    bool expected = false;
    if (!dead.compare_exchange_strong(expected, true)) return;
    ::shutdown(client_fd, SHUT_RDWR);
    ::shutdown(upstream_fd, SHUT_RDWR);
  }
};

FlakyProxy::FlakyProxy(Options options) : options_(std::move(options)) {}

FlakyProxy::~FlakyProxy() { Stop(); }

Status FlakyProxy::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("socket: " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.listen_port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status =
        Status::IOError("bind: " + std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 16) != 0) {
    Status status =
        Status::IOError("listen: " + std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void FlakyProxy::Stop() {
  if (stop_.exchange(true)) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Link>> links;
  {
    std::lock_guard<std::mutex> lock(links_mu_);
    links.swap(links_);
  }
  for (auto& link : links) link->CloseBoth();
  for (auto& link : links) {
    if (link->up.joinable()) link->up.join();
    if (link->down.joinable()) link->down.join();
    ::close(link->client_fd);
    ::close(link->upstream_fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void FlakyProxy::AcceptLoop() {
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return;
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) return;
    if (ready <= 0) continue;
    int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) continue;

    int upstream_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in up{};
    up.sin_family = AF_INET;
    up.sin_port = htons(static_cast<uint16_t>(options_.upstream_port));
    if (::inet_pton(AF_INET, options_.upstream_host.c_str(), &up.sin_addr) !=
            1 ||
        ::connect(upstream_fd, reinterpret_cast<sockaddr*>(&up), sizeof(up)) !=
            0) {
      ::close(upstream_fd);
      ::close(client_fd);
      continue;
    }
    int one = 1;
    ::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::setsockopt(upstream_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto link = std::make_unique<Link>();
    link->client_fd = client_fd;
    link->upstream_fd = upstream_fd;
    Link* raw = link.get();
    link->up = std::thread([this, raw] { PumpClientToUpstream(raw); });
    link->down = std::thread([this, raw] { PumpUpstreamToClient(raw); });
    std::lock_guard<std::mutex> lock(links_mu_);
    links_.push_back(std::move(link));
  }
}

void FlakyProxy::PumpClientToUpstream(Link* link) {
  // Verbatim splice: requests are never faulted, only their answers.
  char buf[4096];
  for (;;) {
    if (stop_.load(std::memory_order_acquire) || link->dead.load()) return;
    pollfd pfd{link->client_fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    ssize_t r = ::recv(link->client_fd, buf, sizeof(buf), 0);
    if (r <= 0) break;
    if (!WriteFull(link->upstream_fd, buf, static_cast<size_t>(r))) break;
  }
  link->CloseBoth();
}

void FlakyProxy::PumpUpstreamToClient(Link* link) {
  for (;;) {
    if (stop_.load(std::memory_order_acquire) || link->dead.load()) return;
    // One wire frame: [u32 len][u32 crc][payload].
    char header[8];
    if (!ReadFull(link->upstream_fd, header, sizeof(header), stop_)) break;
    uint32_t len = 0;
    std::memcpy(&len, header, sizeof(len));
    std::string frame(header, sizeof(header));
    frame.resize(sizeof(header) + len);
    if (len > 0 &&
        !ReadFull(link->upstream_fd, frame.data() + sizeof(header), len,
                  stop_)) {
      break;
    }

    uint64_t n = response_frames_.fetch_add(1) + 1;
    if (options_.drop_every_n > 0 &&
        n % static_cast<uint64_t>(options_.drop_every_n) == 0) {
      dropped_.fetch_add(1);
      break;  // frame vanishes, connection dies with it
    }
    if (options_.delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(options_.delay_ms));
    }
    if (options_.truncate_every_n > 0 &&
        n % static_cast<uint64_t>(options_.truncate_every_n) == 0) {
      truncated_.fetch_add(1);
      (void)WriteFull(link->client_fd, frame.data(), frame.size() / 2);
      break;  // torn frame, then the connection dies
    }
    if (!WriteFull(link->client_fd, frame.data(), frame.size())) break;
    if (options_.duplicate_every_n > 0 &&
        n % static_cast<uint64_t>(options_.duplicate_every_n) == 0) {
      duplicated_.fetch_add(1);
      if (!WriteFull(link->client_fd, frame.data(), frame.size())) break;
    }
  }
  link->CloseBoth();
}

FlakyProxy::Counters FlakyProxy::counters() const {
  Counters counters;
  counters.frames_forwarded = response_frames_.load();
  counters.frames_dropped = dropped_.load();
  counters.frames_duplicated = duplicated_.load();
  counters.frames_truncated = truncated_.load();
  return counters;
}

}  // namespace gaea::testing
