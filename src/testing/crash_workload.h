// Shared crash-recovery workload for the crash harness
// (tools/gaea_crashtest.cc) and the ctest suite (tests/crash_test.cc).
//
// The cycle: run a randomized insert/derive/flush workload against a
// FaultInjectingEnv armed to crash at the Nth write op, throw the kernel
// away mid-flight, clear the fault, reopen, and check the recovery
// invariants (docs/ROBUSTNESS.md):
//   * reopen succeeds — replay truncates at most a torn tail, never more;
//   * no committed task is quarantined: every output object is either still
//     stored (and readable) or re-derivable from its recorded lineage;
//   * the database stays usable — a fresh insert + derive succeeds and
//     never reuses an OID recorded by a pre-crash task.
//
// The workload's process uses attribute-reference mappings only, so a
// reopened kernel needs no operator re-registration to stay replayable.

#ifndef GAEA_TESTING_CRASH_WORKLOAD_H_
#define GAEA_TESTING_CRASH_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "util/env.h"
#include "util/status.h"

namespace gaea::crashtest {

struct WorkloadOptions {
  uint64_t seed = 1;
  int rounds = 6;  // insert + derive (+ sometimes flush) iterations
  // Take fuzzy checkpoints (GaeaKernel::Checkpoint) a third and two thirds
  // of the way through, so the crash sweep also lands inside snapshot
  // writes, manifest installs, and journal truncation — and recovery after
  // the second checkpoint exercises the load-snapshot + tail-replay path,
  // not just full replay.
  bool checkpoints = true;
};

// Runs the randomized workload against the database in `dir`, with all I/O
// on `env`. Returns OK when the workload ran to completion; once an
// injected crash point fires the first failed operation's status is
// returned (callers distinguish the expected crash via env->crashed()).
Status RunWorkload(const std::string& dir, Env* env,
                   const WorkloadOptions& options);

// Reopens the database in `dir` on a now-fault-free `env` and checks every
// recovery invariant above. Any violation is a non-OK status naming the
// broken invariant.
Status VerifyRecovered(const std::string& dir, Env* env);

}  // namespace gaea::crashtest

#endif  // GAEA_TESTING_CRASH_WORKLOAD_H_
