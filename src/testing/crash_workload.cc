#include "testing/crash_workload.h"

#include <random>
#include <vector>

#include "gaea/kernel.h"

namespace gaea::crashtest {

namespace {

// A deliberately tiny schema: the copy process maps attributes by reference
// only (no operators), so every recorded task stays replayable after reopen
// without any registration step, and a derive costs microseconds — the
// crash sweep visits hundreds of write points per seed.
constexpr char kSchema[] = R"(
CLASS reading (
  ATTRIBUTES:
    value = int4;
  SPATIAL EXTENT:
    spatialextent = box;
  TEMPORAL EXTENT:
    timestamp = abstime;
)

CLASS reading_copy (
  ATTRIBUTES:
    value = int4;
  SPATIAL EXTENT:
    spatialextent = box;
  TEMPORAL EXTENT:
    timestamp = abstime;
  DERIVED BY: copy-reading
)

DEFINE PROCESS copy-reading
OUTPUT reading_copy
ARGUMENT ( reading src )
TEMPLATE {
  MAPPINGS:
    reading_copy.value = src.value;
    reading_copy.spatialextent = src.spatialextent;
    reading_copy.timestamp = src.timestamp;
}
)";

StatusOr<Oid> InsertReading(GaeaKernel* kernel, const ClassDef& def,
                            int64_t value, int64_t epoch) {
  DataObject obj(def);
  GAEA_RETURN_IF_ERROR(obj.Set(def, "value", Value::Int(value)));
  GAEA_RETURN_IF_ERROR(
      obj.Set(def, "spatialextent", Value::OfBox(Box(0, 0, 10, 10))));
  GAEA_RETURN_IF_ERROR(obj.Set(def, "timestamp", Value::Time(AbsTime(epoch))));
  return kernel->Insert(std::move(obj));
}

}  // namespace

Status RunWorkload(const std::string& dir, Env* env,
                   const WorkloadOptions& options) {
  std::mt19937_64 rng(options.seed);

  GaeaKernel::Options ko;
  ko.dir = dir;
  ko.user = "crashtest";
  ko.env = env;
  // Alternate Sync policies by seed so the sweep crosses fsync'd and
  // OS-buffered append paths alike.
  ko.durability =
      (options.seed % 2 == 0) ? DurabilityMode::kFsync : DurabilityMode::kOs;
  GAEA_ASSIGN_OR_RETURN(auto kernel, GaeaKernel::Open(ko));
  kernel->SetClock(AbsTime(1000));
  GAEA_RETURN_IF_ERROR(kernel->ExecuteDdl(kSchema));

  GAEA_ASSIGN_OR_RETURN(const ClassDef* reading,
                        kernel->catalog().classes().LookupByName("reading"));

  std::vector<Oid> readings;
  const int first_ckpt = options.rounds / 3;
  const int second_ckpt = (2 * options.rounds) / 3;
  for (int round = 0; round < options.rounds; ++round) {
    if (options.checkpoints &&
        (round == first_ckpt || round == second_ckpt)) {
      GAEA_RETURN_IF_ERROR(kernel->Checkpoint().status());
    }
    GAEA_ASSIGN_OR_RETURN(
        Oid oid, InsertReading(kernel.get(), *reading,
                               static_cast<int64_t>(rng() % 1000),
                               1000 + round));
    readings.push_back(oid);
    Oid src = readings[rng() % readings.size()];
    GAEA_RETURN_IF_ERROR(
        kernel->Derive("copy-reading", {{"src", {src}}}).status());
    // Flushing mid-workload puts heap/index page writes into the crash
    // sweep, not just journal appends.
    if (rng() % 2 == 0) GAEA_RETURN_IF_ERROR(kernel->Flush());
  }
  return kernel->Flush();
}

Status VerifyRecovered(const std::string& dir, Env* env) {
  GaeaKernel::Options ko;
  ko.dir = dir;
  ko.user = "crashtest";
  ko.env = env;
  GAEA_ASSIGN_OR_RETURN(auto kernel, GaeaKernel::Open(ko));

  // The workload defines its schema before touching data and every task's
  // process maps attributes by reference, so nothing a committed task needs
  // can be legitimately absent: any quarantined task is lost data.
  const GaeaKernel::RecoveryReport& report = kernel->recovery_report();
  if (!report.quarantined.empty()) {
    return Status::Internal(
        std::to_string(report.quarantined.size()) +
        " task(s) quarantined after recovery (first: task " +
        std::to_string(report.quarantined.front()) + ")");
  }

  // Every committed task: outputs stored and readable, or re-derivable.
  for (const Task& task : kernel->tasks().tasks()) {
    if (task.status != TaskStatus::kCompleted) continue;
    for (Oid oid : task.outputs) {
      if (kernel->catalog().ContainsObject(oid)) {
        Status readable = kernel->Get(oid).status();
        if (!readable.ok()) {
          return Status::Internal("task " + std::to_string(task.id) +
                                  " output " + std::to_string(oid) +
                                  " is stored but unreadable: " +
                                  readable.ToString());
        }
      } else if (task.process_version < 1 ||
                 !kernel->processes()
                      .Version(task.process_name, task.process_version)
                      .ok()) {
        return Status::Internal("task " + std::to_string(task.id) +
                                " output " + std::to_string(oid) +
                                " is missing and not re-derivable");
      }
    }
  }

  // The database must stay usable. If the crash predates the schema the
  // class is simply absent (nothing was committed yet) and there is nothing
  // further to prove.
  auto reading = kernel->catalog().classes().LookupByName("reading");
  if (!reading.ok()) return Status::OK();
  kernel->SetClock(AbsTime(9999));
  GAEA_ASSIGN_OR_RETURN(Oid fresh,
                        InsertReading(kernel.get(), **reading, 42, 9999));
  if (kernel->processes().Contains("copy-reading")) {
    // A post-recovery derive both proves the process replays and — because
    // TaskLog::Append rejects a duplicate producer OID — that the recovered
    // OID allocator never re-issues an id recorded by a pre-crash task.
    GAEA_RETURN_IF_ERROR(
        kernel->Derive("copy-reading", {{"src", {fresh}}}).status());
  }
  return kernel->Flush();
}

}  // namespace gaea::crashtest
