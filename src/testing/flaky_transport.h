// FlakyProxy: a frame-aware TCP proxy for fault-injecting the gaead wire
// protocol (tests/replication_test.cc, docs/ROBUSTNESS.md).
//
// Clients connect to the proxy instead of the server; the proxy dials the
// real server per accepted connection and pumps bytes both ways. The
// server→client direction is parsed into wire frames
// ([u32 len][u32 crc][payload]) so faults land on message boundaries:
//   * delay_ms     — every response frame is held this long before
//                    forwarding (injected replication / read lag);
//   * drop_every_n — the Nth response frame vanishes and the connection is
//                    cut, like a mid-flight primary crash (the client sees
//                    kIOError and must retry under the same request id);
//   * duplicate_every_n — the Nth response frame is delivered twice (the
//                    client must skip the stale copy by request id);
//   * truncate_every_n  — the Nth response frame is cut mid-payload and the
//                    connection closed (a torn frame must never parse).
// The client→server direction is forwarded verbatim, so a request is either
// fully delivered or not at all — exactly the ambiguity idempotent retry
// exists to resolve.

#ifndef GAEA_TESTING_FLAKY_TRANSPORT_H_
#define GAEA_TESTING_FLAKY_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/status.h"

namespace gaea::testing {

class FlakyProxy {
 public:
  struct Options {
    std::string upstream_host = "127.0.0.1";
    int upstream_port = 0;
    int listen_port = 0;  // 0 = ephemeral; see port() after Start
    int delay_ms = 0;
    int drop_every_n = 0;       // 0 = never
    int duplicate_every_n = 0;  // 0 = never
    int truncate_every_n = 0;   // 0 = never
  };

  struct Counters {
    uint64_t frames_forwarded = 0;
    uint64_t frames_dropped = 0;
    uint64_t frames_duplicated = 0;
    uint64_t frames_truncated = 0;
  };

  explicit FlakyProxy(Options options);
  ~FlakyProxy();

  FlakyProxy(const FlakyProxy&) = delete;
  FlakyProxy& operator=(const FlakyProxy&) = delete;

  Status Start();
  void Stop();

  int port() const { return port_; }
  Counters counters() const;

 private:
  struct Link;  // one client connection + its upstream socket

  void AcceptLoop();
  void PumpClientToUpstream(Link* link);
  void PumpUpstreamToClient(Link* link);

  Options options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;

  std::mutex links_mu_;
  std::vector<std::unique_ptr<Link>> links_;

  // Global across connections, so "every Nth frame" means Nth response the
  // proxy has seen, however many sessions are open.
  std::atomic<uint64_t> response_frames_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> duplicated_{0};
  std::atomic<uint64_t> truncated_{0};
};

}  // namespace gaea::testing

#endif  // GAEA_TESTING_FLAKY_TRANSPORT_H_
