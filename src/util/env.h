// Pluggable file-system abstraction (Env) for the storage layer.
//
// Every durable byte Gaea writes — journal frames, heap/B+tree pages —
// flows through an Env, so the whole stack can be exercised under injected
// I/O failure. PosixEnv is the real thing; FaultInjectingEnv wraps any Env
// and injects short writes, ENOSPC, failed fsyncs, torn tails, and
// deterministic crash points by write-op count, which is what the crash
// harness (tools/gaea_crashtest.cc) sweeps. See docs/ROBUSTNESS.md.

#ifndef GAEA_UTIL_ENV_H_
#define GAEA_UTIL_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace gaea {

// Append-only file handle (journals).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  // Writes a *prefix* of `data` (at least one byte on success) and returns
  // the byte count. Real file systems return short writes near ENOSPC and
  // on signal interruption; callers must loop — or use Append below.
  virtual StatusOr<size_t> AppendSome(std::string_view data) = 0;

  // Appends all of `data`, looping over short AppendSome returns. On
  // failure the error names the byte offset reached within `data`, so the
  // caller knows how much of the record is now a torn tail.
  Status Append(std::string_view data);

  // Forces written data to stable storage (fsync).
  virtual Status Sync() = 0;
};

// Positioned read/write handle (buffer-pool page files).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  // Reads up to `n` bytes at `offset` into `scratch`; returns the count
  // (short only at end of file, 0 at EOF).
  virtual StatusOr<size_t> Read(uint64_t offset, size_t n,
                                char* scratch) const = 0;

  // Writes all of `data` at `offset`; a partial write is an error (the
  // message names the byte offset reached).
  virtual Status Write(uint64_t offset, std::string_view data) = 0;

  // Forces written data to stable storage (fsync).
  virtual Status Sync() = 0;
};

// Forward-only read handle (journal replay).
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  // Reads up to `n` bytes into `scratch`; 0 means end of file.
  virtual StatusOr<size_t> Read(size_t n, char* scratch) = 0;
};

// The file-system interface the storage layer is written against.
class Env {
 public:
  virtual ~Env() = default;

  // The process-wide PosixEnv singleton.
  static Env* Default();

  // Opens `path` for appending, creating it if missing.
  virtual StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  // Opens `path` for positioned read/write, creating it if missing.
  virtual StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) = 0;

  // Opens an existing `path` for sequential reading; kNotFound if missing.
  virtual StatusOr<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual StatusOr<uint64_t> FileSize(const std::string& path) = 0;
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;

  // Atomically replaces `to` with `from` (POSIX rename), then fsyncs the
  // destination's parent directory so the new directory entry is durable.
  // This is the install primitive for checkpoint manifests and snapshots:
  // readers observe either the old file or the complete new one, never a
  // partial write.
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  // Creates `path` (one level); OK if it already exists. The parent
  // directory is fsynced so the entry survives a crash.
  virtual Status CreateDir(const std::string& path) = 0;

  // Names of the entries in `path` ("." and ".." excluded), unsorted;
  // kNotFound if the directory does not exist.
  virtual StatusOr<std::vector<std::string>> ListDir(
      const std::string& path) = 0;

  // Removes a file; OK (not an error) if it is already gone, so checkpoint
  // GC retried after a crash converges instead of tripping over its own
  // earlier progress.
  virtual Status RemoveFile(const std::string& path) = 0;

  // Fsyncs the directory itself, making directory entries (freshly created
  // files) durable — a file created and fsynced is still lost by a crash if
  // its directory entry never reached disk.
  virtual Status SyncDir(const std::string& dir) = 0;

  // SyncDir on the directory containing `path`.
  Status SyncParentDir(const std::string& path);

  // Monotonic clock in microseconds. Not wall time: the epoch is arbitrary,
  // only differences are meaningful. Every timing decision in the stack
  // (task durations, request deadlines, latency accounting) reads this, so
  // a test can make time deterministic by injecting a FakeClockEnv.
  virtual uint64_t NowMicros();
};

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

// An Env decorator that forwards to `base` while injecting faults according
// to a FaultPlan. Every write-shaped operation (AppendSome, positioned
// Write, Truncate) counts as one "write op"; the plan's crash point and
// short-write cadence are expressed in that unit, so a workload replayed
// with the same seed crashes at exactly the same place.
//
// After the crash point fires (or TriggerCrash), *every* mutating operation
// and every Sync fails with kIOError("injected crash ...") until Reset() —
// modeling a process that died: nothing written after the crash instant may
// reach the disk, including destructor-time flushes.
class FaultInjectingEnv : public Env {
 public:
  struct FaultPlan {
    // Crash on the Nth write op (1-based); 0 disables. When torn_tail is
    // set, a crashing *append* persists only a prefix, leaving a torn
    // journal frame for replay to truncate. Positioned page writes are
    // all-or-nothing (pages carry no checksum, so an intra-page tear would
    // be undetectable): the crashing page write never reaches the disk.
    uint64_t crash_after_writes = 0;
    bool torn_tail = true;

    // Every Nth append op returns a short write (at least 1 byte);
    // 0 disables. Exercises callers' short-write loops.
    uint64_t short_write_every = 0;

    // Total byte budget across all writes; once exhausted, writes fail
    // with kIOError("No space left on device (injected)"). 0 disables.
    uint64_t byte_budget = 0;

    // Every Sync fails with kIOError("injected fsync failure").
    bool fail_sync = false;
  };

  explicit FaultInjectingEnv(Env* base) : base_(base) {}

  void set_plan(const FaultPlan& plan) {
    std::lock_guard<std::mutex> lock(mu_);
    plan_ = plan;
  }

  // Fails all subsequent mutating operations, as the crash point would.
  void TriggerCrash() { crashed_.store(true, std::memory_order_release); }
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  // Write ops observed so far (the crash-point unit).
  uint64_t write_ops() const {
    return write_ops_.load(std::memory_order_acquire);
  }

  // Clears the crashed flag and counters; the plan is kept.
  void Reset() {
    crashed_.store(false, std::memory_order_release);
    write_ops_.store(0, std::memory_order_release);
    bytes_written_.store(0, std::memory_order_release);
  }

  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  StatusOr<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) override;
  bool FileExists(const std::string& path) override;
  StatusOr<uint64_t> FileSize(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  // Rename is a metadata write: it counts as one all-or-nothing write op,
  // so the crash-point sweep covers checkpoint install (the crashing
  // rename never happens — the old file, if any, stays in place).
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status CreateDir(const std::string& path) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& path) override;
  // RemoveFile also counts as a write op: a crash mid-GC leaves stray
  // snapshot files that recovery must ignore.
  Status RemoveFile(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  uint64_t NowMicros() override { return base_->NowMicros(); }

 private:
  friend class FaultInjectingWritableFile;
  friend class FaultInjectingRandomAccessFile;

  // Admission control for one append of `size` bytes. Returns the number of
  // bytes the fault plan allows through (possibly < size for a short write
  // or torn tail), or an error when the op must fail outright.
  StatusOr<size_t> AdmitWrite(size_t size);
  // Admission control for one all-or-nothing page write (or truncate):
  // either every byte goes through or the op fails.
  Status AdmitPageWrite(size_t size);
  Status CheckAlive() const;
  Status CheckSync();

  Env* base_;
  mutable std::mutex mu_;
  FaultPlan plan_;
  std::atomic<bool> crashed_{false};
  std::atomic<uint64_t> write_ops_{0};
  std::atomic<uint64_t> bytes_written_{0};
};

// ---------------------------------------------------------------------------
// Fake clock
// ---------------------------------------------------------------------------

// An Env decorator with a controllable clock: file I/O forwards to `base`,
// NowMicros reads a counter the test owns. Two modes compose:
//   - Advance(us): move time explicitly (deadline tests, latency tests).
//   - set_auto_step(us): every NowMicros() call also advances the clock by
//     a fixed step, so a single-threaded run yields strictly increasing,
//     fully reproducible timestamps (the golden-trace tests rely on this).
class FakeClockEnv : public Env {
 public:
  explicit FakeClockEnv(Env* base = Env::Default(), uint64_t start_us = 0,
                        uint64_t auto_step_us = 0)
      : base_(base), now_us_(start_us), auto_step_us_(auto_step_us) {}

  void Advance(uint64_t us) {
    now_us_.fetch_add(us, std::memory_order_acq_rel);
  }
  void set_auto_step(uint64_t us) {
    auto_step_us_.store(us, std::memory_order_release);
  }

  uint64_t NowMicros() override {
    uint64_t step = auto_step_us_.load(std::memory_order_acquire);
    return now_us_.fetch_add(step, std::memory_order_acq_rel);
  }

  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    return base_->NewWritableFile(path);
  }
  StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    return base_->NewRandomAccessFile(path);
  }
  StatusOr<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) override {
    return base_->NewSequentialFile(path);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  StatusOr<uint64_t> FileSize(const std::string& path) override {
    return base_->FileSize(path);
  }
  Status Truncate(const std::string& path, uint64_t size) override {
    return base_->Truncate(path, size);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return base_->RenameFile(from, to);
  }
  Status CreateDir(const std::string& path) override {
    return base_->CreateDir(path);
  }
  StatusOr<std::vector<std::string>> ListDir(
      const std::string& path) override {
    return base_->ListDir(path);
  }
  Status RemoveFile(const std::string& path) override {
    return base_->RemoveFile(path);
  }
  Status SyncDir(const std::string& dir) override {
    return base_->SyncDir(dir);
  }

 private:
  Env* base_;
  std::atomic<uint64_t> now_us_;
  std::atomic<uint64_t> auto_step_us_;
};

}  // namespace gaea

#endif  // GAEA_UTIL_ENV_H_
