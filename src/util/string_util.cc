#include "util/string_util.h"

#include <cctype>

namespace gaea {

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StrTrim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string StrToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StrStartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool StrEndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool IsIdentifier(std::string_view s) {
  if (s.empty()) return false;
  unsigned char first = static_cast<unsigned char>(s[0]);
  if (!std::isalpha(first) && s[0] != '_') return false;
  for (char c : s.substr(1)) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (!std::isalnum(uc) && c != '_' && c != '-') return false;
  }
  return true;
}

}  // namespace gaea
