#include "util/status.h"

namespace gaea {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kNotSupported: return "NotSupported";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kUnderivable: return "Underivable";
    case StatusCode::kUnavailable: return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace gaea
