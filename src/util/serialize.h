// Binary serialization primitives used by the storage substrate and the
// catalog to persist tuples, class definitions, processes and task records.
//
// Encoding is little-endian fixed-width for numeric types plus
// length-prefixed byte strings. BinaryReader performs bounds checking and
// reports kCorruption on truncated input, so a damaged journal or page can
// never crash the kernel.

#ifndef GAEA_UTIL_SERIALIZE_H_
#define GAEA_UTIL_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace gaea {

// Appends encoded values to an owned byte buffer.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void PutU8(uint8_t v);
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutF32(float v);
  void PutF64(double v);
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  // Length-prefixed (u32) byte string.
  void PutString(std::string_view s);
  // Raw bytes, no length prefix (caller must know the size on read).
  void PutRaw(const void* data, size_t size);

  const std::string& buffer() const { return buffer_; }
  std::string Release() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }
  void Clear() { buffer_.clear(); }

 private:
  std::string buffer_;
};

// Decodes values from a byte span with bounds checking.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  StatusOr<uint8_t> GetU8();
  StatusOr<uint16_t> GetU16();
  StatusOr<uint32_t> GetU32();
  StatusOr<uint64_t> GetU64();
  StatusOr<int32_t> GetI32();
  StatusOr<int64_t> GetI64();
  StatusOr<float> GetF32();
  StatusOr<double> GetF64();
  StatusOr<bool> GetBool();
  StatusOr<std::string> GetString();
  // Reads exactly `size` raw bytes.
  StatusOr<std::string> GetRaw(size_t size);

  // Bytes not yet consumed.
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t position() const { return pos_; }

 private:
  Status Need(size_t n) const;

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace gaea

#endif  // GAEA_UTIL_SERIALIZE_H_
