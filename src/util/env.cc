#include "util/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace gaea {

namespace {

std::string Errno(const char* op, const std::string& path) {
  return std::string(op) + " " + path + ": " + std::strerror(errno);
}

}  // namespace

// ---------------------------------------------------------------------------
// WritableFile base: the short-write loop every caller shares
// ---------------------------------------------------------------------------

Status WritableFile::Append(std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    StatusOr<size_t> n = AppendSome(data.substr(written));
    if (!n.ok()) {
      return Status::IOError("append failed after " + std::to_string(written) +
                             " of " + std::to_string(data.size()) +
                             " bytes: " + n.status().message());
    }
    written += *n;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// PosixEnv
// ---------------------------------------------------------------------------

namespace {

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override { ::close(fd_); }

  StatusOr<size_t> AppendSome(std::string_view data) override {
    for (;;) {
      ssize_t n = ::write(fd_, data.data(), data.size());
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(Errno("write", path_));
      }
      return static_cast<size_t>(n);
    }
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Status::IOError(Errno("fsync", path_));
    }
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixRandomAccessFile() override { ::close(fd_); }

  StatusOr<size_t> Read(uint64_t offset, size_t n,
                        char* scratch) const override {
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::pread(fd_, scratch + got, n - got,
                          static_cast<off_t>(offset + got));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(Errno("pread", path_));
      }
      if (r == 0) break;  // end of file
      got += static_cast<size_t>(r);
    }
    return got;
  }

  Status Write(uint64_t offset, std::string_view data) override {
    size_t written = 0;
    while (written < data.size()) {
      ssize_t n = ::pwrite(fd_, data.data() + written, data.size() - written,
                           static_cast<off_t>(offset + written));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("pwrite " + path_ + " failed after " +
                               std::to_string(written) + " of " +
                               std::to_string(data.size()) +
                               " bytes: " + std::strerror(errno));
      }
      written += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Status::IOError(Errno("fsync", path_));
    }
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixSequentialFile : public SequentialFile {
 public:
  PosixSequentialFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixSequentialFile() override { ::close(fd_); }

  StatusOr<size_t> Read(size_t n, char* scratch) override {
    for (;;) {
      ssize_t r = ::read(fd_, scratch, n);
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(Errno("read", path_));
      }
      return static_cast<size_t>(r);
    }
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) return Status::IOError(Errno("open", path));
    return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
  }

  StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) return Status::IOError(Errno("open", path));
    return std::unique_ptr<RandomAccessFile>(
        new PosixRandomAccessFile(fd, path));
  }

  StatusOr<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (errno == ENOENT) return Status::NotFound(Errno("open", path));
      return Status::IOError(Errno("open", path));
    }
    return std::unique_ptr<SequentialFile>(new PosixSequentialFile(fd, path));
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  StatusOr<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return Status::IOError(Errno("stat", path));
    }
    return static_cast<uint64_t>(st.st_size);
  }

  Status Truncate(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Status::IOError(Errno("truncate", path));
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError(Errno("rename", from + " -> " + to));
    }
    // The rename itself is atomic, but the directory entry only survives a
    // crash once the parent directory is fsynced.
    return SyncParentDir(to);
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IOError(Errno("mkdir", path));
    }
    return SyncParentDir(path);
  }

  StatusOr<std::vector<std::string>> ListDir(
      const std::string& path) override {
    DIR* d = ::opendir(path.c_str());
    if (d == nullptr) {
      if (errno == ENOENT) return Status::NotFound(Errno("opendir", path));
      return Status::IOError(Errno("opendir", path));
    }
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(d)) {
      std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      names.push_back(std::move(name));
    }
    ::closedir(d);
    return names;
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::IOError(Errno("unlink", path));
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return Status::IOError(Errno("open dir", dir));
    Status result = Status::OK();
    if (::fsync(fd) != 0) {
      // Some file systems refuse fsync on directories (EINVAL); that is a
      // property of the mount, not a durability failure we can act on.
      if (errno != EINVAL) result = Status::IOError(Errno("fsync dir", dir));
    }
    ::close(fd);
    return result;
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv posix_env;
  return &posix_env;
}

uint64_t Env::NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Status Env::SyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  return SyncDir(dir);
}

// ---------------------------------------------------------------------------
// FaultInjectingEnv
// ---------------------------------------------------------------------------

Status FaultInjectingEnv::CheckAlive() const {
  if (crashed()) {
    return Status::IOError("injected crash: the process is dead; no write "
                           "may reach the disk");
  }
  return Status::OK();
}

StatusOr<size_t> FaultInjectingEnv::AdmitWrite(size_t size) {
  GAEA_RETURN_IF_ERROR(CheckAlive());
  FaultPlan plan;
  {
    std::lock_guard<std::mutex> lock(mu_);
    plan = plan_;
  }
  uint64_t op = write_ops_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (plan.crash_after_writes != 0 && op >= plan.crash_after_writes) {
    TriggerCrash();
    if (plan.torn_tail && size > 1) {
      // The dying write persists a prefix: the torn frame/page recovery
      // must truncate away. The caller still sees the crash as an error.
      return size / 2;
    }
    return Status::IOError("injected crash at write op " +
                           std::to_string(op));
  }
  if (plan.byte_budget != 0) {
    uint64_t used = bytes_written_.load(std::memory_order_acquire);
    if (used + size > plan.byte_budget) {
      return Status::IOError("No space left on device (injected) after " +
                             std::to_string(used) + " bytes");
    }
  }
  size_t allowed = size;
  if (plan.short_write_every != 0 && op % plan.short_write_every == 0 &&
      size > 1) {
    allowed = size / 2;
  }
  bytes_written_.fetch_add(allowed, std::memory_order_acq_rel);
  return allowed;
}

Status FaultInjectingEnv::AdmitPageWrite(size_t size) {
  GAEA_RETURN_IF_ERROR(CheckAlive());
  FaultPlan plan;
  {
    std::lock_guard<std::mutex> lock(mu_);
    plan = plan_;
  }
  uint64_t op = write_ops_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (plan.crash_after_writes != 0 && op >= plan.crash_after_writes) {
    TriggerCrash();
    return Status::IOError("injected crash at write op " + std::to_string(op));
  }
  if (plan.byte_budget != 0) {
    uint64_t used = bytes_written_.load(std::memory_order_acquire);
    if (used + size > plan.byte_budget) {
      return Status::IOError("No space left on device (injected) after " +
                             std::to_string(used) + " bytes");
    }
  }
  bytes_written_.fetch_add(size, std::memory_order_acq_rel);
  return Status::OK();
}

Status FaultInjectingEnv::CheckSync() {
  GAEA_RETURN_IF_ERROR(CheckAlive());
  std::lock_guard<std::mutex> lock(mu_);
  if (plan_.fail_sync) {
    return Status::IOError("injected fsync failure");
  }
  return Status::OK();
}

class FaultInjectingWritableFile : public WritableFile {
 public:
  FaultInjectingWritableFile(FaultInjectingEnv* env,
                             std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  StatusOr<size_t> AppendSome(std::string_view data) override {
    auto admitted = env_->AdmitWrite(data.size());
    bool crash_prefix = !admitted.ok() ? false
                                       : env_->crashed();  // torn-tail grant
    if (!admitted.ok()) return admitted.status();
    StatusOr<size_t> n = base_->AppendSome(data.substr(0, *admitted));
    if (!n.ok()) return n;
    if (crash_prefix) {
      // The prefix hit the file, then the process died.
      return Status::IOError("injected crash mid-write (torn tail of " +
                             std::to_string(*n) + " bytes persisted)");
    }
    return n;
  }

  Status Sync() override {
    GAEA_RETURN_IF_ERROR(env_->CheckSync());
    return base_->Sync();
  }

 private:
  FaultInjectingEnv* env_;
  std::unique_ptr<WritableFile> base_;
};

class FaultInjectingRandomAccessFile : public RandomAccessFile {
 public:
  FaultInjectingRandomAccessFile(FaultInjectingEnv* env,
                                 std::unique_ptr<RandomAccessFile> base)
      : env_(env), base_(std::move(base)) {}

  StatusOr<size_t> Read(uint64_t offset, size_t n,
                        char* scratch) const override {
    return base_->Read(offset, n, scratch);
  }

  Status Write(uint64_t offset, std::string_view data) override {
    // Page writes are all-or-nothing in the fault model: pages carry no
    // checksum, so the storage layer could not detect an intra-page tear —
    // torn tails are an append (journal) phenomenon, where frame checksums
    // catch them. The crashing page write simply never reaches the disk.
    GAEA_RETURN_IF_ERROR(env_->AdmitPageWrite(data.size()));
    return base_->Write(offset, data);
  }

  Status Sync() override {
    GAEA_RETURN_IF_ERROR(env_->CheckSync());
    return base_->Sync();
  }

 private:
  FaultInjectingEnv* env_;
  std::unique_ptr<RandomAccessFile> base_;
};

StatusOr<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path) {
  GAEA_RETURN_IF_ERROR(CheckAlive());
  GAEA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                        base_->NewWritableFile(path));
  return std::unique_ptr<WritableFile>(
      new FaultInjectingWritableFile(this, std::move(base)));
}

StatusOr<std::unique_ptr<RandomAccessFile>>
FaultInjectingEnv::NewRandomAccessFile(const std::string& path) {
  GAEA_RETURN_IF_ERROR(CheckAlive());
  GAEA_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> base,
                        base_->NewRandomAccessFile(path));
  return std::unique_ptr<RandomAccessFile>(
      new FaultInjectingRandomAccessFile(this, std::move(base)));
}

StatusOr<std::unique_ptr<SequentialFile>> FaultInjectingEnv::NewSequentialFile(
    const std::string& path) {
  return base_->NewSequentialFile(path);
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

StatusOr<uint64_t> FaultInjectingEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

Status FaultInjectingEnv::Truncate(const std::string& path, uint64_t size) {
  GAEA_RETURN_IF_ERROR(AdmitPageWrite(0));
  return base_->Truncate(path, size);
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  // All-or-nothing like a page write: rename is atomic on a real file
  // system, so the injected crash means the rename never happened — the
  // checkpoint manifest install either completed or left the old state.
  GAEA_RETURN_IF_ERROR(AdmitPageWrite(0));
  return base_->RenameFile(from, to);
}

Status FaultInjectingEnv::CreateDir(const std::string& path) {
  // Not counted as a write op: directory creation is a one-time no-op in
  // steady state, and counting it would dilute the crash-point sweep over
  // the writes that actually carry data.
  GAEA_RETURN_IF_ERROR(CheckAlive());
  return base_->CreateDir(path);
}

StatusOr<std::vector<std::string>> FaultInjectingEnv::ListDir(
    const std::string& path) {
  return base_->ListDir(path);
}

Status FaultInjectingEnv::RemoveFile(const std::string& path) {
  GAEA_RETURN_IF_ERROR(AdmitPageWrite(0));
  return base_->RemoveFile(path);
}

Status FaultInjectingEnv::SyncDir(const std::string& dir) {
  GAEA_RETURN_IF_ERROR(CheckSync());
  return base_->SyncDir(dir);
}

}  // namespace gaea
