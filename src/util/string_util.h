// Small string helpers shared across the kernel (DDL lexer, catalog names,
// report formatting).

#ifndef GAEA_UTIL_STRING_UTIL_H_
#define GAEA_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace gaea {

// Splits on `sep`, never returns empty vector; empty fields preserved.
std::vector<std::string> StrSplit(std::string_view s, char sep);

// Joins with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view s);

// ASCII lower-casing copy.
std::string StrToLower(std::string_view s);

bool StrStartsWith(std::string_view s, std::string_view prefix);
bool StrEndsWith(std::string_view s, std::string_view suffix);

// True for [A-Za-z_][A-Za-z0-9_-]* — valid Gaea catalog identifier.
bool IsIdentifier(std::string_view s);

}  // namespace gaea

#endif  // GAEA_UTIL_STRING_UTIL_H_
