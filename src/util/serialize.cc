#include "util/serialize.h"

#include <cstring>

namespace gaea {

namespace {
template <typename T>
void AppendFixed(std::string* buf, T v) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  buf->append(bytes, sizeof(T));
}
}  // namespace

void BinaryWriter::PutU8(uint8_t v) { AppendFixed(&buffer_, v); }
void BinaryWriter::PutU16(uint16_t v) { AppendFixed(&buffer_, v); }
void BinaryWriter::PutU32(uint32_t v) { AppendFixed(&buffer_, v); }
void BinaryWriter::PutU64(uint64_t v) { AppendFixed(&buffer_, v); }
void BinaryWriter::PutF32(float v) { AppendFixed(&buffer_, v); }
void BinaryWriter::PutF64(double v) { AppendFixed(&buffer_, v); }

void BinaryWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buffer_.append(s.data(), s.size());
}

void BinaryWriter::PutRaw(const void* data, size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
}

Status BinaryReader::Need(size_t n) const {
  if (pos_ + n > data_.size()) {
    return Status::Corruption("binary reader: truncated input (need " +
                              std::to_string(n) + " bytes, have " +
                              std::to_string(data_.size() - pos_) + ")");
  }
  return Status::OK();
}

namespace {
template <typename T>
StatusOr<T> ReadFixed(std::string_view data, size_t* pos) {
  T v;
  std::memcpy(&v, data.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return v;
}
}  // namespace

StatusOr<uint8_t> BinaryReader::GetU8() {
  GAEA_RETURN_IF_ERROR(Need(1));
  return ReadFixed<uint8_t>(data_, &pos_);
}
StatusOr<uint16_t> BinaryReader::GetU16() {
  GAEA_RETURN_IF_ERROR(Need(2));
  return ReadFixed<uint16_t>(data_, &pos_);
}
StatusOr<uint32_t> BinaryReader::GetU32() {
  GAEA_RETURN_IF_ERROR(Need(4));
  return ReadFixed<uint32_t>(data_, &pos_);
}
StatusOr<uint64_t> BinaryReader::GetU64() {
  GAEA_RETURN_IF_ERROR(Need(8));
  return ReadFixed<uint64_t>(data_, &pos_);
}
StatusOr<int32_t> BinaryReader::GetI32() {
  GAEA_ASSIGN_OR_RETURN(uint32_t v, GetU32());
  return static_cast<int32_t>(v);
}
StatusOr<int64_t> BinaryReader::GetI64() {
  GAEA_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}
StatusOr<float> BinaryReader::GetF32() {
  GAEA_RETURN_IF_ERROR(Need(4));
  return ReadFixed<float>(data_, &pos_);
}
StatusOr<double> BinaryReader::GetF64() {
  GAEA_RETURN_IF_ERROR(Need(8));
  return ReadFixed<double>(data_, &pos_);
}
StatusOr<bool> BinaryReader::GetBool() {
  GAEA_ASSIGN_OR_RETURN(uint8_t v, GetU8());
  return v != 0;
}

StatusOr<std::string> BinaryReader::GetString() {
  GAEA_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  return GetRaw(len);
}

StatusOr<std::string> BinaryReader::GetRaw(size_t size) {
  GAEA_RETURN_IF_ERROR(Need(size));
  std::string out(data_.substr(pos_, size));
  pos_ += size;
  return out;
}

}  // namespace gaea
