// Status and StatusOr: exception-free error handling for the Gaea library.
//
// Every fallible operation in Gaea returns a Status (or StatusOr<T> when it
// also produces a value). This mirrors the convention of production database
// codebases (RocksDB, Arrow): the Google style guide forbids exceptions, so
// error propagation is explicit in every signature.

#ifndef GAEA_UTIL_STATUS_H_
#define GAEA_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace gaea {

// Canonical error space for the Gaea kernel.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,   // caller passed something malformed
  kNotFound = 2,          // catalog / object / file lookup miss
  kAlreadyExists = 3,     // duplicate definition (class, process, concept)
  kFailedPrecondition = 4,// assertion / guard rule violated
  kOutOfRange = 5,        // index / extent out of bounds
  kCorruption = 6,        // storage-level inconsistency
  kIOError = 7,           // underlying file system failure
  kNotSupported = 8,      // feature intentionally unimplemented
  kInternal = 9,          // invariant violation inside the kernel
  kUnderivable = 10,      // derivation net cannot produce the request
  kUnavailable = 11,      // transient overload / shutdown; retry later
};

// Human-readable name of a status code ("NotFound", ...).
const char* StatusCodeName(StatusCode code);

// A cheap value type describing success or a categorized error with message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Underivable(std::string msg) {
    return Status(StatusCode::kUnderivable, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// StatusOr<T>: either an error Status or a value of type T.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work,
  // matching absl::StatusOr ergonomics.
  StatusOr(const T& value) : status_(Status::OK()), value_(value) {}
  StatusOr(T&& value) : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value or `fallback` when holding an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagate errors out of the current function.
#define GAEA_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::gaea::Status _gaea_status = (expr);          \
    if (!_gaea_status.ok()) return _gaea_status;   \
  } while (0)

// Evaluate a StatusOr expression, binding the value or returning the error.
#define GAEA_ASSIGN_OR_RETURN(lhs, expr)           \
  GAEA_ASSIGN_OR_RETURN_IMPL_(                     \
      GAEA_STATUS_CONCAT_(_gaea_sor, __LINE__), lhs, expr)

#define GAEA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define GAEA_STATUS_CONCAT_(a, b) GAEA_STATUS_CONCAT_IMPL_(a, b)
#define GAEA_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace gaea

#endif  // GAEA_UTIL_STATUS_H_
