// Tasks: object-level derivation records (paper §2.1.2, §2.1.5).
//
// "The instantiation of a process with input data objects is called a task.
// Every task will generate a set of objects (most of the time just one) for
// the output class." The task log is the durable record of *how every
// derived object came to be*: process name + version, the exact input OIDs
// per argument, the output OIDs, who ran it and when. It is the basis of
// lineage queries and experiment reproduction.

#ifndef GAEA_CORE_TASK_H_
#define GAEA_CORE_TASK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "spatial/abstime.h"
#include "storage/journal.h"
#include "storage/object_store.h"
#include "util/serialize.h"
#include "util/status.h"

namespace gaea {

using TaskId = uint64_t;
constexpr TaskId kInvalidTaskId = 0;

enum class TaskStatus : uint8_t {
  kCompleted = 0,
  kFailed = 1,
};

struct Task {
  TaskId id = kInvalidTaskId;
  std::string process_name;
  int process_version = 1;
  // Input OIDs per process argument name.
  std::map<std::string, std::vector<Oid>> inputs;
  std::vector<Oid> outputs;
  TaskStatus status = TaskStatus::kCompleted;
  std::string error;       // failure reason when status == kFailed
  std::string user;        // who ran the derivation
  std::string note;        // free text (external-procedure description)
  AbsTime started;         // logical clock supplied by the kernel
  int64_t duration_us = 0; // wall time of the derivation

  // All input OIDs flattened (deduplicated, sorted).
  std::vector<Oid> AllInputs() const;

  std::string ToString() const;

  void Serialize(BinaryWriter* w) const;
  static StatusOr<Task> Deserialize(BinaryReader* r);
};

// Append-only, optionally journal-backed task log with lineage indexes.
// Thread-safe: appends and index lookups are serialized by a mutex. Tasks
// live in a deque, so `const Task*` results stay valid across appends.
class TaskLog {
 public:
  TaskLog() = default;
  TaskLog(const TaskLog&) = delete;
  TaskLog& operator=(const TaskLog&) = delete;

  // In-memory log (benchmarking, scratch sessions).
  static std::unique_ptr<TaskLog> InMemory();
  // Durable log: replays `path` then appends to it; I/O goes through `env`.
  // With `recovery`, the snapshot loads first and the journal replays only
  // from recovery->start_lsn (a task's journal LSN is its id - 1, so the
  // sequential-id replay check holds across the seam).
  static StatusOr<std::unique_ptr<TaskLog>> Open(
      const std::string& path, Env* env = Env::Default(),
      const JournalRecovery* recovery = nullptr);

  // Journal Sync policy (no-op for an in-memory log).
  void SetDurability(DurabilityMode mode) {
    if (journal_ != nullptr) journal_->set_durability(mode);
  }

  // Records appended to the backing journal through this handle (0 for an
  // in-memory log); a metrics surface, see docs/OBSERVABILITY.md.
  int64_t journal_appended() const {
    return journal_ == nullptr ? 0 : journal_->appended();
  }

  // Records a task; assigns and returns its id.
  StatusOr<TaskId> Append(Task task);

  // Called under the log mutex after a task commits (Append or
  // ApplyReplicated), with the committed task. Because the mutex serializes
  // commits, the hook observes tasks in id order exactly once per handle —
  // the provenance index keys its incremental maintenance on this. A hook
  // error propagates to the committer (the task itself is already durable;
  // the hook's own recovery path must absorb the gap).
  void SetCommitHook(std::function<Status(const Task&)> hook) {
    std::lock_guard<std::mutex> lock(mu_);
    commit_hook_ = std::move(hook);
  }

  StatusOr<const Task*> Get(TaskId id) const;
  // Not synchronized with concurrent appends — call only from single-
  // threaded sections (shell, tests, lineage reports).
  const std::deque<Task>& tasks() const { return tasks_; }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tasks_.size();
  }

  // The task that produced `oid` (an object is produced by at most one
  // task); kNotFound for base objects.
  StatusOr<const Task*> Producer(Oid oid) const;

  // All tasks that consumed `oid` as an input.
  std::vector<const Task*> Consumers(Oid oid) const;

  // The most recent *completed* task with exactly this process version and
  // these input bindings, or kNotFound. Backs derivation reuse ("avoid
  // unnecessary duplication of experiments", paper §1).
  StatusOr<const Task*> FindCompleted(
      const std::string& process_name, int process_version,
      const std::map<std::string, std::vector<Oid>>& inputs) const;

  // ---- replication (src/replication/) ----

  // Applies one shipped task record: deserializes, enforces the sequential-
  // id invariant (kFailedPrecondition on a gap so the applier retries after
  // the missing prefix ships), indexes, and appends the record verbatim to
  // the local journal. Returns the applied task (pointer stable across
  // appends) so the caller can rematerialize its outputs.
  StatusOr<const Task*> ApplyReplicated(const std::string& record);

  // Task-journal read for the shipper; see Journal::ReadRange.
  Status ReadJournalRange(uint64_t from, size_t max_records, size_t max_bytes,
                          std::vector<std::string>* out, uint64_t* next) const {
    if (journal_ == nullptr) {
      *next = from;
      return Status::OK();
    }
    return journal_->ReadRange(from, max_records, max_bytes, out, next);
  }

  // ---- checkpointing (src/recovery/) ----

  // Streams every task as a journal record (id order) and reports the
  // journal LSN covered. Atomic under the log mutex, so the stream and the
  // LSN agree even while derivations append concurrently.
  Status Snapshot(const std::function<Status(const std::string&)>& sink,
                  uint64_t* covered_lsn) const;

  uint64_t JournalRecordCount() const {
    return journal_ == nullptr ? 0 : journal_->record_count();
  }
  uint64_t JournalBaseLsn() const {
    return journal_ == nullptr ? 0 : journal_->base_lsn();
  }
  uint64_t JournalBytes() const {
    return journal_ == nullptr ? 0 : journal_->size_bytes();
  }
  Status SyncJournal() {
    return journal_ == nullptr ? Status::OK() : journal_->Sync();
  }
  Status TruncateJournalPrefix(uint64_t upto_lsn,
                               const std::string& archive_path) {
    if (journal_ == nullptr) return Status::OK();
    std::lock_guard<std::mutex> lock(mu_);
    return journal_->TruncatePrefix(upto_lsn, archive_path);
  }

 private:
  mutable std::mutex mu_;
  std::deque<Task> tasks_;
  std::map<Oid, size_t> producer_index_;
  std::map<Oid, std::vector<size_t>> consumer_index_;
  std::unique_ptr<Journal> journal_;
  std::function<Status(const Task&)> commit_hook_;
};

}  // namespace gaea

#endif  // GAEA_CORE_TASK_H_
