// Process definitions (paper §2.1.2, Figure 3).
//
// "A process defines a mapping between a set of input object classes and an
// output object class. ... object classes which do not represent base data
// are solely defined by their derivation process."
//
// A ProcessDef carries:
//   * name + version — editing a process always creates a new version; "in
//     no case is the old process overwritten";
//   * the output class and the ARGUMENT list (each argument binds a class,
//     optionally SETOF with a minimum cardinality — the Petri-net firing
//     threshold of §2.1.6);
//   * named parameters — "the same derivation method with different
//     parameters represents different processes";
//   * the TEMPLATE: ASSERTIONS (guards) and MAPPINGS (attribute transfer
//     functions), both as expression trees.

#ifndef GAEA_CORE_PROCESS_H_
#define GAEA_CORE_PROCESS_H_

#include <map>
#include <string>
#include <vector>

#include "catalog/class_def.h"
#include "core/expr.h"
#include "types/op_registry.h"
#include "util/serialize.h"
#include "util/status.h"

namespace gaea {

// One ARGUMENT of a process.
struct ProcessArg {
  std::string name;        // binding name used in the template ("bands")
  std::string class_name;  // input class
  bool setof = false;
  // Minimum number of objects needed (Petri-net transition threshold):
  // "the number of inputs to a transition denotes the minimum number of
  // tokens needed to enable the transition". Scalar args have min_card 1.
  int min_card = 1;
};

// One MAPPING: output attribute := expression.
struct ProcessMapping {
  std::string attr;
  ExprPtr expr;
};

class ProcessDef {
 public:
  ProcessDef() = default;
  ProcessDef(std::string name, std::string output_class)
      : name_(std::move(name)), output_class_(std::move(output_class)) {}

  const std::string& name() const { return name_; }
  int version() const { return version_; }
  void set_version(int v) { version_ = v; }
  const std::string& output_class() const { return output_class_; }
  const std::string& doc() const { return doc_; }
  void set_doc(std::string doc) { doc_ = std::move(doc); }

  Status AddArg(ProcessArg arg);
  Status AddParam(const std::string& name, Value value);
  Status AddAssertion(ExprPtr expr);
  Status AddMapping(const std::string& attr, ExprPtr expr);

  const std::vector<ProcessArg>& args() const { return args_; }
  const std::map<std::string, Value>& params() const { return params_; }
  const std::vector<ExprPtr>& assertions() const { return assertions_; }
  const std::vector<ProcessMapping>& mappings() const { return mappings_; }

  StatusOr<const ProcessArg*> FindArg(const std::string& name) const;

  // Full validation against the catalog: argument and output classes exist,
  // every mapping targets a declared output attribute with a matching type,
  // every assertion type-checks to bool, and every output attribute is
  // covered by exactly one mapping.
  Status Validate(const ClassRegistry& classes,
                  const OperatorRegistry& ops) const;

  // Two processes are the same derivation procedure iff their structure
  // (args, params, assertions, mappings) is identical. Different parameters
  // => different processes (paper §2.1.2), which this comparison captures
  // since parameters are part of the structure.
  bool StructurallyEquals(const ProcessDef& other) const;

  // DDL-like rendering (Figure 3 shape).
  std::string ToDdl() const;

  void Serialize(BinaryWriter* w) const;
  static StatusOr<ProcessDef> Deserialize(BinaryReader* r);

 private:
  std::string name_;
  int version_ = 1;
  std::string output_class_;
  std::string doc_;
  std::vector<ProcessArg> args_;
  std::map<std::string, Value> params_;
  std::vector<ExprPtr> assertions_;
  std::vector<ProcessMapping> mappings_;
};

}  // namespace gaea

#endif  // GAEA_CORE_PROCESS_H_
