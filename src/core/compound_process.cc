#include "core/compound_process.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/string_util.h"

namespace gaea {

Status CompoundProcessDef::AddExternalInput(const std::string& binding,
                                            const std::string& class_name) {
  if (!IsIdentifier(binding)) {
    return Status::InvalidArgument("bad input binding name: '" + binding + "'");
  }
  auto [it, inserted] = external_inputs_.emplace(binding, class_name);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("duplicate external input: " + binding);
  }
  return Status::OK();
}

Status CompoundProcessDef::AddStage(CompoundStage stage) {
  if (!IsIdentifier(stage.name)) {
    return Status::InvalidArgument("bad stage name: '" + stage.name + "'");
  }
  for (const CompoundStage& existing : stages_) {
    if (existing.name == stage.name) {
      return Status::AlreadyExists("duplicate stage: " + stage.name);
    }
  }
  stages_.push_back(std::move(stage));
  return Status::OK();
}

StatusOr<std::vector<const CompoundStage*>> CompoundProcessDef::Expand(
    const ClassRegistry& classes, const ProcessRegistry& processes) const {
  if (stages_.empty()) {
    return Status::InvalidArgument("compound process " + name_ +
                                   " has no stages");
  }
  std::map<std::string, const CompoundStage*> by_name;
  for (const CompoundStage& stage : stages_) {
    by_name[stage.name] = &stage;
  }
  if (by_name.count(output_stage_) == 0) {
    return Status::NotFound("compound process " + name_ + ": output stage " +
                            output_stage_ + " not defined");
  }

  // Validate each stage's process and bindings; collect stage->stage edges.
  std::map<std::string, std::vector<std::string>> dependents;
  std::map<std::string, int> in_degree;
  for (const CompoundStage& stage : stages_) in_degree[stage.name] = 0;

  for (const CompoundStage& stage : stages_) {
    GAEA_ASSIGN_OR_RETURN(const ProcessDef* proc,
                          processes.Latest(stage.process_name));
    // Every process argument must be bound exactly once.
    for (const ProcessArg& arg : proc->args()) {
      auto it = stage.bindings.find(arg.name);
      if (it == stage.bindings.end()) {
        return Status::InvalidArgument(
            "compound " + name_ + ": stage " + stage.name +
            " leaves process argument " + arg.name + " unbound");
      }
      const StageInput& input = it->second;
      std::string bound_class;
      if (input.source == StageInput::Source::kExternal) {
        auto ext = external_inputs_.find(input.name);
        if (ext == external_inputs_.end()) {
          return Status::NotFound("compound " + name_ + ": stage " +
                                  stage.name + " references unknown input " +
                                  input.name);
        }
        bound_class = ext->second;
      } else {
        auto producer = by_name.find(input.name);
        if (producer == by_name.end()) {
          return Status::NotFound("compound " + name_ + ": stage " +
                                  stage.name + " references unknown stage " +
                                  input.name);
        }
        GAEA_ASSIGN_OR_RETURN(const ProcessDef* producer_proc,
                              processes.Latest(producer->second->process_name));
        bound_class = producer_proc->output_class();
        dependents[input.name].push_back(stage.name);
        in_degree[stage.name]++;
      }
      if (bound_class != arg.class_name) {
        return Status::InvalidArgument(
            "compound " + name_ + ": stage " + stage.name + " argument " +
            arg.name + " expects class " + arg.class_name + ", gets " +
            bound_class);
      }
      GAEA_RETURN_IF_ERROR(classes.LookupByName(bound_class).status());
    }
    // No extraneous bindings.
    for (const auto& [arg_name, input] : stage.bindings) {
      if (!proc->FindArg(arg_name).ok()) {
        return Status::InvalidArgument("compound " + name_ + ": stage " +
                                       stage.name + " binds unknown argument " +
                                       arg_name);
      }
    }
  }

  // Kahn topological sort (deterministic: lexicographic tie-break).
  std::vector<std::string> ready;
  for (const auto& [name, deg] : in_degree) {
    if (deg == 0) ready.push_back(name);
  }
  std::sort(ready.begin(), ready.end(), std::greater<>());
  std::vector<const CompoundStage*> order;
  while (!ready.empty()) {
    std::string name = std::move(ready.back());
    ready.pop_back();
    order.push_back(by_name.at(name));
    for (const std::string& dep : dependents[name]) {
      if (--in_degree[dep] == 0) {
        ready.push_back(dep);
        std::sort(ready.begin(), ready.end(), std::greater<>());
      }
    }
  }
  if (order.size() != stages_.size()) {
    return Status::InvalidArgument("compound process " + name_ +
                                   " contains a stage cycle");
  }
  return order;
}

std::string CompoundProcessDef::ToDdl() const {
  std::ostringstream os;
  os << "DEFINE COMPOUND PROCESS " << name_ << " {\n";
  for (const auto& [binding, cls] : external_inputs_) {
    os << "  INPUT " << binding << " : " << cls << ";\n";
  }
  for (const CompoundStage& stage : stages_) {
    os << "  STAGE " << stage.name << " = " << stage.process_name << "(";
    bool first = true;
    for (const auto& [arg, input] : stage.bindings) {
      if (!first) os << ", ";
      first = false;
      os << arg << " <- "
         << (input.source == StageInput::Source::kExternal ? "" : "@")
         << input.name;
    }
    os << ");\n";
  }
  os << "  OUTPUT " << output_stage_ << ";\n}";
  return os.str();
}

CompoundProcessDef BuildFigure5LandChange(const std::string& classify_process,
                                          const std::string& change_process,
                                          const std::string& before_binding,
                                          const std::string& after_binding) {
  // Conventional argument names used throughout the Gaea examples: the
  // classification process takes SETOF `bands`, the change process takes
  // `before` and `after` label maps.
  CompoundProcessDef def("land_change_detection", "detect");
  (void)def.AddExternalInput(before_binding, "landsat_tm_rectified");
  (void)def.AddExternalInput(after_binding, "landsat_tm_rectified");
  CompoundStage before;
  before.name = "classify_before";
  before.process_name = classify_process;
  before.bindings["bands"] =
      StageInput{StageInput::Source::kExternal, before_binding};
  (void)def.AddStage(std::move(before));
  CompoundStage after;
  after.name = "classify_after";
  after.process_name = classify_process;
  after.bindings["bands"] =
      StageInput{StageInput::Source::kExternal, after_binding};
  (void)def.AddStage(std::move(after));
  CompoundStage detect;
  detect.name = "detect";
  detect.process_name = change_process;
  detect.bindings["before"] =
      StageInput{StageInput::Source::kStage, "classify_before"};
  detect.bindings["after"] =
      StageInput{StageInput::Source::kStage, "classify_after"};
  (void)def.AddStage(std::move(detect));
  return def;
}

}  // namespace gaea
