// Versioned process registry.
//
// "A new process may be defined by editing an old process by the addition,
// deletion, or modification of operators. In no case is the old process
// overwritten." Registering a process under an existing name appends a new
// version; every version stays addressable forever, which is what makes old
// tasks replayable.

#ifndef GAEA_CORE_PROCESS_REGISTRY_H_
#define GAEA_CORE_PROCESS_REGISTRY_H_

#include <map>
#include <string>
#include <vector>

#include "core/process.h"
#include "util/status.h"

namespace gaea {

class ProcessRegistry {
 public:
  ProcessRegistry() = default;
  ProcessRegistry(const ProcessRegistry&) = delete;
  ProcessRegistry& operator=(const ProcessRegistry&) = delete;

  // Registers `def`. A new name starts at version 1; an existing name gets
  // the next version (def's version field is overwritten unless replaying a
  // journaled definition whose version is already the expected next one).
  // Registering a version identical in structure to the current latest is
  // rejected (it would be the *same* process, not a new one).
  StatusOr<int> Register(ProcessDef def);

  // Latest version of `name`.
  StatusOr<const ProcessDef*> Latest(const std::string& name) const;
  // Specific version.
  StatusOr<const ProcessDef*> Version(const std::string& name,
                                      int version) const;
  bool Contains(const std::string& name) const;

  // All versions of a process, ascending.
  StatusOr<std::vector<const ProcessDef*>> History(
      const std::string& name) const;

  // Latest versions of all processes, sorted by name.
  std::vector<const ProcessDef*> ListLatest() const;

  // Latest versions of all processes whose output class is `class_name`.
  std::vector<const ProcessDef*> Producing(const std::string& class_name) const;

  size_t size() const { return processes_.size(); }

 private:
  std::map<std::string, std::vector<ProcessDef>> processes_;
};

}  // namespace gaea

#endif  // GAEA_CORE_PROCESS_REGISTRY_H_
