// Expression AST for process TEMPLATEs (paper §2.1.2, Figure 3).
//
// A process template contains ASSERTIONS (guard rules that must hold before
// the process can be applied) and MAPPINGS (transfer functions deriving the
// output attributes). Both are expressions over the process arguments:
//
//   ASSERTIONS:  card(bands) = 3;  common(bands.spatialextent);
//   MAPPINGS:    C20.data = unsuperclassify(composite(bands.data), 12);
//                C20.timestamp = ANYOF bands.timestamp;
//
// Node kinds:
//   literal       a constant Value
//   param         named process parameter ("the same derivation method with
//                 different parameters represents different processes")
//   attr ref      arg.attr — a single value for scalar args, a list for
//                 SETOF args (one element per bound object)
//   card          number of objects bound to a SETOF arg
//   anyof         deterministic representative (first element) of a list
//   common        guard: all list elements identical, or all boxes overlap
//   op call       application of a registered operator
//
// Expressions are type-checked against the class schemas and the operator
// registry, evaluated against concrete bound objects, and serialized into
// the process journal.

#ifndef GAEA_CORE_EXPR_H_
#define GAEA_CORE_EXPR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/class_def.h"
#include "catalog/data_object.h"
#include "obs/profile.h"
#include "types/op_registry.h"
#include "types/value.h"
#include "util/env.h"
#include "util/serialize.h"
#include "util/status.h"

namespace gaea {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

// Static information about one process argument during type checking.
struct ArgSchema {
  const ClassDef* class_def = nullptr;
  bool setof = false;
};

// Concrete objects bound to one process argument during evaluation.
struct ArgBinding {
  const ClassDef* class_def = nullptr;
  bool setof = false;
  std::vector<const DataObject*> objects;
};

// Evaluation environment: argument bindings + parameters + operators.
struct EvalContext {
  std::map<std::string, ArgBinding> args;
  const std::map<std::string, Value>* params = nullptr;
  const OperatorRegistry* ops = nullptr;
  // Observability (optional): when set, every operator invocation is timed
  // into the profiler (key "op/<name>") using `env`'s clock, and traced as
  // an "op:<name>" span when the global tracer is enabled.
  obs::Profiler* profiler = nullptr;
  Env* env = nullptr;
};

// Type-checking environment.
struct TypeContext {
  std::map<std::string, ArgSchema> args;
  const std::map<std::string, Value>* params = nullptr;
  const OperatorRegistry* ops = nullptr;
};

class Expr {
 public:
  enum class Kind : uint8_t {
    kLiteral = 0,
    kParam = 1,
    kAttrRef = 2,
    kCard = 3,
    kAnyOf = 4,
    kCommon = 5,
    kOpCall = 6,
  };

  // ---- constructors ----
  static ExprPtr Literal(Value v);
  static ExprPtr Param(std::string name);
  static ExprPtr AttrRef(std::string arg, std::string attr);
  static ExprPtr Card(std::string arg);
  static ExprPtr AnyOf(ExprPtr child);
  // common(e1, e2, ...): flattens the operands (each a SETOF list or a
  // scalar) into one collection and checks they are identical, or — for
  // boxes — pairwise overlapping ("the same or overlap", Figure 3).
  static ExprPtr Common(std::vector<ExprPtr> children);
  static ExprPtr Common(ExprPtr child);
  static ExprPtr OpCall(std::string op, std::vector<ExprPtr> args);

  Kind kind() const { return kind_; }

  // ---- tree inspection (used by the static analyzer, src/analysis/) ----
  // Meaning depends on kind: param name for kParam, argument name for
  // kAttrRef/kCard, operator name for kOpCall; empty otherwise.
  const std::string& name() const { return name_; }
  // Attribute name for kAttrRef; empty otherwise.
  const std::string& attr() const { return attr_; }
  // Constant for kLiteral; null otherwise.
  const Value& literal() const { return literal_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  // Infers the result type, verifying every referenced arg/attr/param/op.
  StatusOr<TypeId> TypeCheck(const TypeContext& ctx) const;

  // Evaluates against concrete bindings.
  StatusOr<Value> Eval(const EvalContext& ctx) const;

  // Source-like rendering, e.g. `unsuperclassify(composite(bands.data), 12)`.
  std::string ToString() const;

  // Structural fingerprint: two expressions with equal fingerprints compute
  // the same function (used to compare derivation procedures).
  bool StructurallyEquals(const Expr& other) const;

  void Serialize(BinaryWriter* w) const;
  static StatusOr<ExprPtr> Deserialize(BinaryReader* r);

 private:
  explicit Expr(Kind kind) : kind_(kind) {}

  // (result type, element type when result is a list and known).
  using FullType = std::pair<TypeId, TypeId>;
  StatusOr<FullType> TypeCheckFull(const TypeContext& ctx) const;

  Kind kind_;
  Value literal_;
  std::string name_;  // param name, arg name, or operator name
  std::string attr_;  // attribute for kAttrRef
  std::vector<ExprPtr> children_;
};

}  // namespace gaea

#endif  // GAEA_CORE_EXPR_H_
