// Object-level derivation planning: the paper's recursive mechanism
// (§2.1.5/§2.1.6):
//
//   1. attempt to retrieve the data from the target class; if it exists,
//      return;
//   2. else back-propagate the requirements through the derivation net and
//      apply this procedure to the input classes of the derivation process;
//      if input data are available, fire the process; otherwise repeat;
//   3. recursion ends at base classes — either the needed data are found
//      (an initial marking) or the request is underivable.
//
// The planner works against the catalog's concrete objects, constrained by
// a spatio-temporal window, and produces an ordered list of steps for the
// Deriver. Outputs of earlier steps can feed later steps (before their OIDs
// exist) via step references.

#ifndef GAEA_CORE_PLANNER_H_
#define GAEA_CORE_PLANNER_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "core/process_registry.h"
#include "spatial/abstime.h"
#include "spatial/box.h"
#include "util/status.h"

namespace gaea {

// Spatio-temporal constraint on acceptable objects. Empty fields match all.
struct Window {
  std::optional<Box> region;          // object extent must overlap
  std::optional<TimeInterval> time;   // object timestamp must lie within

  bool Unconstrained() const { return !region.has_value() && !time.has_value(); }
  std::string ToString() const;
};

// One input bound to a plan step: either an existing stored object or the
// output of an earlier step in the same plan.
struct BoundInput {
  enum class Kind { kStored, kStep };
  Kind kind = Kind::kStored;
  Oid oid = kInvalidOid;   // kStored
  size_t step_index = 0;   // kStep

  static BoundInput Stored(Oid oid) {
    return BoundInput{Kind::kStored, oid, 0};
  }
  static BoundInput FromStep(size_t index) {
    return BoundInput{Kind::kStep, kInvalidOid, index};
  }
};

// One process instantiation in a plan.
struct PlanStep {
  std::string process_name;
  int process_version = 1;
  std::map<std::string, std::vector<BoundInput>> bindings;
};

// An executable derivation plan; the last step produces the target object.
struct DerivationPlan {
  std::vector<PlanStep> steps;
  std::string ToString() const;
};

class Planner {
 public:
  Planner(const Catalog* catalog, const ProcessRegistry* processes)
      : catalog_(catalog), processes_(processes) {}

  // Objects of `class_id` matching `window`, ascending OID.
  StatusOr<std::vector<Oid>> MatchingObjects(ClassId class_id,
                                             const Window& window) const;

  // Plans the derivation of one object of `target` within `window`.
  // kUnderivable when no chain of processes reaches available data.
  StatusOr<DerivationPlan> Plan(ClassId target, const Window& window) const;

 private:
  // Recursive: ensures `count` inputs of `class_id` are available, either
  // stored or produced by appended steps. Returns the bound inputs.
  StatusOr<std::vector<BoundInput>> Satisfy(ClassId class_id, int count,
                                            const Window& window,
                                            std::vector<PlanStep>* steps,
                                            std::set<ClassId>* stack) const;

  const Catalog* catalog_;
  const ProcessRegistry* processes_;
};

}  // namespace gaea

#endif  // GAEA_CORE_PLANNER_H_
