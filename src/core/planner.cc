#include "core/planner.h"

#include <set>
#include <sstream>

namespace gaea {

std::string Window::ToString() const {
  std::ostringstream os;
  os << "window(";
  os << (region.has_value() ? region->ToString() : std::string("any-region"));
  os << ", ";
  os << (time.has_value() ? time->ToString() : std::string("any-time"));
  os << ")";
  return os.str();
}

std::string DerivationPlan::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < steps.size(); ++i) {
    const PlanStep& step = steps[i];
    os << "step " << i << ": " << step.process_name << " v"
       << step.process_version << " (";
    bool first = true;
    for (const auto& [arg, inputs] : step.bindings) {
      if (!first) os << ", ";
      first = false;
      os << arg << "=[";
      for (size_t j = 0; j < inputs.size(); ++j) {
        if (j > 0) os << ",";
        if (inputs[j].kind == BoundInput::Kind::kStored) {
          os << "oid:" << inputs[j].oid;
        } else {
          os << "step:" << inputs[j].step_index;
        }
      }
      os << "]";
    }
    os << ")\n";
  }
  return os.str();
}

StatusOr<std::vector<Oid>> Planner::MatchingObjects(
    ClassId class_id, const Window& window) const {
  // Fully index-driven: the catalog intersects the class index with the
  // R-tree (region) and the time B+tree, so no object is deserialized here.
  return catalog_->Candidates(class_id, window.region, window.time);
}

StatusOr<std::vector<BoundInput>> Planner::Satisfy(
    ClassId class_id, int count, const Window& window,
    std::vector<PlanStep>* steps, std::set<ClassId>* stack) const {
  // Step 1: direct retrieval.
  GAEA_ASSIGN_OR_RETURN(std::vector<Oid> stored,
                        MatchingObjects(class_id, window));
  std::vector<BoundInput> bound;
  for (Oid oid : stored) {
    bound.push_back(BoundInput::Stored(oid));
    // For SETOF arguments every matching object participates, as in the
    // paper's three-band example; thresholds are minimums, not caps.
  }
  if (static_cast<int>(bound.size()) >= count) return bound;

  // Step 2/3: back-propagate through the derivation net.
  if (stack->count(class_id) > 0) {
    return Status::Underivable("cyclic derivation of class " +
                               std::to_string(class_id));
  }
  GAEA_ASSIGN_OR_RETURN(const ClassDef* def,
                        catalog_->classes().LookupById(class_id));
  int missing = count - static_cast<int>(bound.size());
  stack->insert(class_id);
  Status last_error = Status::Underivable(
      "class " + def->name() + " has " + std::to_string(bound.size()) +
      " of " + std::to_string(count) + " required objects in " +
      window.ToString() + " and no applicable derivation process");

  // Cost-based choice among alternative producers (the optimizer block of
  // Figure 1): each viable producer is planned on a scratch copy and the
  // one adding the fewest steps wins. Nets are catalog-sized (tens of
  // processes), so exhaustive comparison is cheap.
  struct Alternative {
    std::vector<PlanStep> steps;
    PlanStep step;
  };
  std::optional<Alternative> best;
  for (const ProcessDef* proc : processes_->Producing(def->name())) {
    std::vector<PlanStep> trial_steps = *steps;
    PlanStep step;
    step.process_name = proc->name();
    step.process_version = proc->version();
    bool ok = true;
    for (const ProcessArg& arg : proc->args()) {
      auto arg_class = catalog_->classes().LookupByName(arg.class_name);
      if (!arg_class.ok()) {
        ok = false;
        last_error = arg_class.status();
        break;
      }
      auto inputs = Satisfy((*arg_class)->id(), arg.min_card, window,
                            &trial_steps, stack);
      if (!inputs.ok()) {
        ok = false;
        last_error = inputs.status();
        break;
      }
      std::vector<BoundInput> bound_inputs = *std::move(inputs);
      if (!arg.setof && bound_inputs.size() > 1) {
        // Scalar arguments take exactly one object; SETOF arguments use
        // every matching object (thresholds are minimums, not caps).
        bound_inputs.resize(1);
      }
      step.bindings[arg.name] = std::move(bound_inputs);
    }
    if (!ok) continue;
    if (!best.has_value() || trial_steps.size() < best->steps.size()) {
      best = Alternative{std::move(trial_steps), std::move(step)};
    }
  }
  if (best.has_value()) {
    // One firing per missing object (non-consuming inputs are reused).
    std::vector<PlanStep> chosen = std::move(best->steps);
    for (int i = 0; i < missing; ++i) {
      chosen.push_back(best->step);
      bound.push_back(BoundInput::FromStep(chosen.size() - 1));
    }
    *steps = std::move(chosen);
    stack->erase(class_id);
    return bound;
  }
  stack->erase(class_id);
  return last_error;
}

StatusOr<DerivationPlan> Planner::Plan(ClassId target,
                                       const Window& window) const {
  DerivationPlan plan;
  std::set<ClassId> stack;
  GAEA_ASSIGN_OR_RETURN(
      std::vector<BoundInput> bound,
      Satisfy(target, 1, window, &plan.steps, &stack));
  if (plan.steps.empty()) {
    // Data already stored: represent as an empty plan; callers use
    // MatchingObjects for retrieval. Distinguish with a clear status.
    return plan;
  }
  return plan;
}

}  // namespace gaea
