// Intra-derivation tile parallelism (docs/PERF.md "Two-level parallelism").
//
// The TaskScheduler parallelizes *across* independent derivations; the
// TilePool parallelizes *within* one: a raster operator splits its row space
// into fixed-height bands ("tiles") and fans them out onto a small pool of
// persistent helper threads shared by the whole process. The calling thread
// always participates, so a fan-out never blocks behind unrelated work.
//
// Determinism contract: tile geometry is a pure function of the row count —
// never of the thread count or of which thread runs a tile. Operators that
// reduce (sums, argmins, counts) compute per-tile partials and combine them
// in ascending tile order, so an N-thread run produces bytes identical to a
// 1-thread run. Rasters of at most kTileRows rows take a single-tile inline
// path that is exactly the pre-tiling serial loop.

#ifndef GAEA_CORE_TILE_POOL_H_
#define GAEA_CORE_TILE_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace gaea {

class TilePool {
 public:
  // Rows per tile. Fixed: determinism requires geometry independent of the
  // thread count, and 64 rows of any realistic width is enough work to
  // amortize the queue handoff.
  static constexpr int64_t kTileRows = 64;

  // Process-wide pool; helper threads are shared by every concurrent
  // derivation so total thread count stays bounded by SetMaxParallel.
  static TilePool& Global();

  // Allows up to `n` threads (the caller plus n-1 persistent helpers) to
  // cooperate on one fan-out. Mirrors GaeaKernel::SetDeriveThreads; n < 1 is
  // clamped to 1 (no helpers, every ParallelRows runs inline).
  void SetMaxParallel(int n);
  int max_parallel() const;

  // Runs fn(row_begin, row_end) for every tile of [0, nrows). Returns OK iff
  // every tile returned OK; on failure, the error of the lowest-numbered
  // failing tile (deterministic across thread counts). The callback must
  // only touch rows in [row_begin, row_end) of its output and may read any
  // shared input. Runs inline (caller thread, ascending tile order) when the
  // raster is a single tile, the pool has no helpers, the caller is itself a
  // tile worker (no nested fan-out), or enough fan-outs are already in
  // flight to keep every thread busy (admission control — see docs/PERF.md).
  Status ParallelRows(const char* label, int64_t nrows,
                      const std::function<Status(int64_t, int64_t)>& fn);

  // Snapshot of lifetime counters, surfaced as gaea_tile_* gauges.
  struct Stats {
    uint64_t jobs = 0;          // ParallelRows calls
    uint64_t fanout_jobs = 0;   // ... that dispatched to the helper pool
    uint64_t inline_jobs = 0;   // ... that ran serially on the caller
    uint64_t tiles = 0;         // tiles executed, any path
    uint64_t helper_tiles = 0;  // tiles executed by helper threads
    int helpers = 0;            // current helper thread count
  };
  Stats stats() const;

  TilePool();
  ~TilePool();
  TilePool(const TilePool&) = delete;
  TilePool& operator=(const TilePool&) = delete;

 private:
  struct Job;

  void HelperLoop(size_t index);
  Status RunTile(Job& job, int64_t tile);
  void FinishTile(Job& job, int64_t tile, Status s, bool on_helper);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // helpers: a job gained claimable tiles
  std::condition_variable done_cv_;  // callers: a job finished a tile
  std::deque<std::shared_ptr<Job>> active_;
  std::vector<std::thread> helpers_;
  size_t target_helpers_ = 0;
  int max_parallel_ = 1;
  bool stop_ = false;

  // Lifetime counters (relaxed: stats are advisory).
  std::atomic<uint64_t> jobs_{0};
  std::atomic<uint64_t> fanout_jobs_{0};
  std::atomic<uint64_t> inline_jobs_{0};
  std::atomic<uint64_t> tiles_{0};
  std::atomic<uint64_t> helper_tiles_{0};
};

// Tile count for an `nrows`-row raster under the fixed geometry.
inline int64_t TileCount(int64_t nrows) {
  return nrows <= 0 ? 0 : (nrows + TilePool::kTileRows - 1) / TilePool::kTileRows;
}

}  // namespace gaea

#endif  // GAEA_CORE_TILE_POOL_H_
