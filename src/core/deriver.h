// Derivation executor: fires processes on concrete data objects.
//
// For each instantiation the Deriver (1) loads the bound input objects,
// (2) evaluates the TEMPLATE ASSERTIONS — guard rules that "need to hold
// before a process can be applied" — failing the task if any is violated,
// (3) evaluates the MAPPINGS to produce the output object's attributes,
// (4) stores the output object, and (5) records the Task in the task log.
// Failed instantiations are recorded too: a derivation attempt is itself
// experiment history.

#ifndef GAEA_CORE_DERIVER_H_
#define GAEA_CORE_DERIVER_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "core/planner.h"
#include "core/process_registry.h"
#include "core/task.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "types/op_registry.h"
#include "util/env.h"
#include "util/status.h"

namespace gaea {

class Deriver {
 public:
  Deriver(Catalog* catalog, const ProcessRegistry* processes,
          const OperatorRegistry* ops, TaskLog* log)
      : catalog_(catalog), processes_(processes), ops_(ops), log_(log) {}

  // Identity recorded on tasks.
  void set_user(std::string user) { user_ = std::move(user); }
  // Logical clock recorded on tasks (deterministic replays need an
  // injectable clock; the kernel advances it per operation).
  void set_clock(AbsTime now) { now_ = now; }
  // Wall-clock source for task durations; defaults to Env::Default().
  void set_env(Env* env) { env_ = env; }
  // Observability sinks (optional). The profiler receives one sample per
  // executed process and per evaluated operator; the instruments count
  // completed/failed derivations and their latency distribution.
  void set_profiler(obs::Profiler* profiler) { profiler_ = profiler; }
  void set_metrics(obs::Counter* completed, obs::Counter* failed,
                   obs::Histogram* latency_us) {
    derives_completed_ = completed;
    derives_failed_ = failed;
    derive_latency_us_ = latency_us;
  }

  // Fires process `name` (latest version, or `version` > 0) on the given
  // input OIDs. Returns the OID of the newly stored output object.
  StatusOr<Oid> Derive(const std::string& name,
                       const std::map<std::string, std::vector<Oid>>& inputs,
                       int version = 0);

  // Executes a plan; returns the OIDs produced by each step (the last one
  // is the target object).
  StatusOr<std::vector<Oid>> Execute(const DerivationPlan& plan);

  // Re-runs the process/version and inputs of a completed task; returns the
  // new output OID. Reproducibility check: with deterministic operators the
  // new object's attributes equal the original's.
  StatusOr<Oid> Replay(const Task& task);

  // ---- split execution (used by the parallel TaskScheduler) ----
  //
  // One instantiation is split into a compute half (Prepare: load inputs,
  // check assertions, evaluate mappings — pure reads, safe on any thread)
  // and a commit half (Commit: store the output object, append the task
  // record). The scheduler runs Prepare concurrently but commits in plan
  // order, so OID assignment and task-log order stay deterministic.
  struct Prepared {
    Task task;                         // record-in-progress (no outputs yet)
    std::optional<DataObject> output;  // set iff status.ok()
    Status status = Status::OK();      // prepare outcome
    uint64_t start_us = 0;             // Env::NowMicros at Prepare entry
  };

  Prepared Prepare(const ProcessDef& proc,
                   const std::map<std::string, std::vector<Oid>>& inputs) const;

  // Completes `prepared`: on prepare success, inserts the output object and
  // logs the completed task, returning the new OID; on failure (from
  // Prepare or from the insert itself) logs the failed task and returns the
  // error — exactly Derive's externally visible behavior.
  StatusOr<Oid> Commit(Prepared prepared);

 private:
  StatusOr<Oid> DeriveImpl(const ProcessDef& proc,
                           const std::map<std::string, std::vector<Oid>>& inputs);

  Catalog* catalog_;
  const ProcessRegistry* processes_;
  const OperatorRegistry* ops_;
  TaskLog* log_;
  std::string user_ = "gaea";
  AbsTime now_;
  Env* env_ = Env::Default();
  obs::Profiler* profiler_ = nullptr;
  obs::Counter* derives_completed_ = nullptr;
  obs::Counter* derives_failed_ = nullptr;
  obs::Histogram* derive_latency_us_ = nullptr;
};

}  // namespace gaea

#endif  // GAEA_CORE_DERIVER_H_
