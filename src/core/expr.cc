#include "core/expr.h"

#include <sstream>

#include "obs/trace.h"

namespace gaea {

ExprPtr Expr::Literal(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kLiteral));
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Param(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kParam));
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::AttrRef(std::string arg, std::string attr) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kAttrRef));
  e->name_ = std::move(arg);
  e->attr_ = std::move(attr);
  return e;
}

ExprPtr Expr::Card(std::string arg) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kCard));
  e->name_ = std::move(arg);
  return e;
}

ExprPtr Expr::AnyOf(ExprPtr child) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kAnyOf));
  e->children_.push_back(std::move(child));
  return e;
}

ExprPtr Expr::Common(std::vector<ExprPtr> children) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kCommon));
  e->children_ = std::move(children);
  return e;
}

ExprPtr Expr::Common(ExprPtr child) {
  return Common(std::vector<ExprPtr>{std::move(child)});
}

ExprPtr Expr::OpCall(std::string op, std::vector<ExprPtr> args) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kOpCall));
  e->name_ = std::move(op);
  e->children_ = std::move(args);
  return e;
}

StatusOr<TypeId> Expr::TypeCheck(const TypeContext& ctx) const {
  GAEA_ASSIGN_OR_RETURN(FullType full, TypeCheckFull(ctx));
  return full.first;
}

StatusOr<Expr::FullType> Expr::TypeCheckFull(const TypeContext& ctx) const {
  switch (kind_) {
    case Kind::kLiteral:
      return FullType{literal_.type(), TypeId::kNull};
    case Kind::kParam: {
      if (ctx.params == nullptr) {
        return Status::InvalidArgument("parameter '" + name_ +
                                       "' referenced but process has none");
      }
      auto it = ctx.params->find(name_);
      if (it == ctx.params->end()) {
        return Status::NotFound("unknown process parameter: " + name_);
      }
      return FullType{it->second.type(), TypeId::kNull};
    }
    case Kind::kAttrRef: {
      auto it = ctx.args.find(name_);
      if (it == ctx.args.end()) {
        return Status::NotFound("unknown process argument: " + name_);
      }
      const ArgSchema& schema = it->second;
      if (schema.class_def == nullptr) {
        return Status::Internal("argument " + name_ + " has no class schema");
      }
      GAEA_ASSIGN_OR_RETURN(const AttributeDef* attr,
                            schema.class_def->FindAttribute(attr_));
      if (schema.setof) {
        return FullType{TypeId::kList, attr->type};
      }
      return FullType{attr->type, TypeId::kNull};
    }
    case Kind::kCard: {
      auto it = ctx.args.find(name_);
      if (it == ctx.args.end()) {
        return Status::NotFound("unknown process argument: " + name_);
      }
      return FullType{TypeId::kInt, TypeId::kNull};
    }
    case Kind::kAnyOf: {
      if (children_.empty() || children_[0] == nullptr) {
        return Status::Internal("ANYOF node missing child");
      }
      GAEA_ASSIGN_OR_RETURN(FullType child, children_[0]->TypeCheckFull(ctx));
      if (child.first != TypeId::kList) {
        return Status::InvalidArgument(
            "ANYOF needs a SETOF/list operand, got " +
            std::string(TypeIdName(child.first)));
      }
      if (child.second == TypeId::kNull) {
        return Status::InvalidArgument(
            "ANYOF operand element type is not statically known");
      }
      return FullType{child.second, TypeId::kNull};
    }
    case Kind::kCommon: {
      if (children_.empty()) {
        return Status::InvalidArgument("common() needs at least one operand");
      }
      for (const ExprPtr& child : children_) {
        if (child == nullptr) {
          return Status::Internal("common() node missing child");
        }
        GAEA_RETURN_IF_ERROR(child->TypeCheckFull(ctx).status());
      }
      return FullType{TypeId::kBool, TypeId::kNull};
    }
    case Kind::kOpCall: {
      if (ctx.ops == nullptr) {
        return Status::Internal("type context has no operator registry");
      }
      std::vector<TypeId> arg_types;
      arg_types.reserve(children_.size());
      for (size_t i = 0; i < children_.size(); ++i) {
        if (children_[i] == nullptr) {
          return Status::Internal("operator call missing argument node");
        }
        GAEA_ASSIGN_OR_RETURN(FullType child,
                              children_[i]->TypeCheckFull(ctx));
        arg_types.push_back(child.first);
      }
      GAEA_ASSIGN_OR_RETURN(TypeId result,
                            ctx.ops->ResultType(name_, arg_types));
      // Operators returning lists of images (composite, pca, ...) report
      // image elements; this covers every built-in list-returning operator.
      TypeId elem = result == TypeId::kList ? TypeId::kImage : TypeId::kNull;
      return FullType{result, elem};
    }
  }
  return Status::Internal("unhandled expression kind");
}

StatusOr<Value> Expr::Eval(const EvalContext& ctx) const {
  switch (kind_) {
    case Kind::kLiteral:
      return literal_;
    case Kind::kParam: {
      if (ctx.params == nullptr) {
        return Status::InvalidArgument("parameter '" + name_ +
                                       "' referenced but process has none");
      }
      auto it = ctx.params->find(name_);
      if (it == ctx.params->end()) {
        return Status::NotFound("unknown process parameter: " + name_);
      }
      return it->second;
    }
    case Kind::kAttrRef: {
      auto it = ctx.args.find(name_);
      if (it == ctx.args.end()) {
        return Status::NotFound("unbound process argument: " + name_);
      }
      const ArgBinding& binding = it->second;
      if (binding.class_def == nullptr) {
        return Status::Internal("argument " + name_ + " bound without class");
      }
      if (binding.setof) {
        ValueList items;
        items.reserve(binding.objects.size());
        for (const DataObject* obj : binding.objects) {
          if (obj == nullptr) {
            return Status::Internal("null object bound to " + name_);
          }
          GAEA_ASSIGN_OR_RETURN(Value v, obj->Get(*binding.class_def, attr_));
          items.push_back(std::move(v));
        }
        return Value::List(std::move(items));
      }
      if (binding.objects.size() != 1) {
        return Status::InvalidArgument(
            "scalar argument " + name_ + " bound to " +
            std::to_string(binding.objects.size()) + " objects");
      }
      return binding.objects[0]->Get(*binding.class_def, attr_);
    }
    case Kind::kCard: {
      auto it = ctx.args.find(name_);
      if (it == ctx.args.end()) {
        return Status::NotFound("unbound process argument: " + name_);
      }
      return Value::Int(static_cast<int64_t>(it->second.objects.size()));
    }
    case Kind::kAnyOf: {
      GAEA_ASSIGN_OR_RETURN(Value child, children_[0]->Eval(ctx));
      GAEA_ASSIGN_OR_RETURN(const ValueList* items, child.AsList());
      if (items->empty()) {
        return Status::FailedPrecondition("ANYOF over an empty set");
      }
      // Deterministic representative: the first bound object's value, so
      // replaying a task reproduces the identical output.
      return (*items)[0];
    }
    case Kind::kCommon: {
      // Flatten every operand (list or scalar) into one collection.
      ValueList flat;
      for (const ExprPtr& child : children_) {
        GAEA_ASSIGN_OR_RETURN(Value v, child->Eval(ctx));
        if (v.type() == TypeId::kList) {
          GAEA_ASSIGN_OR_RETURN(const ValueList* list_items, v.AsList());
          flat.insert(flat.end(), list_items->begin(), list_items->end());
        } else {
          flat.push_back(std::move(v));
        }
      }
      const ValueList* items = &flat;
      if (items->size() <= 1) return Value::Bool(true);
      // Identical values always satisfy common(); boxes may alternatively
      // pairwise overlap ("the same or overlap", Figure 3).
      bool all_equal = true;
      for (size_t i = 1; i < items->size(); ++i) {
        if (!((*items)[i] == (*items)[0])) {
          all_equal = false;
          break;
        }
      }
      if (all_equal) return Value::Bool(true);
      if ((*items)[0].type() == TypeId::kBox) {
        for (size_t i = 0; i < items->size(); ++i) {
          GAEA_ASSIGN_OR_RETURN(Box a, (*items)[i].AsBox());
          for (size_t j = i + 1; j < items->size(); ++j) {
            GAEA_ASSIGN_OR_RETURN(Box b, (*items)[j].AsBox());
            if (!a.Overlaps(b)) return Value::Bool(false);
          }
        }
        return Value::Bool(true);
      }
      return Value::Bool(false);
    }
    case Kind::kOpCall: {
      if (ctx.ops == nullptr) {
        return Status::Internal("eval context has no operator registry");
      }
      ValueList args;
      args.reserve(children_.size());
      for (const ExprPtr& child : children_) {
        GAEA_ASSIGN_OR_RETURN(Value v, child->Eval(ctx));
        args.push_back(std::move(v));
      }
      // Time the operator invocation itself; nested calls were already
      // timed above, so samples never overlap.
      obs::SpanGuard span("op:" + name_, "operator");
      if (ctx.profiler != nullptr) {
        Env* env = ctx.env != nullptr ? ctx.env : Env::Default();
        uint64_t start = env->NowMicros();
        StatusOr<Value> result = ctx.ops->Invoke(name_, args);
        uint64_t end = env->NowMicros();
        ctx.profiler->Record("op/" + name_, end > start ? end - start : 0);
        return result;
      }
      return ctx.ops->Invoke(name_, args);
    }
  }
  return Status::Internal("unhandled expression kind");
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kLiteral:
      return literal_.ToString();
    case Kind::kParam:
      return "$" + name_;
    case Kind::kAttrRef:
      return name_ + "." + attr_;
    case Kind::kCard:
      return "card(" + name_ + ")";
    case Kind::kAnyOf:
      return "ANYOF " + children_[0]->ToString();
    case Kind::kCommon: {
      std::string out = "common(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ", ";
        out += children_[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kOpCall: {
      std::ostringstream os;
      os << name_ << "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) os << ", ";
        os << children_[i]->ToString();
      }
      os << ")";
      return os.str();
    }
  }
  return "?";
}

bool Expr::StructurallyEquals(const Expr& other) const {
  if (kind_ != other.kind_) return false;
  if (name_ != other.name_ || attr_ != other.attr_) return false;
  if (kind_ == Kind::kLiteral && !(literal_ == other.literal_)) return false;
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->StructurallyEquals(*other.children_[i])) return false;
  }
  return true;
}

void Expr::Serialize(BinaryWriter* w) const {
  w->PutU8(static_cast<uint8_t>(kind_));
  w->PutString(name_);
  w->PutString(attr_);
  literal_.Serialize(w);
  w->PutU32(static_cast<uint32_t>(children_.size()));
  for (const ExprPtr& child : children_) child->Serialize(w);
}

StatusOr<ExprPtr> Expr::Deserialize(BinaryReader* r) {
  GAEA_ASSIGN_OR_RETURN(uint8_t kind_raw, r->GetU8());
  if (kind_raw > static_cast<uint8_t>(Kind::kOpCall)) {
    return Status::Corruption("bad expression kind tag " +
                              std::to_string(kind_raw));
  }
  auto e = std::shared_ptr<Expr>(new Expr(static_cast<Kind>(kind_raw)));
  GAEA_ASSIGN_OR_RETURN(e->name_, r->GetString());
  GAEA_ASSIGN_OR_RETURN(e->attr_, r->GetString());
  GAEA_ASSIGN_OR_RETURN(e->literal_, Value::Deserialize(r));
  GAEA_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
  if (n > 1u << 16) return Status::Corruption("expression fan-out too large");
  e->children_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    GAEA_ASSIGN_OR_RETURN(ExprPtr child, Deserialize(r));
    e->children_.push_back(std::move(child));
  }
  return ExprPtr(e);
}

}  // namespace gaea
