#include "core/process.h"

#include <set>
#include <sstream>

#include "util/string_util.h"

namespace gaea {

Status ProcessDef::AddArg(ProcessArg arg) {
  if (!IsIdentifier(arg.name)) {
    return Status::InvalidArgument("bad argument name: '" + arg.name + "'");
  }
  for (const ProcessArg& existing : args_) {
    if (existing.name == arg.name) {
      return Status::AlreadyExists("duplicate argument: " + arg.name);
    }
  }
  if (arg.min_card < 1) {
    return Status::InvalidArgument("argument " + arg.name +
                                   " needs min_card >= 1");
  }
  if (!arg.setof && arg.min_card != 1) {
    return Status::InvalidArgument("scalar argument " + arg.name +
                                   " must have min_card 1");
  }
  args_.push_back(std::move(arg));
  return Status::OK();
}

Status ProcessDef::AddParam(const std::string& name, Value value) {
  if (!IsIdentifier(name)) {
    return Status::InvalidArgument("bad parameter name: '" + name + "'");
  }
  auto [it, inserted] = params_.emplace(name, std::move(value));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("duplicate parameter: " + name);
  }
  return Status::OK();
}

Status ProcessDef::AddAssertion(ExprPtr expr) {
  if (expr == nullptr) {
    return Status::InvalidArgument("null assertion expression");
  }
  assertions_.push_back(std::move(expr));
  return Status::OK();
}

Status ProcessDef::AddMapping(const std::string& attr, ExprPtr expr) {
  if (expr == nullptr) {
    return Status::InvalidArgument("null mapping expression");
  }
  for (const ProcessMapping& m : mappings_) {
    if (m.attr == attr) {
      return Status::AlreadyExists("duplicate mapping for attribute " + attr);
    }
  }
  mappings_.push_back(ProcessMapping{attr, std::move(expr)});
  return Status::OK();
}

StatusOr<const ProcessArg*> ProcessDef::FindArg(const std::string& name) const {
  for (const ProcessArg& arg : args_) {
    if (arg.name == name) return &arg;
  }
  return Status::NotFound("process " + name_ + " has no argument " + name);
}

Status ProcessDef::Validate(const ClassRegistry& classes,
                            const OperatorRegistry& ops) const {
  if (!IsIdentifier(name_)) {
    return Status::InvalidArgument("bad process name: '" + name_ + "'");
  }
  if (args_.empty()) {
    return Status::InvalidArgument("process " + name_ + " has no arguments");
  }
  GAEA_ASSIGN_OR_RETURN(const ClassDef* out_class,
                        classes.LookupByName(output_class_));

  TypeContext ctx;
  ctx.ops = &ops;
  ctx.params = &params_;
  for (const ProcessArg& arg : args_) {
    GAEA_ASSIGN_OR_RETURN(const ClassDef* arg_class,
                          classes.LookupByName(arg.class_name));
    ctx.args[arg.name] = ArgSchema{arg_class, arg.setof};
  }

  for (const ExprPtr& assertion : assertions_) {
    GAEA_ASSIGN_OR_RETURN(TypeId t, assertion->TypeCheck(ctx));
    if (t != TypeId::kBool) {
      return Status::InvalidArgument(
          "assertion '" + assertion->ToString() + "' has type " +
          TypeIdName(t) + ", must be bool");
    }
  }

  std::set<std::string> mapped;
  for (const ProcessMapping& m : mappings_) {
    GAEA_ASSIGN_OR_RETURN(const AttributeDef* attr,
                          out_class->FindAttribute(m.attr));
    GAEA_ASSIGN_OR_RETURN(TypeId t, m.expr->TypeCheck(ctx));
    if (t != attr->type &&
        !(attr->type == TypeId::kDouble && t == TypeId::kInt)) {
      return Status::InvalidArgument(
          "mapping " + output_class_ + "." + m.attr + " = " +
          m.expr->ToString() + " has type " + TypeIdName(t) + ", attribute is " +
          TypeIdName(attr->type));
    }
    mapped.insert(m.attr);
  }
  for (const AttributeDef& attr : out_class->attributes()) {
    if (mapped.count(attr.name) == 0) {
      return Status::InvalidArgument("process " + name_ +
                                     ": no mapping for output attribute " +
                                     output_class_ + "." + attr.name);
    }
  }
  return Status::OK();
}

bool ProcessDef::StructurallyEquals(const ProcessDef& other) const {
  if (output_class_ != other.output_class_) return false;
  if (args_.size() != other.args_.size() ||
      params_.size() != other.params_.size() ||
      assertions_.size() != other.assertions_.size() ||
      mappings_.size() != other.mappings_.size()) {
    return false;
  }
  for (size_t i = 0; i < args_.size(); ++i) {
    const ProcessArg& a = args_[i];
    const ProcessArg& b = other.args_[i];
    if (a.name != b.name || a.class_name != b.class_name ||
        a.setof != b.setof || a.min_card != b.min_card) {
      return false;
    }
  }
  for (const auto& [name, value] : params_) {
    auto it = other.params_.find(name);
    if (it == other.params_.end() || !(it->second == value)) return false;
  }
  for (size_t i = 0; i < assertions_.size(); ++i) {
    if (!assertions_[i]->StructurallyEquals(*other.assertions_[i])) {
      return false;
    }
  }
  for (size_t i = 0; i < mappings_.size(); ++i) {
    if (mappings_[i].attr != other.mappings_[i].attr ||
        !mappings_[i].expr->StructurallyEquals(*other.mappings_[i].expr)) {
      return false;
    }
  }
  return true;
}

std::string ProcessDef::ToDdl() const {
  std::ostringstream os;
  os << "DEFINE PROCESS " << name_ << "  // version " << version_ << "\n";
  os << "OUTPUT " << output_class_ << "\n";
  os << "ARGUMENT (";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) os << ", ";
    const ProcessArg& arg = args_[i];
    if (arg.setof) os << "SETOF ";
    os << arg.class_name << " " << arg.name;
    if (arg.min_card > 1) os << " MIN " << arg.min_card;
  }
  os << ")\n";
  if (!params_.empty()) {
    os << "PARAMETERS {\n";
    for (const auto& [name, value] : params_) {
      os << "  " << name << " = " << value.ToString() << ";\n";
    }
    os << "}\n";
  }
  os << "TEMPLATE {\n  ASSERTIONS:\n";
  for (const ExprPtr& a : assertions_) {
    os << "    " << a->ToString() << ";\n";
  }
  os << "  MAPPINGS:\n";
  for (const ProcessMapping& m : mappings_) {
    os << "    " << output_class_ << "." << m.attr << " = "
       << m.expr->ToString() << ";\n";
  }
  os << "}";
  return os.str();
}

void ProcessDef::Serialize(BinaryWriter* w) const {
  w->PutString(name_);
  w->PutI32(version_);
  w->PutString(output_class_);
  w->PutString(doc_);
  w->PutU32(static_cast<uint32_t>(args_.size()));
  for (const ProcessArg& arg : args_) {
    w->PutString(arg.name);
    w->PutString(arg.class_name);
    w->PutBool(arg.setof);
    w->PutI32(arg.min_card);
  }
  w->PutU32(static_cast<uint32_t>(params_.size()));
  for (const auto& [name, value] : params_) {
    w->PutString(name);
    value.Serialize(w);
  }
  w->PutU32(static_cast<uint32_t>(assertions_.size()));
  for (const ExprPtr& a : assertions_) a->Serialize(w);
  w->PutU32(static_cast<uint32_t>(mappings_.size()));
  for (const ProcessMapping& m : mappings_) {
    w->PutString(m.attr);
    m.expr->Serialize(w);
  }
}

StatusOr<ProcessDef> ProcessDef::Deserialize(BinaryReader* r) {
  ProcessDef def;
  GAEA_ASSIGN_OR_RETURN(def.name_, r->GetString());
  GAEA_ASSIGN_OR_RETURN(def.version_, r->GetI32());
  GAEA_ASSIGN_OR_RETURN(def.output_class_, r->GetString());
  GAEA_ASSIGN_OR_RETURN(def.doc_, r->GetString());
  GAEA_ASSIGN_OR_RETURN(uint32_t nargs, r->GetU32());
  for (uint32_t i = 0; i < nargs; ++i) {
    ProcessArg arg;
    GAEA_ASSIGN_OR_RETURN(arg.name, r->GetString());
    GAEA_ASSIGN_OR_RETURN(arg.class_name, r->GetString());
    GAEA_ASSIGN_OR_RETURN(arg.setof, r->GetBool());
    GAEA_ASSIGN_OR_RETURN(arg.min_card, r->GetI32());
    def.args_.push_back(std::move(arg));
  }
  GAEA_ASSIGN_OR_RETURN(uint32_t nparams, r->GetU32());
  for (uint32_t i = 0; i < nparams; ++i) {
    GAEA_ASSIGN_OR_RETURN(std::string name, r->GetString());
    GAEA_ASSIGN_OR_RETURN(Value value, Value::Deserialize(r));
    def.params_.emplace(std::move(name), std::move(value));
  }
  GAEA_ASSIGN_OR_RETURN(uint32_t nasserts, r->GetU32());
  for (uint32_t i = 0; i < nasserts; ++i) {
    GAEA_ASSIGN_OR_RETURN(ExprPtr e, Expr::Deserialize(r));
    def.assertions_.push_back(std::move(e));
  }
  GAEA_ASSIGN_OR_RETURN(uint32_t nmaps, r->GetU32());
  for (uint32_t i = 0; i < nmaps; ++i) {
    ProcessMapping m;
    GAEA_ASSIGN_OR_RETURN(m.attr, r->GetString());
    GAEA_ASSIGN_OR_RETURN(m.expr, Expr::Deserialize(r));
    def.mappings_.push_back(std::move(m));
  }
  return def;
}

}  // namespace gaea
