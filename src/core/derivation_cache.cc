#include "core/derivation_cache.h"

#include "storage/journal.h"  // Crc32
#include "util/serialize.h"

namespace gaea {

std::string DerivationCache::MakeKey(
    const ProcessDef& def,
    const std::map<std::string, std::vector<Oid>>& inputs) {
  // Parameters are folded in as a CRC of their serialized form: "the same
  // derivation method with different parameters represents different
  // processes" (§2.1.2).
  BinaryWriter w;
  w.PutU32(static_cast<uint32_t>(def.params().size()));
  for (const auto& [name, value] : def.params()) {
    w.PutString(name);
    value.Serialize(&w);
  }
  uint32_t params_crc = Crc32(w.buffer().data(), w.buffer().size());

  std::string key = def.name();
  key += '#';
  key += std::to_string(def.version());
  key += '#';
  key += std::to_string(params_crc);
  for (const auto& [arg, oids] : inputs) {  // std::map: lexicographic order
    key += '#';
    key += arg;
    key += '=';
    for (size_t i = 0; i < oids.size(); ++i) {
      if (i > 0) key += ',';
      key += std::to_string(oids[i]);
    }
  }
  return key;
}

std::optional<Oid> DerivationCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_++;
    return std::nullopt;
  }
  hits_++;
  entries_.splice(entries_.begin(), entries_, it->second);
  return entries_.front().output;
}

std::optional<Oid> DerivationCache::Peek(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  return it->second->output;
}

void DerivationCache::Insert(const std::string& key, Oid output) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->output = output;
    entries_.splice(entries_.begin(), entries_, it->second);
    return;
  }
  if (capacity_ == 0) return;
  while (entries_.size() >= capacity_) {
    index_.erase(entries_.back().key);
    entries_.pop_back();
    evictions_++;
  }
  entries_.push_front(Entry{key, output});
  index_[key] = entries_.begin();
}

void DerivationCache::InvalidateOutput(Oid oid) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->output == oid) {
      index_.erase(it->key);
      it = entries_.erase(it);
      invalidations_++;
    } else {
      ++it;
    }
  }
}

void DerivationCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  invalidations_ += entries_.size();
  entries_.clear();
  index_.clear();
}

DerivationCache::Stats DerivationCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.invalidations = invalidations_;
  s.entries = entries_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace gaea
