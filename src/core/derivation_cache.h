// Memoizing derivation cache (the "derived data as cached computation" view
// of the paper, §2.1.4): "object classes which do not represent base data
// are solely defined by their derivation process", so the output of a task
// is fully determined by (process name, process version, parameter values,
// input OIDs). Repeating such a task must reproduce the same objects — which
// makes task outputs safe to memoize.
//
// Invalidation rules:
//   * Process redefinition NEVER invalidates: editing a process creates a
//     new version ("in no case is the old process overwritten"), and the
//     version is part of the key, so entries for old versions stay valid.
//   * Entries are dropped when their output object is evicted/deleted from
//     the catalog (InvalidateOutput) and under capacity pressure (LRU).
//
// Key shape: name '#' version '#' crc32(serialized params) '#' then each
// argument as name '=' comma-joined OIDs, arguments in lexicographic order
// (ProcessDef stores params and the task stores inputs in std::map order,
// so this is canonical). OIDs within one argument keep their binding order:
// an ANYOF argument consumes the *first* element, so [5,9] and [9,5] are
// semantically different bindings and must not alias.
//
// Thread-safe; all operations take one internal mutex.

#ifndef GAEA_CORE_DERIVATION_CACHE_H_
#define GAEA_CORE_DERIVATION_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/process.h"
#include "storage/object_store.h"

namespace gaea {

class DerivationCache {
 public:
  explicit DerivationCache(size_t capacity = 1024) : capacity_(capacity) {}

  DerivationCache(const DerivationCache&) = delete;
  DerivationCache& operator=(const DerivationCache&) = delete;

  // Canonical memo key for instantiating `def` with `inputs`.
  static std::string MakeKey(
      const ProcessDef& def,
      const std::map<std::string, std::vector<Oid>>& inputs);

  // The memoized output OID, or nullopt (counts a hit/miss).
  std::optional<Oid> Lookup(const std::string& key);

  // Like Lookup but touches neither the stats nor the LRU order. Used by
  // the scheduler's commit path to deduplicate in-flight requests without
  // double-counting the compute-time lookup.
  std::optional<Oid> Peek(const std::string& key) const;

  // Memoizes key -> output. An existing entry is refreshed (the derivation
  // is deterministic, so the value can only be identical).
  void Insert(const std::string& key, Oid output);

  // Drops every entry whose output is `oid` (object evicted or deleted).
  void InvalidateOutput(Oid oid);

  // Drops everything (counts toward invalidations).
  void Clear();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;      // capacity (LRU) evictions
    uint64_t invalidations = 0;  // entries dropped via InvalidateOutput/Clear
    size_t entries = 0;
    size_t capacity = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    Oid output = kInvalidOid;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  // LRU list (front = most recent) + key index into it.
  std::list<Entry> entries_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t invalidations_ = 0;
};

}  // namespace gaea

#endif  // GAEA_CORE_DERIVATION_CACHE_H_
