// Petri-net model of class derivation (paper §2.1.6).
//
// "Every non-primitive class ... corresponds to a place in a PN, and every
// process corresponds to a transition. Tokens in every place represent the
// data objects needed for the instantiation of a process." With the paper's
// three modifications:
//   1. tokens are NOT consumed when a transition fires (data objects are
//      permanent and reusable);
//   2. the input arc count is a minimum threshold — more tokens than the
//      threshold may be used (PCA needs >= 2 images);
//   3. transitions carry guard assertions over the tokens; the abstract net
//      tracks token *counts* and leaves guard evaluation to the object-level
//      planner, which binds concrete objects.
//
// Because firing never removes tokens, markings grow monotonically; class
// reachability is therefore a fixpoint closure rather than a general
// marking-space search, and the backward query "given a final marking, find
// the initial marking which can lead to it" is answered by backward
// chaining over producers.

#ifndef GAEA_CORE_PETRI_H_
#define GAEA_CORE_PETRI_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "catalog/class_def.h"
#include "core/process_registry.h"
#include "util/status.h"

namespace gaea {

class DerivationNet {
 public:
  // A transition: one (latest-version) process.
  struct Transition {
    std::string process_name;
    int process_version = 1;
    // Input places with firing thresholds (min_card per argument; the same
    // class may appear in several arguments — thresholds accumulate).
    std::vector<std::pair<ClassId, int>> inputs;
    ClassId output = kInvalidClassId;
  };

  // Token counts per place. Absent place = zero tokens.
  using Marking = std::map<ClassId, int64_t>;

  // Builds the net from every class (place) and the latest version of every
  // process (transition).
  static StatusOr<DerivationNet> Build(const ClassRegistry& classes,
                                       const ProcessRegistry& processes);

  const std::vector<Transition>& transitions() const { return transitions_; }
  const std::set<ClassId>& places() const { return places_; }

  // Transitions whose output place is `class_id`.
  std::vector<const Transition*> Producers(ClassId class_id) const;

  // Threshold check: every input place holds at least its threshold.
  static bool Enabled(const Transition& t, const Marking& marking);

  // Fires `t` (non-consuming): adds one token to the output place.
  static void Fire(const Transition& t, Marking* marking);

  // Forward closure: all places that hold or can come to hold >= 1 token.
  std::set<ClassId> ReachableClasses(const Marking& initial) const;

  // Can at least one object of `target` be derived (or is one present)?
  bool CanDerive(ClassId target, const Marking& initial) const;

  // Backward chaining: an ordered firing sequence that raises `target` to
  // `needed` tokens starting from `marking`. Producers are tried in
  // registration order; transitions already "in progress" up the recursion
  // are skipped, which terminates self-derivations such as interpolation
  // (C -> C). Returns kUnderivable when no sequence exists.
  StatusOr<std::vector<const Transition*>> PlanFiringSequence(
      ClassId target, int needed, Marking marking) const;

  // The paper's backward query: the initial base-class marking that leads
  // to one token in `target`, assuming unlimited base data availability.
  // Returns the per-base-class token requirement of the chosen derivation.
  StatusOr<Marking> RequiredInitialMarking(ClassId target) const;

  // Graphviz rendering of the net (places as circles, transitions as bars).
  std::string ToDot(const ClassRegistry& classes) const;

 private:
  StatusOr<std::vector<const Transition*>> PlanImpl(
      ClassId target, int needed, Marking* marking,
      std::set<ClassId>* stack) const;

  std::set<ClassId> places_;
  std::set<ClassId> base_places_;  // classes with no producing transition
  std::vector<Transition> transitions_;
  std::map<ClassId, std::vector<size_t>> producers_;
};

}  // namespace gaea

#endif  // GAEA_CORE_PETRI_H_
