// Dependency-driven parallel derivation scheduler (the paper's compound-
// process expansion, Figure 5, executed concurrently).
//
// The scheduler takes a DerivationPlan — primitive process instantiations
// whose inputs are either stored OIDs or outputs of earlier steps — and
// runs independent steps on a std::thread pool. Each step is split along
// Deriver's Prepare/Commit seam:
//
//   * Prepare (load inputs, check assertions, evaluate mappings) runs on
//     any worker thread, concurrently with other steps;
//   * Commit (store the output object, append the task record) happens in
//     strict plan order through a reorder buffer, so OID assignment and
//     task-log order are byte-identical to a single-threaded run no matter
//     how many workers raced the prepares.
//
// Workers never block waiting for their commit turn: a finished prepare is
// deposited into the buffer and the worker moves on; whichever worker
// deposits the next-in-order item drains everything that became committable.
//
// When a DerivationCache is attached (use_cache), each step consults it
// before preparing (key: process, version, params, input OIDs — see
// derivation_cache.h). The commit-time state is authoritative: a compute-
// time hit is re-validated against the catalog at commit (recomputing
// inline if the object vanished), and a compute-time miss re-checks the
// cache at commit so duplicate in-flight requests converge on one object.
//
// A failed step poisons its transitive dependents (they are reported
// failed, and never run); independent steps still execute — the scheduler
// serves batches from many experiments, and one experiment's failure must
// not cancel another's work.

#ifndef GAEA_CORE_SCHEDULER_H_
#define GAEA_CORE_SCHEDULER_H_

#include <map>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "core/compound_process.h"
#include "core/derivation_cache.h"
#include "core/deriver.h"
#include "core/planner.h"
#include "core/process_registry.h"
#include "util/status.h"

namespace gaea {

// One batched derivation request; inputs are stored OIDs.
struct DeriveRequest {
  std::string process;
  int version = 0;  // 0 = latest
  std::map<std::string, std::vector<Oid>> inputs;
};

// Outcome of one plan step / batch request.
struct DeriveOutcome {
  Status status = Status::OK();
  Oid oid = kInvalidOid;
  bool cache_hit = false;
};

class TaskScheduler {
 public:
  struct Options {
    int threads = 1;       // worker threads (<= 1 runs on the caller thread)
    bool use_cache = true; // consult/populate the derivation cache
  };

  // `cache` may be null (equivalent to use_cache = false).
  TaskScheduler(Deriver* deriver, Catalog* catalog,
                const ProcessRegistry* processes, DerivationCache* cache,
                Options options)
      : deriver_(deriver),
        catalog_(catalog),
        processes_(processes),
        cache_(options.use_cache ? cache : nullptr),
        options_(options) {}

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  // Executes `plan`, returning one outcome per step in plan order. The call
  // itself fails only on a malformed plan (forward/self step references);
  // per-step failures are reported in the outcomes.
  StatusOr<std::vector<DeriveOutcome>> Execute(const DerivationPlan& plan);

  // Executes independent requests (a batch has no inter-step references).
  StatusOr<std::vector<DeriveOutcome>> RunBatch(
      const std::vector<DeriveRequest>& requests);

  // Expands `compound` into its primitive-stage DAG and executes it;
  // returns the output stage's object. First failing stage's status (in
  // stage order) is returned on failure.
  StatusOr<Oid> RunCompound(
      const CompoundProcessDef& compound,
      const std::map<std::string, std::vector<Oid>>& external_inputs);

 private:
  struct StepItem;  // reorder-buffer entry (scheduler.cc)

  StepItem ComputeStep(const PlanStep& step,
                       std::map<std::string, std::vector<Oid>> inputs) const;

  Deriver* deriver_;
  Catalog* catalog_;
  const ProcessRegistry* processes_;
  DerivationCache* cache_;  // null when caching is off
  Options options_;
};

}  // namespace gaea

#endif  // GAEA_CORE_SCHEDULER_H_
