#include "core/deriver.h"

#include "obs/trace.h"

namespace gaea {

StatusOr<Oid> Deriver::Derive(
    const std::string& name,
    const std::map<std::string, std::vector<Oid>>& inputs, int version) {
  const ProcessDef* proc;
  if (version > 0) {
    GAEA_ASSIGN_OR_RETURN(proc, processes_->Version(name, version));
  } else {
    GAEA_ASSIGN_OR_RETURN(proc, processes_->Latest(name));
  }
  return DeriveImpl(*proc, inputs);
}

StatusOr<Oid> Deriver::DeriveImpl(
    const ProcessDef& proc,
    const std::map<std::string, std::vector<Oid>>& inputs) {
  return Commit(Prepare(proc, inputs));
}

Deriver::Prepared Deriver::Prepare(
    const ProcessDef& proc,
    const std::map<std::string, std::vector<Oid>>& inputs) const {
  obs::SpanGuard span("prepare:" + proc.name(), "derive");
  Prepared prepared;
  prepared.start_us = env_->NowMicros();

  // Prepare a task record up front so failures are logged too.
  Task& task = prepared.task;
  task.process_name = proc.name();
  task.process_version = proc.version();
  task.inputs = inputs;
  task.user = user_;
  task.started = now_;

  auto fail = [&](Status status) -> Prepared&& {
    prepared.status = std::move(status);
    return std::move(prepared);
  };

  // Load and bind the input objects. Objects are kept alive in `loaded`.
  std::vector<std::unique_ptr<DataObject>> loaded;
  EvalContext ctx;
  ctx.ops = ops_;
  ctx.params = &proc.params();
  ctx.profiler = profiler_;
  ctx.env = env_;
  for (const ProcessArg& arg : proc.args()) {
    auto it = inputs.find(arg.name);
    if (it == inputs.end()) {
      return fail(Status::InvalidArgument("process " + proc.name() +
                                          ": argument " + arg.name +
                                          " not bound"));
    }
    if (static_cast<int>(it->second.size()) < arg.min_card) {
      return fail(Status::FailedPrecondition(
          "process " + proc.name() + ": argument " + arg.name + " needs >= " +
          std::to_string(arg.min_card) + " objects, got " +
          std::to_string(it->second.size())));
    }
    if (!arg.setof && it->second.size() != 1) {
      return fail(Status::InvalidArgument(
          "process " + proc.name() + ": scalar argument " + arg.name +
          " bound to " + std::to_string(it->second.size()) + " objects"));
    }
    auto arg_class = catalog_->classes().LookupByName(arg.class_name);
    if (!arg_class.ok()) return fail(arg_class.status());
    ArgBinding binding;
    binding.class_def = *arg_class;
    binding.setof = arg.setof;
    for (Oid oid : it->second) {
      auto obj = catalog_->GetObject(oid);
      if (!obj.ok()) return fail(obj.status());
      if (obj->class_id() != (*arg_class)->id()) {
        return fail(Status::InvalidArgument(
            "object " + std::to_string(oid) + " is not of class " +
            arg.class_name));
      }
      loaded.push_back(std::make_unique<DataObject>(*std::move(obj)));
      binding.objects.push_back(loaded.back().get());
    }
    ctx.args[arg.name] = std::move(binding);
  }
  // Reject bindings for arguments the process does not declare.
  for (const auto& [arg_name, oids] : inputs) {
    if (!proc.FindArg(arg_name).ok()) {
      return fail(Status::InvalidArgument("process " + proc.name() +
                                          " has no argument " + arg_name));
    }
  }

  // Check the guard assertions.
  for (const ExprPtr& assertion : proc.assertions()) {
    auto result = assertion->Eval(ctx);
    if (!result.ok()) return fail(result.status());
    auto truth = result->AsBool();
    if (!truth.ok()) return fail(truth.status());
    if (!*truth) {
      return fail(Status::FailedPrecondition(
          "process " + proc.name() + ": assertion violated: " +
          assertion->ToString()));
    }
  }

  // Evaluate the mappings into the output object.
  auto out_class = catalog_->classes().LookupByName(proc.output_class());
  if (!out_class.ok()) return fail(out_class.status());
  DataObject output(**out_class);
  for (const ProcessMapping& mapping : proc.mappings()) {
    auto value = mapping.expr->Eval(ctx);
    if (!value.ok()) {
      return fail(Status(value.status().code(),
                         "mapping " + proc.output_class() + "." +
                             mapping.attr + ": " + value.status().message()));
    }
    Status set = output.Set(**out_class, mapping.attr, *std::move(value));
    if (!set.ok()) return fail(set);
  }

  prepared.output = std::move(output);
  return prepared;
}

StatusOr<Oid> Deriver::Commit(Prepared prepared) {
  obs::SpanGuard span("commit:" + prepared.task.process_name, "derive");
  Task& task = prepared.task;
  auto finish_us = [&prepared, this] {
    uint64_t now = env_->NowMicros();
    return now > prepared.start_us ? now - prepared.start_us : 0;
  };
  auto fail = [&](Status status) -> Status {
    task.status = TaskStatus::kFailed;
    task.error = status.ToString();
    task.duration_us = static_cast<int64_t>(finish_us());
    if (derives_failed_ != nullptr) derives_failed_->Inc();
    // Best effort: the original error dominates a logging error.
    (void)log_->Append(std::move(task));
    return status;
  };

  if (!prepared.status.ok()) return fail(std::move(prepared.status));

  auto oid = catalog_->InsertObject(*std::move(prepared.output));
  if (!oid.ok()) return fail(oid.status());

  task.outputs.push_back(*oid);
  task.duration_us = static_cast<int64_t>(finish_us());
  if (profiler_ != nullptr) {
    profiler_->Record("process/" + task.process_name,
                      static_cast<uint64_t>(task.duration_us));
  }
  if (derives_completed_ != nullptr) derives_completed_->Inc();
  if (derive_latency_us_ != nullptr) {
    derive_latency_us_->Observe(task.duration_us);
  }
  GAEA_RETURN_IF_ERROR(log_->Append(std::move(task)).status());
  return *oid;
}

StatusOr<std::vector<Oid>> Deriver::Execute(const DerivationPlan& plan) {
  std::vector<Oid> produced;
  produced.reserve(plan.steps.size());
  for (const PlanStep& step : plan.steps) {
    std::map<std::string, std::vector<Oid>> inputs;
    for (const auto& [arg, bound_inputs] : step.bindings) {
      std::vector<Oid>& oids = inputs[arg];
      for (const BoundInput& input : bound_inputs) {
        if (input.kind == BoundInput::Kind::kStored) {
          oids.push_back(input.oid);
        } else {
          if (input.step_index >= produced.size()) {
            return Status::Internal(
                "plan step references not-yet-executed step " +
                std::to_string(input.step_index));
          }
          oids.push_back(produced[input.step_index]);
        }
      }
    }
    GAEA_ASSIGN_OR_RETURN(
        Oid oid, Derive(step.process_name, inputs, step.process_version));
    produced.push_back(oid);
  }
  return produced;
}

StatusOr<Oid> Deriver::Replay(const Task& task) {
  if (task.status != TaskStatus::kCompleted) {
    return Status::FailedPrecondition("cannot replay failed task #" +
                                      std::to_string(task.id));
  }
  if (task.process_version < 1) {
    // version 0 = synthetic interpolation (Interpolator::Replay);
    // version -1 = external non-applicative procedure (paper §5).
    return Status::NotSupported(
        "task #" + std::to_string(task.id) + " (" + task.process_name +
        ") was not produced by a template-defined process and cannot be "
        "replayed by the deriver");
  }
  return Derive(task.process_name, task.inputs, task.process_version);
}

}  // namespace gaea
