// Lineage (derivation-history) queries over the task log.
//
// The paper's derivation diagrams "can be used to 1) browse data following
// their derivation relationships, 2) compare derivation procedures and
// their resulting data classes, and 3) derive data not stored in the
// database." This module implements (1) and (2) at the data-object level:
// ancestor/descendant traversal, full derivation trees, procedure
// comparison (the §1 scenario: NDVI change by subtraction vs division),
// and Graphviz rendering of derivation histories.

#ifndef GAEA_CORE_LINEAGE_H_
#define GAEA_CORE_LINEAGE_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/process_registry.h"
#include "core/task.h"
#include "util/status.h"

namespace gaea {

// One node of a derivation tree: the object plus (for derived objects) the
// producing task and the subtrees of its inputs.
struct DerivationNode {
  Oid oid = kInvalidOid;
  const Task* task = nullptr;  // null for base data
  std::vector<std::unique_ptr<DerivationNode>> inputs;

  // Depth of the derivation chain below this node (0 for base data).
  int Depth() const;
  // Total number of tasks in the tree.
  int TaskCount() const;
};

// Result of comparing two objects' derivation procedures.
struct DerivationComparison {
  bool same_procedure = false;  // identical process-version chains
  // Human-readable explanation of the first divergence (or sameness).
  std::string explanation;
  // Per-object linearized process chains "name:vN" (root first).
  std::vector<std::string> chain_a;
  std::vector<std::string> chain_b;
};

class LineageGraph {
 public:
  explicit LineageGraph(const TaskLog* log) : log_(log) {}

  // All transitive input objects of `oid` (excluding itself).
  std::set<Oid> Ancestors(Oid oid) const;

  // All objects transitively derived from `oid` (excluding itself).
  std::set<Oid> Descendants(Oid oid) const;

  // True when `oid` has no producing task.
  bool IsBase(Oid oid) const;

  // The base objects the derivation of `oid` ultimately rests on.
  std::set<Oid> BaseSources(Oid oid) const;

  // Full derivation tree of `oid`.
  StatusOr<std::unique_ptr<DerivationNode>> Tree(Oid oid) const;

  // The chain of (process name, version) labels from `oid` back to base
  // data, one entry per task along the deepest path, nearest first.
  StatusOr<std::vector<std::string>> ProcessChain(Oid oid) const;

  // Compares how two objects were derived: same chain of process versions
  // or not, with an explanation. The resolution of the paper's two-
  // scientists scenario.
  StatusOr<DerivationComparison> Compare(Oid a, Oid b) const;

  // Graphviz dot rendering of the derivation tree of `oid`.
  StatusOr<std::string> ToDot(Oid oid) const;

 private:
  Status BuildTree(Oid oid, int depth_budget,
                   std::unique_ptr<DerivationNode>* out) const;

  const TaskLog* log_;
};

}  // namespace gaea

#endif  // GAEA_CORE_LINEAGE_H_
