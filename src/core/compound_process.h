// Compound processes (paper §2.1.4, Figure 5).
//
// "A compound process is a network of intercommunicating processes. ...
// A compound process is merely an abstraction which can be used to simplify
// a derivation relationship between object classes. Thus a compound process
// cannot be directly applied, but must be expanded into its primitive
// processes before actual derivation takes place."
//
// A CompoundProcessDef wires named stages (each invoking a primitive
// process) to the compound's input classes or to other stages' outputs.
// Expand() validates the wiring against the registries and returns the
// stages in dependency (execution) order — the expansion the planner feeds
// into the deriver.

#ifndef GAEA_CORE_COMPOUND_PROCESS_H_
#define GAEA_CORE_COMPOUND_PROCESS_H_

#include <map>
#include <string>
#include <vector>

#include "catalog/class_def.h"
#include "core/process_registry.h"
#include "util/status.h"

namespace gaea {

// Where a stage argument's objects come from.
struct StageInput {
  enum class Source { kExternal, kStage };
  Source source = Source::kExternal;
  // kExternal: name of a compound-level input binding.
  // kStage: name of the producing stage (its output objects flow in).
  std::string name;
};

// One stage: an invocation of a primitive process.
struct CompoundStage {
  std::string name;          // stage label, e.g. "classify_before"
  std::string process_name;  // primitive process to run
  // Binding for each argument of the process, keyed by argument name.
  std::map<std::string, StageInput> bindings;
};

class CompoundProcessDef {
 public:
  CompoundProcessDef() = default;
  CompoundProcessDef(std::string name, std::string output_stage)
      : name_(std::move(name)), output_stage_(std::move(output_stage)) {}

  const std::string& name() const { return name_; }
  const std::string& output_stage() const { return output_stage_; }
  void set_output_stage(std::string stage) { output_stage_ = std::move(stage); }

  // Declares an external input binding: objects of `class_name` supplied by
  // the caller under `binding`.
  Status AddExternalInput(const std::string& binding,
                          const std::string& class_name);

  Status AddStage(CompoundStage stage);

  const std::vector<CompoundStage>& stages() const { return stages_; }
  const std::map<std::string, std::string>& external_inputs() const {
    return external_inputs_;
  }

  // Validates wiring and class compatibility, then returns the stages in
  // execution order ("expanded into its primitive processes").
  StatusOr<std::vector<const CompoundStage*>> Expand(
      const ClassRegistry& classes, const ProcessRegistry& processes) const;

  std::string ToDdl() const;

 private:
  std::string name_;
  std::string output_stage_;
  std::map<std::string, std::string> external_inputs_;  // binding -> class
  std::vector<CompoundStage> stages_;
};

// Builds the Figure 5 land-change-detection compound process over the given
// class/process names: two classification stages feeding a change-detection
// stage.
CompoundProcessDef BuildFigure5LandChange(
    const std::string& classify_process, const std::string& change_process,
    const std::string& before_binding, const std::string& after_binding);

}  // namespace gaea

#endif  // GAEA_CORE_COMPOUND_PROCESS_H_
