#include "core/lineage.h"

#include <algorithm>
#include <deque>
#include <sstream>

namespace gaea {

int DerivationNode::Depth() const {
  int best = 0;
  for (const auto& input : inputs) {
    best = std::max(best, 1 + input->Depth());
  }
  return task == nullptr ? 0 : best;
}

int DerivationNode::TaskCount() const {
  int n = task != nullptr ? 1 : 0;
  for (const auto& input : inputs) n += input->TaskCount();
  return n;
}

std::set<Oid> LineageGraph::Ancestors(Oid oid) const {
  std::set<Oid> out;
  std::deque<Oid> frontier{oid};
  while (!frontier.empty()) {
    Oid cur = frontier.front();
    frontier.pop_front();
    auto producer = log_->Producer(cur);
    if (!producer.ok()) continue;
    for (Oid input : (*producer)->AllInputs()) {
      if (out.insert(input).second) frontier.push_back(input);
    }
  }
  return out;
}

std::set<Oid> LineageGraph::Descendants(Oid oid) const {
  std::set<Oid> out;
  std::deque<Oid> frontier{oid};
  while (!frontier.empty()) {
    Oid cur = frontier.front();
    frontier.pop_front();
    for (const Task* task : log_->Consumers(cur)) {
      for (Oid output : task->outputs) {
        if (out.insert(output).second) frontier.push_back(output);
      }
    }
  }
  return out;
}

bool LineageGraph::IsBase(Oid oid) const {
  return !log_->Producer(oid).ok();
}

std::set<Oid> LineageGraph::BaseSources(Oid oid) const {
  std::set<Oid> out;
  if (IsBase(oid)) {
    out.insert(oid);
    return out;
  }
  for (Oid ancestor : Ancestors(oid)) {
    if (IsBase(ancestor)) out.insert(ancestor);
  }
  return out;
}

Status LineageGraph::BuildTree(Oid oid, int depth_budget,
                               std::unique_ptr<DerivationNode>* out) const {
  if (depth_budget <= 0) {
    return Status::Internal(
        "derivation tree deeper than 10000 levels: cycle in task log?");
  }
  auto node = std::make_unique<DerivationNode>();
  node->oid = oid;
  auto producer = log_->Producer(oid);
  if (producer.ok()) {
    node->task = *producer;
    for (Oid input : (*producer)->AllInputs()) {
      std::unique_ptr<DerivationNode> child;
      GAEA_RETURN_IF_ERROR(BuildTree(input, depth_budget - 1, &child));
      node->inputs.push_back(std::move(child));
    }
  }
  *out = std::move(node);
  return Status::OK();
}

StatusOr<std::unique_ptr<DerivationNode>> LineageGraph::Tree(Oid oid) const {
  std::unique_ptr<DerivationNode> root;
  GAEA_RETURN_IF_ERROR(BuildTree(oid, 10000, &root));
  return root;
}

StatusOr<std::vector<std::string>> LineageGraph::ProcessChain(Oid oid) const {
  std::vector<std::string> chain;
  Oid cur = oid;
  for (int guard = 0; guard < 10000; ++guard) {
    auto producer = log_->Producer(cur);
    if (!producer.ok()) return chain;
    const Task* task = *producer;
    chain.push_back(task->process_name + ":v" +
                    std::to_string(task->process_version));
    // Follow the deepest input path.
    std::vector<Oid> ins = task->AllInputs();
    if (ins.empty()) return chain;
    Oid deepest = ins[0];
    int best_depth = -1;
    for (Oid input : ins) {
      GAEA_ASSIGN_OR_RETURN(std::unique_ptr<DerivationNode> t, Tree(input));
      int d = t->Depth();
      if (d > best_depth) {
        best_depth = d;
        deepest = input;
      }
    }
    cur = deepest;
  }
  return Status::Internal("process chain longer than 10000: cycle?");
}

StatusOr<DerivationComparison> LineageGraph::Compare(Oid a, Oid b) const {
  DerivationComparison cmp;
  GAEA_ASSIGN_OR_RETURN(cmp.chain_a, ProcessChain(a));
  GAEA_ASSIGN_OR_RETURN(cmp.chain_b, ProcessChain(b));
  if (cmp.chain_a == cmp.chain_b) {
    cmp.same_procedure = true;
    cmp.explanation = cmp.chain_a.empty()
                          ? "both objects are base data"
                          : "identical derivation chains (" +
                                cmp.chain_a.front() + ", depth " +
                                std::to_string(cmp.chain_a.size()) + ")";
    return cmp;
  }
  cmp.same_procedure = false;
  size_t n = std::min(cmp.chain_a.size(), cmp.chain_b.size());
  size_t i = 0;
  while (i < n && cmp.chain_a[i] == cmp.chain_b[i]) ++i;
  std::ostringstream os;
  if (i < cmp.chain_a.size() && i < cmp.chain_b.size()) {
    os << "derivations diverge at step " << i + 1 << ": " << cmp.chain_a[i]
       << " vs " << cmp.chain_b[i];
  } else {
    os << "derivation depths differ: " << cmp.chain_a.size() << " vs "
       << cmp.chain_b.size() << " steps";
  }
  cmp.explanation = os.str();
  return cmp;
}

StatusOr<std::string> LineageGraph::ToDot(Oid oid) const {
  GAEA_ASSIGN_OR_RETURN(std::unique_ptr<DerivationNode> root, Tree(oid));
  std::ostringstream os;
  os << "digraph lineage {\n  rankdir=BT;\n";
  std::set<Oid> object_nodes;
  std::set<TaskId> task_nodes;
  // Iterative walk to emit nodes/edges once each.
  std::deque<const DerivationNode*> frontier{root.get()};
  while (!frontier.empty()) {
    const DerivationNode* node = frontier.front();
    frontier.pop_front();
    if (object_nodes.insert(node->oid).second) {
      os << "  o" << node->oid << " [shape=ellipse,label=\"obj " << node->oid
         << (node->task == nullptr ? " (base)" : "") << "\"];\n";
    }
    if (node->task != nullptr && task_nodes.insert(node->task->id).second) {
      os << "  t" << node->task->id << " [shape=box,label=\""
         << node->task->process_name << " v" << node->task->process_version
         << "\"];\n";
      os << "  t" << node->task->id << " -> o" << node->oid << ";\n";
      for (const auto& input : node->inputs) {
        os << "  o" << input->oid << " -> t" << node->task->id << ";\n";
      }
    }
    for (const auto& input : node->inputs) frontier.push_back(input.get());
  }
  os << "}\n";
  return os.str();
}

}  // namespace gaea
