#include "core/petri.h"

#include <sstream>

namespace gaea {

StatusOr<DerivationNet> DerivationNet::Build(
    const ClassRegistry& classes, const ProcessRegistry& processes) {
  DerivationNet net;
  for (const ClassDef* def : classes.List()) {
    net.places_.insert(def->id());
  }
  for (const ProcessDef* proc : processes.ListLatest()) {
    Transition t;
    t.process_name = proc->name();
    t.process_version = proc->version();
    GAEA_ASSIGN_OR_RETURN(const ClassDef* out_class,
                          classes.LookupByName(proc->output_class()));
    t.output = out_class->id();
    // Accumulate thresholds per input class across arguments.
    std::map<ClassId, int> thresholds;
    for (const ProcessArg& arg : proc->args()) {
      GAEA_ASSIGN_OR_RETURN(const ClassDef* arg_class,
                            classes.LookupByName(arg.class_name));
      thresholds[arg_class->id()] += arg.min_card;
    }
    for (const auto& [class_id, threshold] : thresholds) {
      t.inputs.emplace_back(class_id, threshold);
    }
    net.producers_[t.output].push_back(net.transitions_.size());
    net.transitions_.push_back(std::move(t));
  }
  for (ClassId place : net.places_) {
    if (net.producers_.count(place) == 0) net.base_places_.insert(place);
  }
  return net;
}

std::vector<const DerivationNet::Transition*> DerivationNet::Producers(
    ClassId class_id) const {
  std::vector<const Transition*> out;
  auto it = producers_.find(class_id);
  if (it == producers_.end()) return out;
  out.reserve(it->second.size());
  for (size_t idx : it->second) out.push_back(&transitions_[idx]);
  return out;
}

bool DerivationNet::Enabled(const Transition& t, const Marking& marking) {
  for (const auto& [class_id, threshold] : t.inputs) {
    auto it = marking.find(class_id);
    int64_t tokens = it == marking.end() ? 0 : it->second;
    if (tokens < threshold) return false;
  }
  return true;
}

void DerivationNet::Fire(const Transition& t, Marking* marking) {
  (*marking)[t.output] += 1;
}

std::set<ClassId> DerivationNet::ReachableClasses(
    const Marking& initial) const {
  // Non-consuming firing makes markings monotone: once a transition is
  // enabled it stays enabled, so a fixpoint suffices. A place is saturated
  // once it holds the largest threshold any consumer demands of it (a
  // repeatedly-firing producer can always raise it that far), so firing
  // beyond that bound cannot enable anything new.
  std::map<ClassId, int64_t> need;
  for (const Transition& t : transitions_) {
    for (const auto& [class_id, threshold] : t.inputs) {
      int64_t& n = need[class_id];
      n = std::max<int64_t>(n, threshold);
    }
  }
  Marking marking = initial;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Transition& t : transitions_) {
      auto it = marking.find(t.output);
      int64_t tokens = it == marking.end() ? 0 : it->second;
      auto need_it = need.find(t.output);
      int64_t target = std::max<int64_t>(
          1, need_it == need.end() ? 0 : need_it->second);
      if (tokens < target && Enabled(t, marking)) {
        Fire(t, &marking);
        changed = true;
      }
    }
  }
  std::set<ClassId> out;
  for (const auto& [class_id, tokens] : marking) {
    if (tokens > 0) out.insert(class_id);
  }
  return out;
}

bool DerivationNet::CanDerive(ClassId target, const Marking& initial) const {
  return ReachableClasses(initial).count(target) > 0;
}

StatusOr<std::vector<const DerivationNet::Transition*>>
DerivationNet::PlanImpl(ClassId target, int needed, Marking* marking,
                        std::set<ClassId>* stack) const {
  int64_t have = 0;
  if (auto it = marking->find(target); it != marking->end()) {
    have = it->second;
  }
  if (have >= needed) return std::vector<const Transition*>{};
  if (stack->count(target) > 0) {
    return Status::Underivable("cyclic derivation of class " +
                               std::to_string(target));
  }
  if (places_.count(target) == 0) {
    return Status::NotFound("class " + std::to_string(target) +
                            " is not a place in the derivation net");
  }
  int64_t missing = needed - have;
  stack->insert(target);
  auto producers_it = producers_.find(target);
  Status last_error = Status::Underivable(
      "class " + std::to_string(target) + " has no producing process and " +
      std::to_string(have) + " of " + std::to_string(needed) +
      " required objects");
  if (producers_it != producers_.end()) {
    for (size_t idx : producers_it->second) {
      const Transition& t = transitions_[idx];
      // Work on copies so a failed branch does not pollute the plan state.
      Marking trial = *marking;
      std::vector<const Transition*> steps;
      bool ok = true;
      for (const auto& [class_id, threshold] : t.inputs) {
        auto sub = PlanImpl(class_id, threshold, &trial, stack);
        if (!sub.ok()) {
          ok = false;
          last_error = sub.status();
          break;
        }
        steps.insert(steps.end(), sub->begin(), sub->end());
      }
      if (!ok) continue;
      // Inputs satisfied once; non-consumption lets the transition fire as
      // many times as tokens are missing.
      for (int64_t i = 0; i < missing; ++i) {
        Fire(t, &trial);
        steps.push_back(&t);
      }
      *marking = std::move(trial);
      stack->erase(target);
      return steps;
    }
  }
  stack->erase(target);
  return last_error;
}

StatusOr<std::vector<const DerivationNet::Transition*>>
DerivationNet::PlanFiringSequence(ClassId target, int needed,
                                  Marking marking) const {
  if (needed < 1) {
    return Status::InvalidArgument("needed token count must be >= 1");
  }
  std::set<ClassId> stack;
  return PlanImpl(target, needed, &marking, &stack);
}

StatusOr<DerivationNet::Marking> DerivationNet::RequiredInitialMarking(
    ClassId target) const {
  // Plan against a marking where every base place has unbounded tokens,
  // then count how many each planned firing actually draws.
  Marking unlimited;
  constexpr int64_t kPlenty = 1 << 20;
  for (ClassId base : base_places_) unlimited[base] = kPlenty;
  GAEA_ASSIGN_OR_RETURN(std::vector<const Transition*> plan,
                        PlanFiringSequence(target, 1, unlimited));
  Marking required;
  for (const Transition* t : plan) {
    for (const auto& [class_id, threshold] : t->inputs) {
      if (base_places_.count(class_id) > 0) {
        // The firing needs `threshold` base tokens available; requirements
        // are max, not sum, because tokens are reusable (non-consuming).
        int64_t& req = required[class_id];
        req = std::max<int64_t>(req, threshold);
      }
    }
  }
  return required;
}

std::string DerivationNet::ToDot(const ClassRegistry& classes) const {
  std::ostringstream os;
  os << "digraph derivation_net {\n  rankdir=LR;\n";
  for (ClassId place : places_) {
    auto def = classes.LookupById(place);
    std::string label = def.ok() ? (*def)->name() : std::to_string(place);
    os << "  c" << place << " [shape=circle,label=\"" << label << "\"];\n";
  }
  for (size_t i = 0; i < transitions_.size(); ++i) {
    const Transition& t = transitions_[i];
    os << "  p" << i << " [shape=box,style=filled,label=\"" << t.process_name
       << "\"];\n";
    for (const auto& [class_id, threshold] : t.inputs) {
      os << "  c" << class_id << " -> p" << i;
      if (threshold > 1) os << " [label=\">=" << threshold << "\"]";
      os << ";\n";
    }
    os << "  p" << i << " -> c" << t.output << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace gaea
