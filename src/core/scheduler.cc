#include "core/scheduler.h"

#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "obs/trace.h"

namespace gaea {

// One entry of the commit reorder buffer.
struct TaskScheduler::StepItem {
  enum class Kind {
    kPrepared,  // prepare ran (successfully or not); commit via Deriver
    kCacheHit,  // compute-time cache hit; validate at commit
    kFailed,    // never reached Prepare (e.g. unknown process); no task log
  };
  Kind kind = Kind::kFailed;
  Deriver::Prepared prepared;            // kPrepared
  std::string key;                       // cache key (when caching)
  Oid cached_oid = kInvalidOid;          // kCacheHit
  const ProcessDef* proc = nullptr;      // for inline recompute at commit
  std::map<std::string, std::vector<Oid>> inputs;
  Status status = Status::OK();          // kFailed reason
};

TaskScheduler::StepItem TaskScheduler::ComputeStep(
    const PlanStep& step, std::map<std::string, std::vector<Oid>> inputs) const {
  StepItem item;
  item.inputs = std::move(inputs);

  StatusOr<const ProcessDef*> proc =
      step.process_version > 0
          ? processes_->Version(step.process_name, step.process_version)
          : processes_->Latest(step.process_name);
  if (!proc.ok()) {
    item.kind = StepItem::Kind::kFailed;
    item.status = proc.status();
    return item;
  }
  item.proc = *proc;

  if (cache_ != nullptr) {
    item.key = DerivationCache::MakeKey(**proc, item.inputs);
    if (std::optional<Oid> hit = cache_->Lookup(item.key)) {
      item.kind = StepItem::Kind::kCacheHit;
      item.cached_oid = *hit;
      return item;
    }
  }

  item.kind = StepItem::Kind::kPrepared;
  item.prepared = deriver_->Prepare(**proc, item.inputs);
  return item;
}

StatusOr<std::vector<DeriveOutcome>> TaskScheduler::Execute(
    const DerivationPlan& plan) {
  const size_t n = plan.steps.size();
  std::vector<DeriveOutcome> results(n);
  if (n == 0) return results;

  // Dependency graph from step references. Plans are topologically ordered
  // by construction (planner, compound expansion), so only backward
  // references are legal.
  std::vector<std::vector<size_t>> dependents(n);
  std::vector<size_t> remaining(n, 0);
  for (size_t i = 0; i < n; ++i) {
    std::set<size_t> deps;
    for (const auto& [arg, bound] : plan.steps[i].bindings) {
      for (const BoundInput& input : bound) {
        if (input.kind != BoundInput::Kind::kStep) continue;
        if (input.step_index >= i) {
          return Status::InvalidArgument(
              "plan step " + std::to_string(i) + " references step " +
              std::to_string(input.step_index) + " that does not precede it");
        }
        deps.insert(input.step_index);
      }
    }
    remaining[i] = deps.size();
    for (size_t d : deps) dependents[d].push_back(i);
  }

  // Shared execution state, all guarded by `mu`. Lock order: mu is only
  // ever taken when no storage/catalog latch is held by this thread;
  // catalog/storage latches may be taken while holding mu (commit path).
  std::mutex mu;
  std::condition_variable cv;
  std::set<size_t> ready;           // runnable steps, lowest index first
  std::map<size_t, StepItem> pending;  // reorder buffer: step -> finished item
  std::vector<Oid> oids(n, kInvalidOid);
  std::vector<char> failed(n, 0);
  std::vector<char> poisoned(n, 0);
  size_t next_commit = 0;

  for (size_t i = 0; i < n; ++i) {
    if (remaining[i] == 0) ready.insert(i);
  }

  // Resolves a step's input OIDs; dependencies are committed, so oids[] is
  // final for every referenced step. Called with mu held.
  auto resolve_inputs = [&](const PlanStep& step) {
    std::map<std::string, std::vector<Oid>> inputs;
    for (const auto& [arg, bound] : step.bindings) {
      std::vector<Oid>& out = inputs[arg];
      for (const BoundInput& input : bound) {
        out.push_back(input.kind == BoundInput::Kind::kStored
                          ? input.oid
                          : oids[input.step_index]);
      }
    }
    return inputs;
  };

  // Finalizes step i's outcome bookkeeping. Called with mu held from the
  // drain loop; may add ready steps or poison entries to `pending`.
  auto finalize = [&](size_t i) {
    if (!results[i].status.ok()) failed[i] = 1;
    for (size_t d : dependents[i]) {
      if (failed[i]) poisoned[d] = 1;
      if (--remaining[d] > 0) continue;
      if (poisoned[d]) {
        StepItem poison;
        poison.kind = StepItem::Kind::kFailed;
        poison.status = Status::FailedPrecondition(
            "upstream plan step " + std::to_string(i) + " failed: " +
            results[i].status.ToString());
        pending.emplace(d, std::move(poison));
      } else {
        ready.insert(d);
      }
    }
  };

  // Commits every item that became next-in-order. Called with mu held.
  auto drain = [&] {
    for (auto it = pending.find(next_commit); it != pending.end();
         it = pending.find(next_commit)) {
      size_t i = it->first;
      StepItem item = std::move(it->second);
      pending.erase(it);
      DeriveOutcome& out = results[i];
      switch (item.kind) {
        case StepItem::Kind::kFailed:
          out.status = std::move(item.status);
          break;
        case StepItem::Kind::kCacheHit:
          if (catalog_->ContainsObject(item.cached_oid)) {
            out.oid = item.cached_oid;
            out.cache_hit = true;
          } else {
            // The memoized object was evicted after the compute-time hit;
            // the commit-time state wins — recompute inline (we hold this
            // step's commit slot, so ordering is preserved).
            cache_->InvalidateOutput(item.cached_oid);
            StatusOr<Oid> oid =
                deriver_->Commit(deriver_->Prepare(*item.proc, item.inputs));
            if (oid.ok()) {
              out.oid = *oid;
              cache_->Insert(item.key, *oid);
            } else {
              out.status = oid.status();
            }
          }
          break;
        case StepItem::Kind::kPrepared: {
          if (cache_ != nullptr && item.prepared.status.ok()) {
            // Another in-flight step may have committed this key while we
            // were preparing; converge on its object (uncounted peek: the
            // compute-time miss already told the stats story).
            std::optional<Oid> dup = cache_->Peek(item.key);
            if (dup.has_value() && catalog_->ContainsObject(*dup)) {
              out.oid = *dup;
              out.cache_hit = true;
              break;
            }
          }
          StatusOr<Oid> oid = deriver_->Commit(std::move(item.prepared));
          if (oid.ok()) {
            out.oid = *oid;
            if (cache_ != nullptr) cache_->Insert(item.key, *oid);
          } else {
            out.status = oid.status();
          }
          break;
        }
      }
      oids[i] = out.oid;
      finalize(i);
      next_commit++;
    }
  };

  // Pool threads have no trace context of their own; they inherit the
  // caller's so task spans parent under the request (or compound) span.
  const obs::TraceContext trace_ctx = obs::Tracer::CurrentContext();

  auto worker = [&] {
    obs::ScopedContext trace_scope(trace_ctx);
    std::unique_lock<std::mutex> lock(mu);
    while (next_commit < n) {
      if (ready.empty()) {
        cv.wait(lock, [&] { return next_commit >= n || !ready.empty(); });
        continue;
      }
      size_t i = *ready.begin();
      ready.erase(ready.begin());
      std::map<std::string, std::vector<Oid>> inputs =
          resolve_inputs(plan.steps[i]);
      lock.unlock();
      StepItem item;
      {
        obs::SpanGuard span("task:" + plan.steps[i].process_name, "scheduler");
        item = ComputeStep(plan.steps[i], std::move(inputs));
      }
      lock.lock();
      pending.emplace(i, std::move(item));
      drain();
      cv.notify_all();
    }
    cv.notify_all();
  };

  int threads = options_.threads;
  if (threads > static_cast<int>(n)) threads = static_cast<int>(n);
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  return results;
}

StatusOr<std::vector<DeriveOutcome>> TaskScheduler::RunBatch(
    const std::vector<DeriveRequest>& requests) {
  DerivationPlan plan;
  plan.steps.reserve(requests.size());
  for (const DeriveRequest& request : requests) {
    PlanStep step;
    step.process_name = request.process;
    step.process_version = request.version;
    for (const auto& [arg, oids] : request.inputs) {
      std::vector<BoundInput>& bound = step.bindings[arg];
      bound.reserve(oids.size());
      for (Oid oid : oids) bound.push_back(BoundInput::Stored(oid));
    }
    plan.steps.push_back(std::move(step));
  }
  return Execute(plan);
}

StatusOr<Oid> TaskScheduler::RunCompound(
    const CompoundProcessDef& compound,
    const std::map<std::string, std::vector<Oid>>& external_inputs) {
  GAEA_ASSIGN_OR_RETURN(std::vector<const CompoundStage*> order,
                        compound.Expand(catalog_->classes(), *processes_));
  DerivationPlan plan;
  plan.steps.reserve(order.size());
  std::map<std::string, size_t> stage_index;
  for (size_t i = 0; i < order.size(); ++i) {
    const CompoundStage* stage = order[i];
    PlanStep step;
    step.process_name = stage->process_name;
    step.process_version = 0;  // latest, matching direct Derive
    for (const auto& [arg, input] : stage->bindings) {
      if (input.source == StageInput::Source::kExternal) {
        auto it = external_inputs.find(input.name);
        if (it == external_inputs.end()) {
          return Status::InvalidArgument("compound input " + input.name +
                                         " not supplied");
        }
        std::vector<BoundInput>& bound = step.bindings[arg];
        for (Oid oid : it->second) bound.push_back(BoundInput::Stored(oid));
      } else {
        auto it = stage_index.find(input.name);
        if (it == stage_index.end()) {
          return Status::Internal("stage " + input.name +
                                  " not yet executed in expansion order");
        }
        step.bindings[arg] = {BoundInput::FromStep(it->second)};
      }
    }
    stage_index[stage->name] = i;
    plan.steps.push_back(std::move(step));
  }

  GAEA_ASSIGN_OR_RETURN(std::vector<DeriveOutcome> outcomes, Execute(plan));
  for (const DeriveOutcome& outcome : outcomes) {
    if (!outcome.status.ok()) return outcome.status;
  }
  auto it = stage_index.find(compound.output_stage());
  if (it != stage_index.end()) return outcomes[it->second].oid;
  return outcomes.empty() ? kInvalidOid : outcomes.back().oid;
}

}  // namespace gaea
