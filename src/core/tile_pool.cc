#include "core/tile_pool.h"

#include <algorithm>
#include <string>

#include "obs/trace.h"

namespace gaea {

namespace {
// Set while a thread is executing a tile body; a nested ParallelRows from
// inside an operator kernel runs inline instead of deadlocking the pool.
thread_local bool t_in_tile = false;
}  // namespace

// All fields are guarded by TilePool::mu_. Claiming a tile is a handful of
// instructions under the lock; a tile itself is >=64 rows of pixel work, so
// the lock is never contended in any profile that matters.
struct TilePool::Job {
  int64_t nrows = 0;
  int64_t ntiles = 0;
  int64_t next = 0;  // next unclaimed tile
  int64_t done = 0;  // tiles finished (either path)
  const std::function<Status(int64_t, int64_t)>* fn = nullptr;
  obs::TraceContext ctx;  // caller's trace context, adopted by helpers
  Status error;           // status of the lowest-numbered failing tile
  int64_t error_tile = -1;
};

TilePool& TilePool::Global() {
  static TilePool pool;
  return pool;
}

TilePool::TilePool() = default;

TilePool::~TilePool() {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    workers.swap(helpers_);
  }
  work_cv_.notify_all();
  for (std::thread& t : workers) t.join();
}

void TilePool::SetMaxParallel(int n) {
  if (n < 1) n = 1;
  std::vector<std::thread> excess;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    max_parallel_ = n;
    target_helpers_ = static_cast<size_t>(n - 1);
    while (helpers_.size() < target_helpers_) {
      helpers_.emplace_back(&TilePool::HelperLoop, this, helpers_.size());
    }
    while (helpers_.size() > target_helpers_) {
      excess.push_back(std::move(helpers_.back()));
      helpers_.pop_back();
    }
  }
  // Shrinking: woken helpers whose index is past the target exit on their
  // own; join them outside the lock.
  work_cv_.notify_all();
  for (std::thread& t : excess) t.join();
}

int TilePool::max_parallel() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_parallel_;
}

TilePool::Stats TilePool::stats() const {
  Stats s;
  s.jobs = jobs_.load(std::memory_order_relaxed);
  s.fanout_jobs = fanout_jobs_.load(std::memory_order_relaxed);
  s.inline_jobs = inline_jobs_.load(std::memory_order_relaxed);
  s.tiles = tiles_.load(std::memory_order_relaxed);
  s.helper_tiles = helper_tiles_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.helpers = static_cast<int>(helpers_.size());
  }
  return s;
}

Status TilePool::RunTile(Job& job, int64_t tile) {
  int64_t begin = tile * kTileRows;
  int64_t end = std::min(job.nrows, begin + kTileRows);
  tiles_.fetch_add(1, std::memory_order_relaxed);
  bool saved = t_in_tile;
  t_in_tile = true;
  Status s = (*job.fn)(begin, end);
  t_in_tile = saved;
  return s;
}

void TilePool::FinishTile(Job& job, int64_t tile, Status s, bool on_helper) {
  if (on_helper) helper_tiles_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  ++job.done;
  if (!s.ok() && (job.error_tile < 0 || tile < job.error_tile)) {
    job.error = std::move(s);
    job.error_tile = tile;
  }
  if (job.done == job.ntiles) done_cv_.notify_all();
}

void TilePool::HelperLoop(size_t index) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    std::shared_ptr<Job> job;
    for (const auto& j : active_) {
      if (j->next < j->ntiles) {
        job = j;
        break;
      }
    }
    if (!job) {
      if (stop_ || index >= target_helpers_) return;
      work_cv_.wait(lock);
      continue;
    }
    int64_t tile = job->next++;
    lock.unlock();
    {
      obs::ScopedContext trace_scope(job->ctx);
      obs::SpanGuard span("tile", "tile");
      Status s = RunTile(*job, tile);
      FinishTile(*job, tile, std::move(s), /*on_helper=*/true);
    }
    lock.lock();
  }
}

Status TilePool::ParallelRows(
    const char* label, int64_t nrows,
    const std::function<Status(int64_t, int64_t)>& fn) {
  if (nrows <= 0) return Status::OK();
  const int64_t ntiles = TileCount(nrows);
  jobs_.fetch_add(1, std::memory_order_relaxed);

  bool fan_out = ntiles > 1 && !t_in_tile;
  if (fan_out) {
    std::lock_guard<std::mutex> lock(mu_);
    // Admission: with no helpers there is nobody to hand tiles to, and once
    // max_parallel fan-outs are in flight every thread already has work —
    // further fan-outs would only add queueing overhead.
    if (helpers_.empty() ||
        active_.size() >= static_cast<size_t>(max_parallel_)) {
      fan_out = false;
    }
  }

  if (!fan_out) {
    inline_jobs_.fetch_add(1, std::memory_order_relaxed);
    Job job;
    job.nrows = nrows;
    job.ntiles = ntiles;
    job.fn = &fn;
    // Same contract as the fan-out path: every tile runs even after an
    // error, and the lowest-indexed tile's error is returned — so the
    // failure a caller observes is identical at every thread count.
    Status first_error;
    for (int64_t tile = 0; tile < ntiles; ++tile) {
      Status s = RunTile(job, tile);
      if (!s.ok() && first_error.ok()) first_error = std::move(s);
    }
    return first_error;
  }

  fanout_jobs_.fetch_add(1, std::memory_order_relaxed);
  obs::SpanGuard span(std::string("tiles:") + label, "tile");
  auto job = std::make_shared<Job>();
  job->nrows = nrows;
  job->ntiles = ntiles;
  job->fn = &fn;
  job->ctx = obs::Tracer::CurrentContext();
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_.push_back(job);
  }
  work_cv_.notify_all();

  // The caller claims tiles alongside the helpers; it never waits while
  // unclaimed work remains.
  for (;;) {
    int64_t tile;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (job->next >= job->ntiles) break;
      tile = job->next++;
    }
    obs::SpanGuard tile_span("tile", "tile");
    Status s = RunTile(*job, tile);
    FinishTile(*job, tile, std::move(s), /*on_helper=*/false);
  }

  Status result;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return job->done == job->ntiles; });
    active_.erase(std::find(active_.begin(), active_.end(), job));
    if (job->error_tile >= 0) result = job->error;
  }
  return result;
}

}  // namespace gaea
