#include "core/task.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace gaea {

std::vector<Oid> Task::AllInputs() const {
  std::set<Oid> all;
  for (const auto& [arg, oids] : inputs) {
    all.insert(oids.begin(), oids.end());
  }
  return std::vector<Oid>(all.begin(), all.end());
}

std::string Task::ToString() const {
  std::ostringstream os;
  os << "task#" << id << " " << process_name << " v" << process_version
     << " (";
  bool first = true;
  for (const auto& [arg, oids] : inputs) {
    if (!first) os << ", ";
    first = false;
    os << arg << "=[";
    for (size_t i = 0; i < oids.size(); ++i) {
      if (i > 0) os << ",";
      os << oids[i];
    }
    os << "]";
  }
  os << ") -> [";
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (i > 0) os << ",";
    os << outputs[i];
  }
  os << "]";
  if (status == TaskStatus::kFailed) os << " FAILED: " << error;
  return os.str();
}

void Task::Serialize(BinaryWriter* w) const {
  w->PutU64(id);
  w->PutString(process_name);
  w->PutI32(process_version);
  w->PutU32(static_cast<uint32_t>(inputs.size()));
  for (const auto& [arg, oids] : inputs) {
    w->PutString(arg);
    w->PutU32(static_cast<uint32_t>(oids.size()));
    for (Oid oid : oids) w->PutU64(oid);
  }
  w->PutU32(static_cast<uint32_t>(outputs.size()));
  for (Oid oid : outputs) w->PutU64(oid);
  w->PutU8(static_cast<uint8_t>(status));
  w->PutString(error);
  w->PutString(user);
  w->PutString(note);
  started.Serialize(w);
  w->PutI64(duration_us);
}

StatusOr<Task> Task::Deserialize(BinaryReader* r) {
  Task task;
  GAEA_ASSIGN_OR_RETURN(task.id, r->GetU64());
  GAEA_ASSIGN_OR_RETURN(task.process_name, r->GetString());
  GAEA_ASSIGN_OR_RETURN(task.process_version, r->GetI32());
  GAEA_ASSIGN_OR_RETURN(uint32_t nargs, r->GetU32());
  for (uint32_t i = 0; i < nargs; ++i) {
    GAEA_ASSIGN_OR_RETURN(std::string arg, r->GetString());
    GAEA_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
    std::vector<Oid> oids;
    oids.reserve(n);
    for (uint32_t j = 0; j < n; ++j) {
      GAEA_ASSIGN_OR_RETURN(Oid oid, r->GetU64());
      oids.push_back(oid);
    }
    task.inputs.emplace(std::move(arg), std::move(oids));
  }
  GAEA_ASSIGN_OR_RETURN(uint32_t nout, r->GetU32());
  task.outputs.reserve(nout);
  for (uint32_t i = 0; i < nout; ++i) {
    GAEA_ASSIGN_OR_RETURN(Oid oid, r->GetU64());
    task.outputs.push_back(oid);
  }
  GAEA_ASSIGN_OR_RETURN(uint8_t status, r->GetU8());
  if (status > static_cast<uint8_t>(TaskStatus::kFailed)) {
    return Status::Corruption("bad task status tag");
  }
  task.status = static_cast<TaskStatus>(status);
  GAEA_ASSIGN_OR_RETURN(task.error, r->GetString());
  GAEA_ASSIGN_OR_RETURN(task.user, r->GetString());
  GAEA_ASSIGN_OR_RETURN(task.note, r->GetString());
  GAEA_ASSIGN_OR_RETURN(task.started, AbsTime::Deserialize(r));
  GAEA_ASSIGN_OR_RETURN(task.duration_us, r->GetI64());
  return task;
}

std::unique_ptr<TaskLog> TaskLog::InMemory() {
  return std::unique_ptr<TaskLog>(new TaskLog());
}

StatusOr<std::unique_ptr<TaskLog>> TaskLog::Open(const std::string& path,
                                                 Env* env,
                                                 const JournalRecovery* recovery) {
  auto log = InMemory();
  GAEA_ASSIGN_OR_RETURN(std::unique_ptr<Journal> journal,
                        Journal::Open(path, env));
  auto apply = [&log](const std::string& record) -> Status {
    BinaryReader r(record);
    GAEA_ASSIGN_OR_RETURN(Task task, Task::Deserialize(&r));
    // Re-inserting through Append would re-journal; index directly.
    TaskId expected = static_cast<TaskId>(log->tasks_.size()) + 1;
    if (task.id != expected) {
      return Status::Corruption("task journal out of order: got id " +
                                std::to_string(task.id) + ", expected " +
                                std::to_string(expected));
    }
    size_t idx = log->tasks_.size();
    for (Oid oid : task.outputs) log->producer_index_[oid] = idx;
    for (Oid oid : task.AllInputs()) {
      log->consumer_index_[oid].push_back(idx);
    }
    log->tasks_.push_back(std::move(task));
    return Status::OK();
  };
  uint64_t start_lsn = 0;
  if (recovery != nullptr && recovery->load_snapshot) {
    GAEA_RETURN_IF_ERROR(recovery->load_snapshot(apply));
    start_lsn = recovery->start_lsn;
    // The sequential-id check above implicitly verified the snapshot; the
    // journal tail must continue exactly where the snapshot stops.
    if (static_cast<uint64_t>(log->tasks_.size()) != start_lsn) {
      return Status::Corruption(
          "task snapshot holds " + std::to_string(log->tasks_.size()) +
          " tasks but claims to cover LSN " + std::to_string(start_lsn));
    }
  }
  GAEA_RETURN_IF_ERROR(journal->Replay(apply, start_lsn));
  log->journal_ = std::move(journal);
  return log;
}

Status TaskLog::Snapshot(const std::function<Status(const std::string&)>& sink,
                         uint64_t* covered_lsn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Task& task : tasks_) {
    BinaryWriter w;
    task.Serialize(&w);
    GAEA_RETURN_IF_ERROR(sink(w.buffer()));
  }
  // Appends hold mu_ while journaling, so the journal count equals the
  // number of tasks just streamed (task id N lives at journal LSN N - 1).
  *covered_lsn = journal_ == nullptr ? tasks_.size() : journal_->record_count();
  return Status::OK();
}

StatusOr<TaskId> TaskLog::Append(Task task) {
  std::lock_guard<std::mutex> lock(mu_);
  task.id = static_cast<TaskId>(tasks_.size()) + 1;
  for (Oid oid : task.outputs) {
    if (producer_index_.count(oid) > 0) {
      return Status::AlreadyExists(
          "object " + std::to_string(oid) +
          " already has a producing task (derivations are immutable)");
    }
  }
  if (journal_ != nullptr) {
    BinaryWriter w;
    task.Serialize(&w);
    GAEA_RETURN_IF_ERROR(journal_->Append(w.buffer()));
  }
  size_t idx = tasks_.size();
  for (Oid oid : task.outputs) producer_index_[oid] = idx;
  for (Oid oid : task.AllInputs()) consumer_index_[oid].push_back(idx);
  TaskId id = task.id;
  tasks_.push_back(std::move(task));
  if (commit_hook_) {
    GAEA_RETURN_IF_ERROR(commit_hook_(tasks_.back()));
  }
  return id;
}

StatusOr<const Task*> TaskLog::ApplyReplicated(const std::string& record) {
  std::lock_guard<std::mutex> lock(mu_);
  BinaryReader r(record);
  GAEA_ASSIGN_OR_RETURN(Task task, Task::Deserialize(&r));
  TaskId expected = static_cast<TaskId>(tasks_.size()) + 1;
  if (task.id != expected) {
    return Status::FailedPrecondition(
        "replicated task out of order: got id " + std::to_string(task.id) +
        ", expected " + std::to_string(expected));
  }
  if (journal_ != nullptr) {
    GAEA_RETURN_IF_ERROR(journal_->Append(record));
  }
  size_t idx = tasks_.size();
  for (Oid oid : task.outputs) producer_index_[oid] = idx;
  for (Oid oid : task.AllInputs()) consumer_index_[oid].push_back(idx);
  tasks_.push_back(std::move(task));
  if (commit_hook_) {
    GAEA_RETURN_IF_ERROR(commit_hook_(tasks_.back()));
  }
  return &tasks_.back();
}

StatusOr<const Task*> TaskLog::Get(TaskId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == kInvalidTaskId || id > tasks_.size()) {
    return Status::NotFound("no task with id " + std::to_string(id));
  }
  return &tasks_[id - 1];
}

StatusOr<const Task*> TaskLog::Producer(Oid oid) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = producer_index_.find(oid);
  if (it == producer_index_.end()) {
    return Status::NotFound("object " + std::to_string(oid) +
                            " has no producing task (base data)");
  }
  return &tasks_[it->second];
}

StatusOr<const Task*> TaskLog::FindCompleted(
    const std::string& process_name, int process_version,
    const std::map<std::string, std::vector<Oid>>& inputs) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Newest first: the latest equivalent run is the one to reuse.
  for (auto it = tasks_.rbegin(); it != tasks_.rend(); ++it) {
    if (it->status == TaskStatus::kCompleted &&
        it->process_version == process_version &&
        it->process_name == process_name && it->inputs == inputs) {
      return &*it;
    }
  }
  return Status::NotFound("no completed task for " + process_name + " v" +
                          std::to_string(process_version) +
                          " with these inputs");
}

std::vector<const Task*> TaskLog::Consumers(Oid oid) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Task*> out;
  auto it = consumer_index_.find(oid);
  if (it == consumer_index_.end()) return out;
  out.reserve(it->second.size());
  for (size_t idx : it->second) out.push_back(&tasks_[idx]);
  return out;
}

}  // namespace gaea
