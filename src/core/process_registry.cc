#include "core/process_registry.h"

namespace gaea {

StatusOr<int> ProcessRegistry::Register(ProcessDef def) {
  std::vector<ProcessDef>& versions = processes_[def.name()];
  int next_version = static_cast<int>(versions.size()) + 1;
  if (!versions.empty() && versions.back().StructurallyEquals(def)) {
    // Remove the empty slot if we just created the name.
    return Status::AlreadyExists(
        "process " + def.name() + " v" +
        std::to_string(versions.back().version()) +
        " already has this exact structure");
  }
  def.set_version(next_version);
  versions.push_back(std::move(def));
  return next_version;
}

StatusOr<const ProcessDef*> ProcessRegistry::Latest(
    const std::string& name) const {
  auto it = processes_.find(name);
  if (it == processes_.end() || it->second.empty()) {
    return Status::NotFound("process not defined: " + name);
  }
  return &it->second.back();
}

StatusOr<const ProcessDef*> ProcessRegistry::Version(const std::string& name,
                                                     int version) const {
  auto it = processes_.find(name);
  if (it == processes_.end() || it->second.empty()) {
    return Status::NotFound("process not defined: " + name);
  }
  if (version < 1 || version > static_cast<int>(it->second.size())) {
    return Status::NotFound("process " + name + " has no version " +
                            std::to_string(version));
  }
  return &it->second[version - 1];
}

bool ProcessRegistry::Contains(const std::string& name) const {
  auto it = processes_.find(name);
  return it != processes_.end() && !it->second.empty();
}

StatusOr<std::vector<const ProcessDef*>> ProcessRegistry::History(
    const std::string& name) const {
  auto it = processes_.find(name);
  if (it == processes_.end() || it->second.empty()) {
    return Status::NotFound("process not defined: " + name);
  }
  std::vector<const ProcessDef*> out;
  out.reserve(it->second.size());
  for (const ProcessDef& def : it->second) out.push_back(&def);
  return out;
}

std::vector<const ProcessDef*> ProcessRegistry::ListLatest() const {
  std::vector<const ProcessDef*> out;
  out.reserve(processes_.size());
  for (const auto& [name, versions] : processes_) {
    if (!versions.empty()) out.push_back(&versions.back());
  }
  return out;
}

std::vector<const ProcessDef*> ProcessRegistry::Producing(
    const std::string& class_name) const {
  std::vector<const ProcessDef*> out;
  for (const auto& [name, versions] : processes_) {
    if (!versions.empty() && versions.back().output_class() == class_name) {
      out.push_back(&versions.back());
    }
  }
  return out;
}

}  // namespace gaea
