#include "storage/object_store.h"

#include <limits>

namespace gaea {

StatusOr<std::unique_ptr<ObjectStore>> ObjectStore::Open(
    const std::string& prefix, size_t pool_capacity) {
  GAEA_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> heap,
                        HeapFile::Open(prefix + ".heap", pool_capacity));
  GAEA_ASSIGN_OR_RETURN(std::unique_ptr<BTree> index,
                        BTree::Open(prefix + ".idx", pool_capacity));
  std::unique_ptr<ObjectStore> store(
      new ObjectStore(std::move(heap), std::move(index)));
  // Recover the next OID as (max stored OID) + 1.
  Oid max_oid = 0;
  GAEA_RETURN_IF_ERROR(store->index_->Scan(
      std::numeric_limits<int64_t>::min(), std::numeric_limits<int64_t>::max(),
      [&max_oid](int64_t key, uint64_t) -> Status {
        max_oid = std::max(max_oid, static_cast<Oid>(key));
        return Status::OK();
      }));
  store->next_oid_ = max_oid + 1;
  return store;
}

StatusOr<Oid> ObjectStore::Put(const std::string& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  Oid oid = next_oid_;
  GAEA_RETURN_IF_ERROR(PutWithOidLocked(oid, payload));
  return oid;
}

Status ObjectStore::PutWithOid(Oid oid, const std::string& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  return PutWithOidLocked(oid, payload);
}

Status ObjectStore::PutWithOidLocked(Oid oid, const std::string& payload) {
  if (oid == kInvalidOid) {
    return Status::InvalidArgument("OID 0 is reserved");
  }
  if (Contains(oid)) {
    return Status::AlreadyExists("object " + std::to_string(oid) +
                                 " already stored");
  }
  GAEA_ASSIGN_OR_RETURN(Rid rid, heap_->Insert(payload));
  GAEA_RETURN_IF_ERROR(
      index_->Insert(static_cast<int64_t>(oid), rid.Encode()));
  if (oid >= next_oid_) next_oid_ = oid + 1;
  return Status::OK();
}

StatusOr<std::string> ObjectStore::Get(Oid oid) const {
  auto rid_or = index_->LookupFirst(static_cast<int64_t>(oid));
  if (!rid_or.ok()) {
    return Status::NotFound("object " + std::to_string(oid) + " not stored");
  }
  return heap_->Read(Rid::Decode(*rid_or));
}

bool ObjectStore::Contains(Oid oid) const {
  auto rid_or = index_->LookupFirst(static_cast<int64_t>(oid));
  return rid_or.ok();
}

Status ObjectStore::Delete(Oid oid) {
  GAEA_ASSIGN_OR_RETURN(uint64_t rid_enc,
                        index_->LookupFirst(static_cast<int64_t>(oid)));
  GAEA_RETURN_IF_ERROR(heap_->Delete(Rid::Decode(rid_enc)));
  return index_->Delete(static_cast<int64_t>(oid), rid_enc);
}

Status ObjectStore::ForEach(
    const std::function<Status(Oid, const std::string&)>& fn) const {
  return index_->Scan(
      std::numeric_limits<int64_t>::min(), std::numeric_limits<int64_t>::max(),
      [this, &fn](int64_t key, uint64_t rid_enc) -> Status {
        GAEA_ASSIGN_OR_RETURN(std::string payload,
                              heap_->Read(Rid::Decode(rid_enc)));
        return fn(static_cast<Oid>(key), payload);
      });
}

Status ObjectStore::Flush() {
  GAEA_RETURN_IF_ERROR(heap_->Flush());
  return index_->Flush();
}

}  // namespace gaea
