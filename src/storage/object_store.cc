#include "storage/object_store.h"

#include <cstring>
#include <limits>
#include <utility>
#include <vector>

namespace gaea {

namespace {

// Heap records are self-describing: [u64 oid][payload]. The header makes
// the OID index *derived* data — after a crash tears the index, it is
// rebuilt from the heap, the single source of truth.
constexpr size_t kOidHeaderBytes = 8;

std::string WrapPayload(Oid oid, const std::string& payload) {
  std::string record(kOidHeaderBytes, '\0');
  std::memcpy(record.data(), &oid, kOidHeaderBytes);
  record.append(payload);
  return record;
}

bool UnwrapOid(const std::string& record, Oid* oid) {
  if (record.size() < kOidHeaderBytes) return false;
  std::memcpy(oid, record.data(), kOidHeaderBytes);
  return true;
}

}  // namespace

StatusOr<std::unique_ptr<ObjectStore>> ObjectStore::Open(
    const std::string& prefix, size_t pool_capacity, Env* env) {
  GAEA_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> heap,
                        HeapFile::Open(prefix + ".heap", pool_capacity, env));
  GAEA_ASSIGN_OR_RETURN(std::unique_ptr<BTree> index,
                        BTree::Open(prefix + ".idx", pool_capacity, env));
  std::unique_ptr<ObjectStore> store(
      new ObjectStore(std::move(heap), std::move(index)));

  // Crash reconciliation: the heap and index are separate files, so a crash
  // can flush one and not the other. The heap is the source of truth —
  // entries whose record is gone (truncated page, wrong OID header) are
  // scrubbed, and intact records the index lost (a torn index was reset by
  // BTree::Open, or an index page never reached disk) are reinserted.
  // kIOError is a real I/O problem, not a tear, and still fails the open.
  if (!store->index_->repaired_on_open()) {
    std::vector<std::pair<int64_t, uint64_t>> dangling;
    GAEA_RETURN_IF_ERROR(store->index_->Scan(
        std::numeric_limits<int64_t>::min(),
        std::numeric_limits<int64_t>::max(),
        [&](int64_t key, uint64_t rid_enc) -> Status {
          StatusOr<std::string> record =
              store->heap_->Read(Rid::Decode(rid_enc));
          if (!record.ok()) {
            if (record.status().code() == StatusCode::kIOError) {
              return record.status();
            }
            dangling.emplace_back(key, rid_enc);
            return Status::OK();
          }
          Oid header = kInvalidOid;
          if (!UnwrapOid(*record, &header) ||
              header != static_cast<Oid>(key)) {
            dangling.emplace_back(key, rid_enc);
          }
          return Status::OK();
        }));
    for (const auto& [key, rid_enc] : dangling) {
      GAEA_RETURN_IF_ERROR(store->index_->Delete(key, rid_enc));
    }
    store->scrubbed_entries_ = dangling.size();
  }
  // Collect the heap's records first, then reconcile against the index:
  // touching the index inside ForEachReadable would nest the index lock
  // under the heap lock — the reverse of every other path (index scan →
  // heap read) and a lock-order cycle.
  std::vector<std::pair<Rid, Oid>> heap_records;
  GAEA_RETURN_IF_ERROR(store->heap_->ForEachReadable(
      [&heap_records](const Rid& rid, const std::string& record) -> Status {
        Oid oid = kInvalidOid;
        if (!UnwrapOid(record, &oid) || oid == kInvalidOid) {
          return Status::OK();  // not a record this store wrote
        }
        heap_records.emplace_back(rid, oid);
        return Status::OK();
      }));
  for (const auto& [rid, oid] : heap_records) {
    if (store->index_->LookupFirst(static_cast<int64_t>(oid)).ok()) {
      continue;
    }
    GAEA_RETURN_IF_ERROR(
        store->index_->Insert(static_cast<int64_t>(oid), rid.Encode()));
    store->restored_entries_++;
  }

  // Recover the next OID as (max stored OID) + 1.
  Oid max_oid = 0;
  GAEA_RETURN_IF_ERROR(store->index_->Scan(
      std::numeric_limits<int64_t>::min(), std::numeric_limits<int64_t>::max(),
      [&max_oid](int64_t key, uint64_t) -> Status {
        max_oid = std::max(max_oid, static_cast<Oid>(key));
        return Status::OK();
      }));
  store->next_oid_ = max_oid + 1;
  return store;
}

StatusOr<Oid> ObjectStore::Put(const std::string& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  Oid oid = next_oid_;
  GAEA_RETURN_IF_ERROR(PutWithOidLocked(oid, payload));
  return oid;
}

Status ObjectStore::PutWithOid(Oid oid, const std::string& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  return PutWithOidLocked(oid, payload);
}

Status ObjectStore::PutWithOidLocked(Oid oid, const std::string& payload) {
  if (oid == kInvalidOid) {
    return Status::InvalidArgument("OID 0 is reserved");
  }
  if (Contains(oid)) {
    return Status::AlreadyExists("object " + std::to_string(oid) +
                                 " already stored");
  }
  GAEA_ASSIGN_OR_RETURN(Rid rid, heap_->Insert(WrapPayload(oid, payload)));
  GAEA_RETURN_IF_ERROR(
      index_->Insert(static_cast<int64_t>(oid), rid.Encode()));
  if (oid >= next_oid_) next_oid_ = oid + 1;
  return Status::OK();
}

StatusOr<std::string> ObjectStore::Get(Oid oid) const {
  auto rid_or = index_->LookupFirst(static_cast<int64_t>(oid));
  if (!rid_or.ok()) {
    return Status::NotFound("object " + std::to_string(oid) + " not stored");
  }
  GAEA_ASSIGN_OR_RETURN(std::string record, heap_->Read(Rid::Decode(*rid_or)));
  Oid header = kInvalidOid;
  if (!UnwrapOid(record, &header) || header != oid) {
    return Status::Corruption("object " + std::to_string(oid) +
                              ": heap record does not carry its OID");
  }
  return record.substr(kOidHeaderBytes);
}

bool ObjectStore::Contains(Oid oid) const {
  auto rid_or = index_->LookupFirst(static_cast<int64_t>(oid));
  return rid_or.ok();
}

Status ObjectStore::Delete(Oid oid) {
  GAEA_ASSIGN_OR_RETURN(uint64_t rid_enc,
                        index_->LookupFirst(static_cast<int64_t>(oid)));
  GAEA_RETURN_IF_ERROR(heap_->Delete(Rid::Decode(rid_enc)));
  return index_->Delete(static_cast<int64_t>(oid), rid_enc);
}

Status ObjectStore::ForEach(
    const std::function<Status(Oid, const std::string&)>& fn) const {
  // Snapshot the index first so the callback runs with no store lock held:
  // callers reconcile *other* indexes from here (Catalog::
  // RebuildDerivedIndexes), and invoking them mid-scan would nest their
  // locks under this index's — a lock-order cycle with paths that consult
  // this store while holding theirs.
  std::vector<std::pair<int64_t, uint64_t>> entries;
  GAEA_RETURN_IF_ERROR(index_->Scan(
      std::numeric_limits<int64_t>::min(), std::numeric_limits<int64_t>::max(),
      [&entries](int64_t key, uint64_t rid_enc) -> Status {
        entries.emplace_back(key, rid_enc);
        return Status::OK();
      }));
  for (const auto& [key, rid_enc] : entries) {
    GAEA_ASSIGN_OR_RETURN(std::string record,
                          heap_->Read(Rid::Decode(rid_enc)));
    if (record.size() < kOidHeaderBytes) {
      return Status::Corruption("object " + std::to_string(key) +
                                ": heap record shorter than OID header");
    }
    GAEA_RETURN_IF_ERROR(fn(static_cast<Oid>(key),
                            record.substr(kOidHeaderBytes)));
  }
  return Status::OK();
}

Status ObjectStore::Flush() {
  GAEA_RETURN_IF_ERROR(heap_->Flush());
  return index_->Flush();
}

}  // namespace gaea
