#include "storage/heap_file.h"

#include <cstring>

namespace gaea {

namespace {

constexpr uint8_t kDataPage = 1;
constexpr uint8_t kOverflowPage = 2;

constexpr uint32_t kSlotCountOff = 2;
constexpr uint32_t kFreeEndOff = 4;
constexpr uint32_t kSlotArrayOff = 6;
constexpr uint32_t kSlotBytes = 6;

constexpr uint16_t kFlagLive = 0;
constexpr uint16_t kFlagDeleted = 1;
constexpr uint16_t kFlagOverflowHead = 2;

// Overflow page header: type u8 (pad to 4), next u32, chunk u32.
constexpr uint32_t kOvNextOff = 4;
constexpr uint32_t kOvLenOff = 8;
constexpr uint32_t kOvDataOff = 12;
constexpr uint32_t kOvCapacity = kPageSize - kOvDataOff;

// Inline payload of an overflow-head slot: first page u32, total length u32.
constexpr uint32_t kOverflowHeadBytes = 8;

// Records larger than this spill to overflow pages.
constexpr uint32_t kMaxInline = kPageSize - kSlotArrayOff - kSlotBytes - 8;

struct SlotInfo {
  uint16_t offset;
  uint16_t size;
  uint16_t flags;
};

SlotInfo ReadSlot(const Page& page, uint16_t slot) {
  uint32_t base = kSlotArrayOff + slot * kSlotBytes;
  return SlotInfo{page.ReadAt<uint16_t>(base), page.ReadAt<uint16_t>(base + 2),
                  page.ReadAt<uint16_t>(base + 4)};
}

void WriteSlot(Page* page, uint16_t slot, SlotInfo info) {
  uint32_t base = kSlotArrayOff + slot * kSlotBytes;
  page->WriteAt<uint16_t>(base, info.offset);
  page->WriteAt<uint16_t>(base + 2, info.size);
  page->WriteAt<uint16_t>(base + 4, info.flags);
}

void InitDataPage(Page* page) {
  page->WriteAt<uint8_t>(0, kDataPage);
  page->WriteAt<uint16_t>(kSlotCountOff, 0);
  page->WriteAt<uint16_t>(kFreeEndOff, static_cast<uint16_t>(kPageSize));
}

// Free bytes available for one more (slot header + cell) on a data page.
uint32_t FreeSpace(const Page& page) {
  uint16_t slots = page.ReadAt<uint16_t>(kSlotCountOff);
  uint16_t free_end = page.ReadAt<uint16_t>(kFreeEndOff);
  uint32_t slots_end = kSlotArrayOff + (slots + 1u) * kSlotBytes;
  if (free_end <= slots_end) return 0;
  return free_end - slots_end;
}

}  // namespace

StatusOr<std::unique_ptr<HeapFile>> HeapFile::Open(const std::string& path,
                                                   size_t pool_capacity,
                                                   Env* env) {
  GAEA_ASSIGN_OR_RETURN(std::unique_ptr<BufferPool> pool,
                        BufferPool::Open(path, pool_capacity, 4, env));
  return std::unique_ptr<HeapFile>(new HeapFile(std::move(pool)));
}

StatusOr<PageGuard> HeapFile::PageWithSpace(uint32_t needed) {
  if (last_data_page_ != kInvalidPageId) {
    GAEA_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(last_data_page_));
    if (guard.page()->ReadAt<uint8_t>(0) == kDataPage &&
        FreeSpace(*guard.page()) >= needed) {
      return guard;
    }
  }
  GAEA_ASSIGN_OR_RETURN(PageGuard guard, pool_->AllocatePage());
  InitDataPage(guard.page());
  guard.MarkDirty();
  last_data_page_ = guard.page_id();
  return guard;
}

StatusOr<Rid> HeapFile::Insert(const std::string& record) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::string inline_payload;
  uint16_t flags = kFlagLive;

  if (record.size() > kMaxInline) {
    // Spill to an overflow chain, last chunk first so each page can link to
    // the next without a second pass.
    flags = kFlagOverflowHead;
    uint32_t next = kInvalidPageId;
    size_t nchunks = (record.size() + kOvCapacity - 1) / kOvCapacity;
    for (size_t i = nchunks; i-- > 0;) {
      size_t begin = i * kOvCapacity;
      size_t len = std::min<size_t>(kOvCapacity, record.size() - begin);
      GAEA_ASSIGN_OR_RETURN(PageGuard ov, pool_->AllocatePage());
      ov.page()->WriteAt<uint8_t>(0, kOverflowPage);
      ov.page()->WriteAt<uint32_t>(kOvNextOff, next);
      ov.page()->WriteAt<uint32_t>(kOvLenOff, static_cast<uint32_t>(len));
      std::memcpy(ov.page()->data() + kOvDataOff, record.data() + begin, len);
      ov.MarkDirty();
      next = ov.page_id();
    }
    inline_payload.resize(kOverflowHeadBytes);
    uint32_t total = static_cast<uint32_t>(record.size());
    std::memcpy(inline_payload.data(), &next, 4);
    std::memcpy(inline_payload.data() + 4, &total, 4);
  } else {
    inline_payload = record;
  }

  uint32_t needed = static_cast<uint32_t>(inline_payload.size()) + kSlotBytes;
  GAEA_ASSIGN_OR_RETURN(PageGuard guard, PageWithSpace(needed));
  Page* page = guard.page();

  uint16_t slots = page->ReadAt<uint16_t>(kSlotCountOff);
  uint16_t free_end = page->ReadAt<uint16_t>(kFreeEndOff);
  uint16_t cell_off =
      static_cast<uint16_t>(free_end - inline_payload.size());
  std::memcpy(page->data() + cell_off, inline_payload.data(),
              inline_payload.size());
  WriteSlot(page, slots,
            SlotInfo{cell_off, static_cast<uint16_t>(inline_payload.size()),
                     flags});
  page->WriteAt<uint16_t>(kSlotCountOff, static_cast<uint16_t>(slots + 1));
  page->WriteAt<uint16_t>(kFreeEndOff, cell_off);
  guard.MarkDirty();
  return Rid{guard.page_id(), slots};
}

StatusOr<std::string> HeapFile::Read(const Rid& rid) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  GAEA_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(rid.page_id));
  const Page* page = guard.page();
  if (page->ReadAt<uint8_t>(0) != kDataPage) {
    return Status::InvalidArgument("RID does not point at a data page");
  }
  uint16_t slots = page->ReadAt<uint16_t>(kSlotCountOff);
  if (rid.slot >= slots) {
    return Status::NotFound("slot " + std::to_string(rid.slot) +
                            " beyond slot count");
  }
  SlotInfo info = ReadSlot(*page, rid.slot);
  if (info.flags == kFlagDeleted) {
    return Status::NotFound("record deleted");
  }
  if (info.flags == kFlagLive) {
    return std::string(reinterpret_cast<const char*>(page->data()) +
                           info.offset,
                       info.size);
  }
  // Overflow chain: the head stays pinned through the guard while the chain
  // is chased, so chain fetches can never invalidate it.
  if (info.size != kOverflowHeadBytes) {
    return Status::Corruption("malformed overflow head slot");
  }
  uint32_t next;
  uint32_t total;
  std::memcpy(&next, page->data() + info.offset, 4);
  std::memcpy(&total, page->data() + info.offset + 4, 4);
  std::string out;
  out.reserve(total);
  while (next != kInvalidPageId) {
    GAEA_ASSIGN_OR_RETURN(PageGuard ov, pool_->FetchPage(next));
    if (ov.page()->ReadAt<uint8_t>(0) != kOverflowPage) {
      return Status::Corruption("overflow chain hits non-overflow page");
    }
    uint32_t len = ov.page()->ReadAt<uint32_t>(kOvLenOff);
    if (len > kOvCapacity) return Status::Corruption("overflow chunk too big");
    out.append(reinterpret_cast<const char*>(ov.page()->data()) + kOvDataOff,
               len);
    next = ov.page()->ReadAt<uint32_t>(kOvNextOff);
    if (out.size() > total) return Status::Corruption("overflow chain overrun");
  }
  if (out.size() != total) {
    return Status::Corruption("overflow chain truncated: expected " +
                              std::to_string(total) + " bytes, got " +
                              std::to_string(out.size()));
  }
  return out;
}

Status HeapFile::Delete(const Rid& rid) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  GAEA_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(rid.page_id));
  Page* page = guard.page();
  if (page->ReadAt<uint8_t>(0) != kDataPage) {
    return Status::InvalidArgument("RID does not point at a data page");
  }
  uint16_t slots = page->ReadAt<uint16_t>(kSlotCountOff);
  if (rid.slot >= slots) return Status::NotFound("no such slot");
  SlotInfo info = ReadSlot(*page, rid.slot);
  if (info.flags == kFlagDeleted) return Status::NotFound("already deleted");
  info.flags = kFlagDeleted;
  WriteSlot(page, rid.slot, info);
  guard.MarkDirty();
  return Status::OK();
}

Status HeapFile::ForEach(
    const std::function<Status(const Rid&, const std::string&)>& fn) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (uint32_t page_id = 0; page_id < pool_->PageCount(); ++page_id) {
    GAEA_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(page_id));
    if (guard.page()->ReadAt<uint8_t>(0) != kDataPage) continue;
    uint16_t slots = guard.page()->ReadAt<uint16_t>(kSlotCountOff);
    // Release before Read/fn re-enter the pool: holding one pinned page per
    // nesting level would make deep scans overflow small pools.
    guard.Release();
    for (uint16_t s = 0; s < slots; ++s) {
      GAEA_ASSIGN_OR_RETURN(PageGuard p, pool_->FetchPage(page_id));
      SlotInfo info = ReadSlot(*p.page(), s);
      p.Release();
      if (info.flags == kFlagDeleted) continue;
      Rid rid{page_id, s};
      GAEA_ASSIGN_OR_RETURN(std::string record, Read(rid));
      GAEA_RETURN_IF_ERROR(fn(rid, record));
    }
  }
  return Status::OK();
}

Status HeapFile::ForEachReadable(
    const std::function<Status(const Rid&, const std::string&)>& fn) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (uint32_t page_id = 0; page_id < pool_->PageCount(); ++page_id) {
    GAEA_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(page_id));
    if (guard.page()->ReadAt<uint8_t>(0) != kDataPage) continue;
    uint16_t slots = guard.page()->ReadAt<uint16_t>(kSlotCountOff);
    guard.Release();
    for (uint16_t s = 0; s < slots; ++s) {
      GAEA_ASSIGN_OR_RETURN(PageGuard p, pool_->FetchPage(page_id));
      SlotInfo info = ReadSlot(*p.page(), s);
      p.Release();
      if (info.flags == kFlagDeleted) continue;
      Rid rid{page_id, s};
      StatusOr<std::string> record = Read(rid);
      if (!record.ok()) {
        if (record.status().code() == StatusCode::kIOError) {
          return record.status();
        }
        continue;  // torn by the crash; nothing to salvage
      }
      GAEA_RETURN_IF_ERROR(fn(rid, *record));
    }
  }
  return Status::OK();
}

StatusOr<int64_t> HeapFile::Count() const {
  int64_t n = 0;
  GAEA_RETURN_IF_ERROR(
      ForEach([&n](const Rid&, const std::string&) -> Status {
        ++n;
        return Status::OK();
      }));
  return n;
}

}  // namespace gaea
