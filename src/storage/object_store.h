// OID-addressed object store: the storage face the catalog and task log see.
//
// Every Gaea data object (an instance of a non-primitive class) is a
// serialized tuple stored under a stable 64-bit OID. Built from a heap file
// (payloads, overflow-chained for rasters) plus a B+tree (OID -> RID).
// Secondary indexes (class -> OID, timestamp -> OID) are maintained by the
// catalog layer on top.

#ifndef GAEA_STORAGE_OBJECT_STORE_H_
#define GAEA_STORAGE_OBJECT_STORE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "storage/btree.h"
#include "storage/heap_file.h"
#include "util/status.h"

namespace gaea {

// Object identifier. OIDs are never reused.
using Oid = uint64_t;
constexpr Oid kInvalidOid = 0;

class ObjectStore {
 public:
  // Opens (creating if needed) the store files `prefix`.heap / `prefix`.idx;
  // all I/O goes through `env`.
  static StatusOr<std::unique_ptr<ObjectStore>> Open(
      const std::string& prefix, size_t pool_capacity = 256,
      Env* env = Env::Default());

  // Stores `payload` under a freshly allocated OID.
  StatusOr<Oid> Put(const std::string& payload);

  // Stores `payload` under a caller-chosen OID (used on journal replay).
  Status PutWithOid(Oid oid, const std::string& payload);

  StatusOr<std::string> Get(Oid oid) const;
  bool Contains(Oid oid) const;
  Status Delete(Oid oid);

  // Visits every live object in OID order.
  Status ForEach(
      const std::function<Status(Oid, const std::string&)>& fn) const;

  int64_t Count() const { return index_->Count(); }
  Oid next_oid() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_oid_;
  }

  // Raises the OID allocator floor. Recovery uses this after a crash that
  // lost index pages: OIDs recorded in the task log must never be handed out
  // again, even if the objects themselves vanished.
  void EnsureNextOidAtLeast(Oid floor) {
    std::lock_guard<std::mutex> lock(mu_);
    if (floor > next_oid_) next_oid_ = floor;
  }

  Status Flush();

  // Crash-reconciliation counters from Open. Scrubbed: index entries whose
  // heap record was gone (the index page reached disk, the heap page did
  // not); the entries were deleted. Restored: intact heap records the index
  // had lost (the reverse tear, or a torn index that BTree::Open reset);
  // reinserted from the records' OID headers.
  size_t scrubbed_entries() const { return scrubbed_entries_; }
  size_t restored_entries() const { return restored_entries_; }

  // Buffer pools backing the store, for stats surfaces.
  BufferPool* heap_pool() { return heap_->pool(); }
  BufferPool* index_pool() { return index_->pool(); }
  const BufferPool* heap_pool() const { return heap_->pool(); }
  const BufferPool* index_pool() const { return index_->pool(); }

 private:
  ObjectStore(std::unique_ptr<HeapFile> heap, std::unique_ptr<BTree> index)
      : heap_(std::move(heap)), index_(std::move(index)) {}

  Status PutWithOidLocked(Oid oid, const std::string& payload);

  // Guards next_oid_ and makes Put (allocate OID + insert) atomic; the heap
  // and index have their own latches for reads that bypass this mutex.
  mutable std::mutex mu_;
  std::unique_ptr<HeapFile> heap_;
  std::unique_ptr<BTree> index_;
  Oid next_oid_ = 1;
  size_t scrubbed_entries_ = 0;
  size_t restored_entries_ = 0;
};

}  // namespace gaea

#endif  // GAEA_STORAGE_OBJECT_STORE_H_
