// Disk-backed B+tree mapping (int64 key, uint64 value) composite entries.
//
// Used by the object store (OID -> RID) and by secondary indexes over data
// objects (timestamp -> OID, class id -> OID). Duplicate `key`s are allowed;
// the composite (key, value) pair is unique. Deletion is lazy (no merge/
// rebalance): entries are removed from leaves but underfull nodes persist,
// which keeps the structure simple and is sufficient for Gaea's append-
// mostly workload (derivations never overwrite history).
//
// Node pages are materialized into an in-memory struct before use and
// written back as a whole, so buffer-pool frame eviction can never
// invalidate a node mid-operation.

#ifndef GAEA_STORAGE_BTREE_H_
#define GAEA_STORAGE_BTREE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "util/status.h"

namespace gaea {

class BTree {
 public:
  // Opens or creates the tree at `path`; all I/O goes through `env`.
  static StatusOr<std::unique_ptr<BTree>> Open(const std::string& path,
                                               size_t pool_capacity = 256,
                                               Env* env = Env::Default());

  // Inserts (key, value). kAlreadyExists if the exact pair is present.
  Status Insert(int64_t key, uint64_t value);

  // Removes (key, value). kNotFound if absent.
  Status Delete(int64_t key, uint64_t value);

  // All values stored under `key`, ascending.
  StatusOr<std::vector<uint64_t>> Lookup(int64_t key) const;

  // First value under `key`; kNotFound when none.
  StatusOr<uint64_t> LookupFirst(int64_t key) const;

  // Visits entries with lo <= key <= hi in ascending (key, value) order.
  Status Scan(int64_t lo, int64_t hi,
              const std::function<Status(int64_t, uint64_t)>& fn) const;

  // Total number of entries.
  int64_t Count() const { return count_.load(std::memory_order_acquire); }

  // Height of the tree (0 when empty); exposed for tests/benches.
  StatusOr<int> Height() const;

  Status Flush();

  // True when Open found the on-disk tree torn (a crash flushed the meta
  // page but not the node pages it references, or vice versa) and reset it
  // to empty. The owner must rebuild from its source of truth — the object
  // store rebuilds the OID index from heap records, the catalog rebuilds
  // secondary indexes from the store.
  bool repaired_on_open() const { return repaired_; }

  BufferPool* pool() { return pool_.get(); }
  const BufferPool* pool() const { return pool_.get(); }

 private:
  struct Key {
    int64_t k;
    uint64_t v;
    auto operator<=>(const Key&) const = default;
  };

  struct Node {
    bool leaf = true;
    // Leaf: entries are the stored pairs. Internal: keys[i] separates
    // children[i] (< keys[i]) from children[i+1] (>= keys[i]);
    // children.size() == keys.size() + 1.
    std::vector<Key> keys;
    std::vector<uint32_t> children;
    uint32_t next_leaf = kInvalidPageId;
  };

  explicit BTree(std::unique_ptr<BufferPool> pool) : pool_(std::move(pool)) {}

  Status LoadMeta();
  Status StoreMeta();
  StatusOr<Node> ReadNode(uint32_t page_id) const;
  Status WriteNode(uint32_t page_id, const Node& node);
  StatusOr<uint32_t> AllocateNode(const Node& node);

  // Finds the leaf page that should contain `key`, recording the root-to-
  // leaf path of page ids when `path` is non-null.
  StatusOr<uint32_t> FindLeaf(Key key, std::vector<uint32_t>* path) const;

  // Splits the overfull node at `page_id` (path gives its ancestors).
  Status SplitUpward(uint32_t page_id, std::vector<uint32_t> path);

  // Structural check run at Open: walks the whole tree, verifying page
  // types, key order, the leaf chain, and that the walked entry count
  // matches the meta page's count. A failure means the on-disk tree is torn
  // (stale or missing pages after a crash).
  Status ValidateTree() const;
  Status ValidateNode(uint32_t page_id, int depth, int64_t* entries,
                      std::vector<uint32_t>* leaves) const;

  // One latch for the whole tree: splits touch several nodes plus the meta
  // page, so structural changes must be atomic. Recursive because public
  // helpers (Lookup -> Scan) nest.
  mutable std::recursive_mutex mu_;
  std::unique_ptr<BufferPool> pool_;
  uint32_t root_ = kInvalidPageId;
  std::atomic<int64_t> count_{0};
  bool repaired_ = false;
};

}  // namespace gaea

#endif  // GAEA_STORAGE_BTREE_H_
