// Fixed-size page abstraction shared by the heap file and the B+tree.
//
// Gaea's first prototype sat on Postgres; this paged storage layer is our
// self-contained substitute (DESIGN.md §2). Pages are 4 KiB, identified by
// a 32-bit page id within one file.

#ifndef GAEA_STORAGE_PAGE_H_
#define GAEA_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>

namespace gaea {

constexpr uint32_t kPageSize = 4096;
constexpr uint32_t kInvalidPageId = 0xFFFFFFFFu;

// Raw in-memory page frame. Readers/writers overlay typed headers on data().
class Page {
 public:
  Page() { std::memset(data_, 0, kPageSize); }

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }

  template <typename T>
  T ReadAt(uint32_t offset) const {
    T v;
    std::memcpy(&v, data_ + offset, sizeof(T));
    return v;
  }
  template <typename T>
  void WriteAt(uint32_t offset, T v) {
    std::memcpy(data_ + offset, &v, sizeof(T));
  }

 private:
  uint8_t data_[kPageSize];
};

}  // namespace gaea

#endif  // GAEA_STORAGE_PAGE_H_
