// Slotted-page heap file with overflow chains for large records (raster
// payloads routinely exceed one page). Records are addressed by RID
// (page id, slot); deletion tombstones the slot.
//
// Page layout (data page):
//   [0]  u8   page type (1 = data, 2 = overflow)
//   [2]  u16  slot count
//   [4]  u16  free_end — offset one past the last free byte (cells grow
//             downward from the page end)
//   [6..] slot array, 6 bytes per slot: u16 cell offset, u16 size, u16 flags
//
// Overflow page: u8 type=2, u32 next page id, u32 chunk length, payload.

#ifndef GAEA_STORAGE_HEAP_FILE_H_
#define GAEA_STORAGE_HEAP_FILE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "storage/buffer_pool.h"
#include "util/status.h"

namespace gaea {

// Record identifier: (page, slot) packed for index payloads.
struct Rid {
  uint32_t page_id = kInvalidPageId;
  uint16_t slot = 0;

  uint64_t Encode() const {
    return (static_cast<uint64_t>(page_id) << 16) | slot;
  }
  static Rid Decode(uint64_t v) {
    return Rid{static_cast<uint32_t>(v >> 16), static_cast<uint16_t>(v & 0xFFFF)};
  }
  bool operator==(const Rid&) const = default;
};

class HeapFile {
 public:
  // Opens or creates the heap at `path`; all I/O goes through `env`.
  static StatusOr<std::unique_ptr<HeapFile>> Open(const std::string& path,
                                                  size_t pool_capacity = 256,
                                                  Env* env = Env::Default());

  // Appends a record; returns its RID.
  StatusOr<Rid> Insert(const std::string& record);

  // Reads a record by RID.
  StatusOr<std::string> Read(const Rid& rid) const;

  // Tombstones a record (overflow chains are unlinked but pages are not
  // recycled — matching the paper's "in no case is the old process
  // overwritten" spirit of append-mostly storage).
  Status Delete(const Rid& rid);

  // Visits every live record in file order. Stop early by returning a
  // non-OK status (propagated to the caller).
  Status ForEach(
      const std::function<Status(const Rid&, const std::string&)>& fn) const;

  // Like ForEach, but records that cannot be read — a torn overflow chain
  // after a crash — are skipped instead of failing the scan. Recovery uses
  // this to salvage every record that survived intact; real I/O errors
  // still propagate.
  Status ForEachReadable(
      const std::function<Status(const Rid&, const std::string&)>& fn) const;

  // Number of live records.
  StatusOr<int64_t> Count() const;

  // Serialized against mutators: page bytes are written under mu_ while
  // holding only a frame pin, which the pool flush cannot see.
  Status Flush() {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return pool_->Flush();
  }

  BufferPool* pool() { return pool_.get(); }
  const BufferPool* pool() const { return pool_.get(); }

 private:
  explicit HeapFile(std::unique_ptr<BufferPool> pool)
      : pool_(std::move(pool)) {}

  // Returns a pinned data page with room for `needed` bytes (slot + cell).
  StatusOr<PageGuard> PageWithSpace(uint32_t needed);

  // One latch for the whole file: slot/free-space bookkeeping spans pages
  // (last_data_page_ hint, overflow chains), so per-page latching would not
  // give atomic inserts. Recursive because ForEach re-enters Read.
  mutable std::recursive_mutex mu_;
  std::unique_ptr<BufferPool> pool_;
  // Hint: last data page that accepted an insert.
  uint32_t last_data_page_ = kInvalidPageId;
};

}  // namespace gaea

#endif  // GAEA_STORAGE_HEAP_FILE_H_
