// LRU buffer pool over one file. The heap file and B+tree allocate, fetch
// and release pages through this class; dirty pages are written back on
// eviction and on Flush().
//
// Single-threaded by design: the Gaea kernel (like the 1992 prototype) runs
// one analysis session at a time, so the pool trades locking for simplicity.

#ifndef GAEA_STORAGE_BUFFER_POOL_H_
#define GAEA_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "storage/page.h"
#include "util/status.h"

namespace gaea {

class BufferPool {
 public:
  // Opens (creating if missing) the file at `path` with capacity frames.
  static StatusOr<std::unique_ptr<BufferPool>> Open(const std::string& path,
                                                    size_t capacity = 256);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Allocates a fresh zeroed page at the end of the file; returns its id.
  // The page is fetched (pinned into the pool) as a side effect.
  StatusOr<uint32_t> AllocatePage();

  // Returns a pointer to the in-pool frame for `page_id`, reading it from
  // disk if needed. The pointer stays valid until the next pool operation
  // that may evict (callers copy what they need or finish their mutation
  // before calling back into the pool). Call MarkDirty after mutating.
  StatusOr<Page*> FetchPage(uint32_t page_id);

  Status MarkDirty(uint32_t page_id);

  // Writes all dirty frames back to the file.
  Status Flush();

  // Number of pages in the file.
  uint32_t PageCount() const { return page_count_; }

  // Cache statistics (exposed for the storage bench).
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  BufferPool(int fd, uint32_t page_count, size_t capacity);

  struct Frame {
    uint32_t page_id;
    bool dirty = false;
    Page page;
  };

  Status WriteFrame(const Frame& frame);
  Status EvictOne();

  int fd_;
  uint32_t page_count_;
  size_t capacity_;
  // LRU list: front = most recently used.
  std::list<Frame> frames_;
  std::unordered_map<uint32_t, std::list<Frame>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace gaea

#endif  // GAEA_STORAGE_BUFFER_POOL_H_
