// Sharded LRU buffer pool over one file. The heap file and B+tree allocate,
// fetch and release pages through this class; dirty pages are written back
// on eviction and on Flush().
//
// Thread-safe: frames are spread over shards (page_id % shard_count), each
// with its own latch, LRU list and counters, so fetches of different pages
// rarely contend. Callers hold pages through a pinning PageGuard (RAII):
// a pinned frame is never evicted, replacing the old single-threaded
// "pointer valid until the next pool call" contract. MarkDirty lives on the
// guard, so only a pinned page can be dirtied.
//
// When every frame of a shard is pinned at capacity, the shard temporarily
// overflows its frame budget instead of failing: a burst of guards (e.g. an
// overflow chain walk) must not deadlock against the eviction policy.

#ifndef GAEA_STORAGE_BUFFER_POOL_H_
#define GAEA_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/page.h"
#include "util/env.h"
#include "util/status.h"

namespace gaea {

class BufferPool {
 public:
  // Opens (creating if missing) the file at `path` with `capacity` frames
  // spread over `shards` latched shards. All I/O goes through `env`. A
  // trailing partial page (a write torn by a crash) is truncated away on
  // open, mirroring the journal's torn-tail rule; creating the file fsyncs
  // the parent directory.
  static StatusOr<std::unique_ptr<BufferPool>> Open(const std::string& path,
                                                    size_t capacity = 256,
                                                    size_t shards = 4,
                                                    Env* env = Env::Default());
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

 private:
  struct Frame {
    uint32_t page_id = kInvalidPageId;
    std::atomic<uint32_t> pins{0};
    std::atomic<bool> dirty{false};
    Page page;
  };

  struct Shard {
    mutable std::mutex mu;
    // LRU list: front = most recently used. Frames never move in memory
    // (list nodes are stable), so guards can hold Frame* across reordering.
    std::list<Frame> frames;
    std::unordered_map<uint32_t, std::list<Frame>::iterator> index;
    size_t capacity = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

 public:
  // Pin handle for one page frame. While alive, the frame stays resident;
  // destruction (or Release) unpins it. Movable, not copyable.
  class PageGuard {
   public:
    PageGuard() = default;
    PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
    PageGuard& operator=(PageGuard&& other) noexcept {
      if (this != &other) {
        Release();
        frame_ = other.frame_;
        other.frame_ = nullptr;
      }
      return *this;
    }
    ~PageGuard() { Release(); }

    bool valid() const { return frame_ != nullptr; }
    uint32_t page_id() const { return frame_->page_id; }
    Page* page() { return &frame_->page; }
    const Page* page() const { return &frame_->page; }

    // Marks the pinned page dirty; it reaches disk on eviction or Flush.
    void MarkDirty() { frame_->dirty.store(true, std::memory_order_release); }

    // Unpins early (the guard becomes invalid).
    void Release() {
      if (frame_ != nullptr) {
        frame_->pins.fetch_sub(1, std::memory_order_acq_rel);
        frame_ = nullptr;
      }
    }

   private:
    friend class BufferPool;
    explicit PageGuard(Frame* frame) : frame_(frame) {}
    Frame* frame_ = nullptr;
  };

  // Allocates a fresh zeroed page at the end of the file; returns it pinned
  // and already marked dirty (a new page must reach disk).
  StatusOr<PageGuard> AllocatePage();

  // Returns a pinned guard for `page_id`, reading the page from disk if it
  // is not resident.
  StatusOr<PageGuard> FetchPage(uint32_t page_id);

  // Writes all dirty frames back to the file.
  Status Flush();

  // Number of pages in the file.
  uint32_t PageCount() const {
    return page_count_.load(std::memory_order_acquire);
  }

  // ---- statistics (storage bench, kernel stats) ----
  struct ShardStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t resident = 0;  // frames currently cached
    size_t pinned = 0;    // frames with at least one outstanding guard
  };
  std::vector<ShardStats> PerShardStats() const;
  size_t shard_count() const { return shards_.size(); }
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

 private:
  BufferPool(std::unique_ptr<RandomAccessFile> file, uint32_t page_count,
             size_t capacity, size_t shards);

  Shard& ShardFor(uint32_t page_id) {
    return shards_[page_id % shards_.size()];
  }
  Status WriteFrame(const Frame& frame);
  // Evicts one unpinned frame from `shard` (latch held) if any; a fully
  // pinned shard is left to overflow.
  Status MaybeEvict(Shard* shard);
  // Inserts a fresh pinned frame for `page_id` at the shard's LRU front
  // (latch held). The caller fills the page bytes while holding the pin.
  StatusOr<Frame*> InsertFrame(Shard* shard, uint32_t page_id);

  std::unique_ptr<RandomAccessFile> file_;
  std::atomic<uint32_t> page_count_;
  std::vector<Shard> shards_;
};

using PageGuard = BufferPool::PageGuard;

}  // namespace gaea

#endif  // GAEA_STORAGE_BUFFER_POOL_H_
