// Append-only journal with per-record CRC32.
//
// Gaea's catalog (class/process/concept definitions) and task log are
// persisted as a journal of self-describing records: definitions are never
// overwritten (the paper: "In no case is the old process overwritten"), so
// an append-only log is the natural durable representation. Replay stops
// cleanly at the first torn/corrupt record, tolerating a crash mid-append.
//
// All file I/O goes through an Env (util/env.h), so the journal can be
// exercised under injected faults; see docs/ROBUSTNESS.md for the crash
// matrix this layer is tested against.

#ifndef GAEA_STORAGE_JOURNAL_H_
#define GAEA_STORAGE_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/env.h"
#include "util/status.h"

namespace gaea {

// CRC-32 (IEEE 802.3 polynomial) of `data`.
uint32_t Crc32(const void* data, size_t size);

// One journal frame ([u32 len][u32 crc][payload]) as bytes. Snapshot files
// and archive segments (src/recovery/) share the journal's on-disk framing,
// so one reader — Journal::ReplayFile — parses all three.
std::string EncodeJournalFrame(std::string_view record);

// When appended records become durable (journal Sync policy):
//   kNone  — never fsynced; a crash may lose anything since open.
//   kOs    — fsynced at Sync() points (kernel Flush, server shutdown); a
//            crash may lose records appended since the last Sync. Default.
//   kFsync — fsynced on every Append; a crash loses at most a torn tail.
enum class DurabilityMode : uint8_t { kNone = 0, kOs = 1, kFsync = 2 };

const char* DurabilityModeName(DurabilityMode mode);
StatusOr<DurabilityMode> ParseDurabilityMode(std::string_view text);

// Optional recovery override for a journal-backed component's Open: first
// `load_snapshot` streams checkpoint records through the component's normal
// replay path, then the live journal replays only from `start_lsn`. The
// component stays ignorant of checkpoint file formats — the kernel builds
// one of these per component from a RecoveryPlan (src/recovery/).
struct JournalRecovery {
  std::function<Status(const std::function<Status(const std::string&)>& apply)>
      load_snapshot;
  uint64_t start_lsn = 0;
};

class Journal {
 public:
  // Opens (creating if needed) the journal file for appending. Creating the
  // file also fsyncs its parent directory, so a crash immediately after
  // first open cannot lose the directory entry itself.
  static StatusOr<std::unique_ptr<Journal>> Open(const std::string& path,
                                                 Env* env = Env::Default());
  ~Journal() = default;

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Appends one record (length + crc + payload), looping over short writes.
  // A failed append that left a partial frame on disk is healed in place by
  // truncating back to the last good record boundary; if even that fails,
  // the journal refuses further appends (kFailedPrecondition) rather than
  // bury a torn frame under new records.
  Status Append(const std::string& record);

  // Replays every intact record with LSN >= `start_lsn` in order, reading
  // the file in fixed-size chunks (startup memory stays flat no matter how
  // large the log grew). A record's LSN is its index in the journal's full
  // history: the file's base LSN (0 for a never-truncated journal, recorded
  // in a leading control record after TruncatePrefix) plus its position in
  // the file. A torn tail (truncated frame or CRC mismatch on the final
  // record) ends replay without error and is truncated away, so subsequent
  // appends continue a clean log; corruption before the tail is reported
  // and leaves the file untouched. start_lsn below the file's base is
  // kCorruption — those records were truncated away and cannot be replayed.
  // Holds the append lock for the duration, so `fn` must not Append to
  // this journal. Also (re)computes base_lsn()/record_count().
  Status Replay(const std::function<Status(const std::string&)>& fn,
                uint64_t start_lsn = 0) const;

  // Replays any journal-format file (snapshot, archive segment, or a
  // journal not opened for append) without taking ownership of it. `fn`
  // receives each record's LSN (file base + position) and payload. With
  // `strict` set, a torn or truncated tail is kCorruption instead of a
  // clean stop — snapshot files are written whole and renamed into place,
  // so any deviation means the file is damaged. A missing file is
  // kNotFound either way.
  static Status ReplayFile(
      Env* env, const std::string& path, bool strict,
      const std::function<Status(uint64_t lsn, const std::string&)>& fn);

  // Reads intact records with LSN >= `from` into `out`, stopping after
  // `max_records` records or roughly `max_bytes` payload bytes (at least one
  // record is returned when any qualifies). `*next` is set to one past the
  // last record delivered (== `from` when the journal holds nothing at or
  // after it — the caller is at the tail). Built for the replication
  // shipper: unlike Replay, a `from` below base_lsn() is kOutOfRange, not
  // kCorruption — the prefix was moved to an archive segment by a concurrent
  // TruncatePrefix, and the caller must ship from the archive chain instead.
  // Holds the append lock for the duration, so the read never observes a
  // half-truncated file.
  Status ReadRange(uint64_t from, size_t max_records, size_t max_bytes,
                   std::vector<std::string>* out, uint64_t* next) const;

  // Archives and drops the frame prefix [base_lsn(), upto_lsn): the dropped
  // frames are streamed into a fresh journal-format file at `archive_path`
  // (control record carrying the old base, written to `archive_path`.tmp,
  // then atomically renamed), and the live file is rewritten — also via
  // tmp + rename — to a control record with base `upto_lsn` followed by
  // the surviving tail. The append handle is reopened on the new file.
  // No-op when upto_lsn <= base_lsn(); requires a fully replayed journal
  // (Replay computes the record accounting this depends on).
  Status TruncatePrefix(uint64_t upto_lsn, const std::string& archive_path);

  // First LSN still present in the file (0 until a TruncatePrefix).
  uint64_t base_lsn() const {
    return base_lsn_.load(std::memory_order_acquire);
  }
  // One past the last record's LSN — the journal's total logical length.
  // Valid after Replay; kept current by Append and TruncatePrefix.
  uint64_t record_count() const {
    return record_count_.load(std::memory_order_acquire);
  }
  // Bytes of intact records currently in the file.
  uint64_t size_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }

  // Number of records appended through this handle (not total in file).
  int64_t appended() const { return appended_.load(std::memory_order_acquire); }

  // Forces data to disk per the durability mode (no-op under kNone).
  Status Sync();

  void set_durability(DurabilityMode mode) {
    durability_.store(mode, std::memory_order_release);
  }
  DurabilityMode durability() const {
    return durability_.load(std::memory_order_acquire);
  }

 private:
  Journal(std::unique_ptr<WritableFile> file, std::string path, Env* env,
          uint64_t size)
      : env_(env), file_(std::move(file)), path_(std::move(path)),
        size_(size) {}

  // Serializes appends so concurrent records never interleave in the file.
  mutable std::mutex mu_;
  Env* env_;
  std::unique_ptr<WritableFile> file_;
  std::string path_;
  mutable uint64_t size_ = 0;   // bytes of intact records (guarded by mu_)
  mutable bool broken_ = false; // torn tail on disk that could not be healed
  mutable std::atomic<uint64_t> base_lsn_{0};  // set by Replay/TruncatePrefix
  mutable std::atomic<uint64_t> record_count_{0};
  std::atomic<int64_t> appended_{0};
  std::atomic<DurabilityMode> durability_{DurabilityMode::kOs};
};

}  // namespace gaea

#endif  // GAEA_STORAGE_JOURNAL_H_
