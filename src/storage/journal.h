// Append-only journal with per-record CRC32.
//
// Gaea's catalog (class/process/concept definitions) and task log are
// persisted as a journal of self-describing records: definitions are never
// overwritten (the paper: "In no case is the old process overwritten"), so
// an append-only log is the natural durable representation. Replay stops
// cleanly at the first torn/corrupt record, tolerating a crash mid-append.

#ifndef GAEA_STORAGE_JOURNAL_H_
#define GAEA_STORAGE_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "util/status.h"

namespace gaea {

// CRC-32 (IEEE 802.3 polynomial) of `data`.
uint32_t Crc32(const void* data, size_t size);

class Journal {
 public:
  // Opens (creating if needed) the journal file for appending.
  static StatusOr<std::unique_ptr<Journal>> Open(const std::string& path);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Appends one record (length + crc + payload) and flushes to the OS.
  Status Append(const std::string& record);

  // Replays every intact record in order, reading the file in fixed-size
  // chunks (startup memory stays flat no matter how large the log grew). A
  // torn tail (truncated frame or CRC mismatch on the final record) ends
  // replay without error and is truncated away, so subsequent appends
  // continue a clean log; corruption before the tail is reported and leaves
  // the file untouched. Holds the append lock for the duration, so `fn`
  // must not Append to this journal.
  Status Replay(const std::function<Status(const std::string&)>& fn) const;

  // Number of records appended through this handle (not total in file).
  int64_t appended() const { return appended_.load(std::memory_order_acquire); }

  // Forces data to disk (fsync).
  Status Sync();

 private:
  Journal(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  // Serializes appends so concurrent records never interleave in the file.
  mutable std::mutex mu_;
  int fd_;
  std::string path_;
  std::atomic<int64_t> appended_{0};
};

}  // namespace gaea

#endif  // GAEA_STORAGE_JOURNAL_H_
