#include "storage/btree.h"

#include <algorithm>
#include <cstring>

namespace gaea {

namespace {

constexpr uint8_t kMetaPage = 3;
constexpr uint8_t kInternalPage = 4;
constexpr uint8_t kLeafPage = 5;

// Meta page layout: type u8, root u32 @4, count i64 @8.
constexpr uint32_t kMetaRootOff = 4;
constexpr uint32_t kMetaCountOff = 8;

// Node page layout: type u8, nkeys u16 @2, next_leaf u32 @4 (leaf only),
// entries from @8. Leaf entry: key i64 + value u64 (16 B). Internal entry:
// key i64 + value u64 (16 B); child array of u32 follows the key array.
constexpr uint32_t kNodeNKeysOff = 2;
constexpr uint32_t kNodeNextOff = 4;
constexpr uint32_t kNodeEntriesOff = 8;

// Capacities chosen so a full node plus one extra entry still fits the page
// during split handling.
constexpr size_t kLeafMax = (kPageSize - kNodeEntriesOff) / 16 - 1;     // 254
constexpr size_t kInternalMax = (kPageSize - kNodeEntriesOff) / 20 - 1; // 203

}  // namespace

StatusOr<std::unique_ptr<BTree>> BTree::Open(const std::string& path,
                                             size_t pool_capacity, Env* env) {
  GAEA_ASSIGN_OR_RETURN(std::unique_ptr<BufferPool> pool,
                        BufferPool::Open(path, pool_capacity, 4, env));
  std::unique_ptr<BTree> tree(new BTree(std::move(pool)));
  if (tree->pool_->PageCount() == 0) {
    GAEA_ASSIGN_OR_RETURN(PageGuard meta, tree->pool_->AllocatePage());
    if (meta.page_id() != 0) return Status::Internal("meta page must be page 0");
    meta.Release();
    GAEA_RETURN_IF_ERROR(tree->StoreMeta());
  } else {
    Status loaded = tree->LoadMeta();
    Status valid = loaded.ok() ? tree->ValidateTree() : loaded;
    if (!valid.ok()) {
      // A real I/O problem is not a tear; surface it.
      if (valid.code() == StatusCode::kIOError) return valid;
      // The tree is torn — a crash flushed some of its pages but not
      // others. Reset to empty rather than fail: the owner rebuilds from
      // its source of truth (see repaired_on_open). Orphaned node pages
      // stay in the file as dead space, matching lazy deletion.
      tree->root_ = kInvalidPageId;
      tree->count_ = 0;
      GAEA_RETURN_IF_ERROR(tree->StoreMeta());
      tree->repaired_ = true;
    }
  }
  return tree;
}

Status BTree::ValidateTree() const {
  if (root_ == kInvalidPageId) {
    if (count_ != 0) {
      return Status::Corruption("btree: empty tree with count " +
                                std::to_string(count_.load()));
    }
    return Status::OK();
  }
  int64_t entries = 0;
  std::vector<uint32_t> leaves;
  GAEA_RETURN_IF_ERROR(ValidateNode(root_, 0, &entries, &leaves));
  if (entries != count_) {
    return Status::Corruption(
        "btree: meta count " + std::to_string(count_.load()) + " but walk found " +
        std::to_string(entries) + " entries");
  }
  // The leaf chain Scan follows must link exactly the leaves the tree
  // reaches, left to right.
  for (size_t i = 0; i < leaves.size(); ++i) {
    GAEA_ASSIGN_OR_RETURN(Node leaf, ReadNode(leaves[i]));
    uint32_t want = i + 1 < leaves.size() ? leaves[i + 1] : kInvalidPageId;
    if (leaf.next_leaf != want) {
      return Status::Corruption("btree: broken leaf chain at page " +
                                std::to_string(leaves[i]));
    }
  }
  return Status::OK();
}

Status BTree::ValidateNode(uint32_t page_id, int depth, int64_t* entries,
                           std::vector<uint32_t>* leaves) const {
  if (depth > 64) {
    return Status::Corruption("btree: deeper than 64 levels (cycle?)");
  }
  GAEA_ASSIGN_OR_RETURN(Node node, ReadNode(page_id));
  if (!std::is_sorted(node.keys.begin(), node.keys.end())) {
    return Status::Corruption("btree: unsorted keys in page " +
                              std::to_string(page_id));
  }
  if (node.leaf) {
    *entries += static_cast<int64_t>(node.keys.size());
    leaves->push_back(page_id);
    return Status::OK();
  }
  for (uint32_t child : node.children) {
    GAEA_RETURN_IF_ERROR(ValidateNode(child, depth + 1, entries, leaves));
  }
  return Status::OK();
}

Status BTree::LoadMeta() {
  GAEA_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(0));
  const Page* page = guard.page();
  if (page->ReadAt<uint8_t>(0) != kMetaPage) {
    return Status::Corruption("btree: page 0 is not a meta page");
  }
  root_ = page->ReadAt<uint32_t>(kMetaRootOff);
  count_ = page->ReadAt<int64_t>(kMetaCountOff);
  return Status::OK();
}

Status BTree::StoreMeta() {
  GAEA_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(0));
  Page* page = guard.page();
  page->WriteAt<uint8_t>(0, kMetaPage);
  page->WriteAt<uint32_t>(kMetaRootOff, root_);
  page->WriteAt<int64_t>(kMetaCountOff, count_);
  guard.MarkDirty();
  return Status::OK();
}

StatusOr<BTree::Node> BTree::ReadNode(uint32_t page_id) const {
  GAEA_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(page_id));
  const Page* page = guard.page();
  uint8_t type = page->ReadAt<uint8_t>(0);
  if (type != kInternalPage && type != kLeafPage) {
    return Status::Corruption("btree: page " + std::to_string(page_id) +
                              " is not a node page");
  }
  Node node;
  node.leaf = type == kLeafPage;
  uint16_t nkeys = page->ReadAt<uint16_t>(kNodeNKeysOff);
  node.next_leaf = page->ReadAt<uint32_t>(kNodeNextOff);
  node.keys.reserve(nkeys);
  uint32_t off = kNodeEntriesOff;
  for (uint16_t i = 0; i < nkeys; ++i) {
    Key key;
    key.k = page->ReadAt<int64_t>(off);
    key.v = page->ReadAt<uint64_t>(off + 8);
    node.keys.push_back(key);
    off += 16;
  }
  if (!node.leaf) {
    node.children.reserve(nkeys + 1);
    for (uint16_t i = 0; i <= nkeys; ++i) {
      node.children.push_back(page->ReadAt<uint32_t>(off));
      off += 4;
    }
  }
  return node;
}

Status BTree::WriteNode(uint32_t page_id, const Node& node) {
  GAEA_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(page_id));
  Page* page = guard.page();
  page->WriteAt<uint8_t>(0, node.leaf ? kLeafPage : kInternalPage);
  page->WriteAt<uint16_t>(kNodeNKeysOff, static_cast<uint16_t>(node.keys.size()));
  page->WriteAt<uint32_t>(kNodeNextOff, node.next_leaf);
  uint32_t off = kNodeEntriesOff;
  for (const Key& key : node.keys) {
    page->WriteAt<int64_t>(off, key.k);
    page->WriteAt<uint64_t>(off + 8, key.v);
    off += 16;
  }
  if (!node.leaf) {
    for (uint32_t child : node.children) {
      page->WriteAt<uint32_t>(off, child);
      off += 4;
    }
  }
  guard.MarkDirty();
  return Status::OK();
}

StatusOr<uint32_t> BTree::AllocateNode(const Node& node) {
  GAEA_ASSIGN_OR_RETURN(PageGuard guard, pool_->AllocatePage());
  uint32_t page_id = guard.page_id();
  guard.Release();
  GAEA_RETURN_IF_ERROR(WriteNode(page_id, node));
  return page_id;
}

StatusOr<uint32_t> BTree::FindLeaf(Key key,
                                   std::vector<uint32_t>* path) const {
  if (root_ == kInvalidPageId) {
    return Status::NotFound("btree empty");
  }
  uint32_t page_id = root_;
  while (true) {
    GAEA_ASSIGN_OR_RETURN(Node node, ReadNode(page_id));
    if (node.leaf) return page_id;
    if (path != nullptr) path->push_back(page_id);
    // children[i] holds keys < keys[i]; descend to the first separator
    // greater than `key`.
    size_t i = std::upper_bound(node.keys.begin(), node.keys.end(), key) -
               node.keys.begin();
    page_id = node.children[i];
  }
}

Status BTree::SplitUpward(uint32_t page_id, std::vector<uint32_t> path) {
  GAEA_ASSIGN_OR_RETURN(Node node, ReadNode(page_id));
  size_t max = node.leaf ? kLeafMax : kInternalMax;
  if (node.keys.size() <= max) return Status::OK();

  Node right;
  right.leaf = node.leaf;
  Key separator;
  if (node.leaf) {
    size_t mid = node.keys.size() / 2;
    right.keys.assign(node.keys.begin() + mid, node.keys.end());
    node.keys.resize(mid);
    separator = right.keys.front();
    right.next_leaf = node.next_leaf;
  } else {
    size_t mid = node.keys.size() / 2;
    separator = node.keys[mid];
    right.keys.assign(node.keys.begin() + mid + 1, node.keys.end());
    right.children.assign(node.children.begin() + mid + 1,
                          node.children.end());
    node.keys.resize(mid);
    node.children.resize(mid + 1);
  }
  GAEA_ASSIGN_OR_RETURN(uint32_t right_id, AllocateNode(right));
  if (node.leaf) {
    node.next_leaf = right_id;
  }
  GAEA_RETURN_IF_ERROR(WriteNode(page_id, node));

  if (path.empty()) {
    // Splitting the root: create a new root above.
    Node new_root;
    new_root.leaf = false;
    new_root.keys = {separator};
    new_root.children = {page_id, right_id};
    GAEA_ASSIGN_OR_RETURN(root_, AllocateNode(new_root));
    return StoreMeta();
  }

  uint32_t parent_id = path.back();
  path.pop_back();
  GAEA_ASSIGN_OR_RETURN(Node parent, ReadNode(parent_id));
  size_t pos = std::upper_bound(parent.keys.begin(), parent.keys.end(),
                                separator) -
               parent.keys.begin();
  parent.keys.insert(parent.keys.begin() + pos, separator);
  parent.children.insert(parent.children.begin() + pos + 1, right_id);
  GAEA_RETURN_IF_ERROR(WriteNode(parent_id, parent));
  return SplitUpward(parent_id, std::move(path));
}

Status BTree::Insert(int64_t key, uint64_t value) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  Key composite{key, value};
  if (root_ == kInvalidPageId) {
    Node leaf;
    leaf.leaf = true;
    leaf.keys = {composite};
    GAEA_ASSIGN_OR_RETURN(root_, AllocateNode(leaf));
    count_ = 1;
    return StoreMeta();
  }
  std::vector<uint32_t> path;
  GAEA_ASSIGN_OR_RETURN(uint32_t leaf_id, FindLeaf(composite, &path));
  GAEA_ASSIGN_OR_RETURN(Node leaf, ReadNode(leaf_id));
  auto it = std::lower_bound(leaf.keys.begin(), leaf.keys.end(), composite);
  if (it != leaf.keys.end() && *it == composite) {
    return Status::AlreadyExists("btree entry (" + std::to_string(key) + "," +
                                 std::to_string(value) + ") exists");
  }
  leaf.keys.insert(it, composite);
  GAEA_RETURN_IF_ERROR(WriteNode(leaf_id, leaf));
  if (leaf.keys.size() > kLeafMax) {
    GAEA_RETURN_IF_ERROR(SplitUpward(leaf_id, std::move(path)));
  }
  count_++;
  return StoreMeta();
}

Status BTree::Delete(int64_t key, uint64_t value) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  Key composite{key, value};
  if (root_ == kInvalidPageId) return Status::NotFound("btree empty");
  GAEA_ASSIGN_OR_RETURN(uint32_t leaf_id, FindLeaf(composite, nullptr));
  GAEA_ASSIGN_OR_RETURN(Node leaf, ReadNode(leaf_id));
  auto it = std::lower_bound(leaf.keys.begin(), leaf.keys.end(), composite);
  if (it == leaf.keys.end() || !(*it == composite)) {
    return Status::NotFound("btree entry not found");
  }
  leaf.keys.erase(it);
  GAEA_RETURN_IF_ERROR(WriteNode(leaf_id, leaf));
  count_--;
  return StoreMeta();
}

Status BTree::Scan(int64_t lo, int64_t hi,
                   const std::function<Status(int64_t, uint64_t)>& fn) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (root_ == kInvalidPageId || lo > hi) return Status::OK();
  Key from{lo, 0};
  GAEA_ASSIGN_OR_RETURN(uint32_t leaf_id, FindLeaf(from, nullptr));
  while (leaf_id != kInvalidPageId) {
    GAEA_ASSIGN_OR_RETURN(Node leaf, ReadNode(leaf_id));
    for (const Key& key : leaf.keys) {
      if (key.k < lo) continue;
      if (key.k > hi) return Status::OK();
      GAEA_RETURN_IF_ERROR(fn(key.k, key.v));
    }
    leaf_id = leaf.next_leaf;
  }
  return Status::OK();
}

StatusOr<std::vector<uint64_t>> BTree::Lookup(int64_t key) const {
  std::vector<uint64_t> out;
  GAEA_RETURN_IF_ERROR(Scan(key, key, [&out](int64_t, uint64_t v) -> Status {
    out.push_back(v);
    return Status::OK();
  }));
  return out;
}

StatusOr<uint64_t> BTree::LookupFirst(int64_t key) const {
  GAEA_ASSIGN_OR_RETURN(std::vector<uint64_t> values, Lookup(key));
  if (values.empty()) {
    return Status::NotFound("no entry for key " + std::to_string(key));
  }
  return values.front();
}

StatusOr<int> BTree::Height() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (root_ == kInvalidPageId) return 0;
  int height = 1;
  uint32_t page_id = root_;
  while (true) {
    GAEA_ASSIGN_OR_RETURN(Node node, ReadNode(page_id));
    if (node.leaf) return height;
    page_id = node.children[0];
    height++;
  }
}

Status BTree::Flush() {
  // Page bytes are mutated under mu_ while holding only a frame pin, so the
  // pool flush must exclude mutators or it reads a page mid-write.
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return pool_->Flush();
}

}  // namespace gaea
