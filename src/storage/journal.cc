#include "storage/journal.h"

#include <cstring>

namespace gaea {

namespace {

struct CrcTable {
  uint32_t entries[256];
  CrcTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  // Magic-static: initialization is thread-safe, unlike the old lazy flag.
  static const CrcTable crc_table;
  const uint32_t* table = crc_table.entries;
  uint32_t crc = 0xFFFFFFFFu;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

const char* DurabilityModeName(DurabilityMode mode) {
  switch (mode) {
    case DurabilityMode::kNone: return "none";
    case DurabilityMode::kOs: return "os";
    case DurabilityMode::kFsync: return "fsync";
  }
  return "unknown";
}

StatusOr<DurabilityMode> ParseDurabilityMode(std::string_view text) {
  if (text == "none") return DurabilityMode::kNone;
  if (text == "os") return DurabilityMode::kOs;
  if (text == "fsync") return DurabilityMode::kFsync;
  return Status::InvalidArgument("unknown durability mode '" +
                                 std::string(text) +
                                 "' (want none, os or fsync)");
}

StatusOr<std::unique_ptr<Journal>> Journal::Open(const std::string& path,
                                                 Env* env) {
  bool existed = env->FileExists(path);
  GAEA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                        env->NewWritableFile(path));
  if (!existed) {
    // The file's directory entry must survive a crash too, or recovery
    // reopens an empty directory and silently starts a fresh history.
    GAEA_RETURN_IF_ERROR(env->SyncParentDir(path));
  }
  uint64_t size = 0;
  if (existed) {
    GAEA_ASSIGN_OR_RETURN(size, env->FileSize(path));
  }
  return std::unique_ptr<Journal>(
      new Journal(std::move(file), path, env, size));
}

Status Journal::Append(const std::string& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (broken_) {
    return Status::FailedPrecondition(
        "journal " + path_ + " has an unhealed torn tail; appends refused");
  }
  uint32_t len = static_cast<uint32_t>(record.size());
  uint32_t crc = Crc32(record.data(), record.size());
  std::string frame;
  frame.reserve(8 + record.size());
  frame.append(reinterpret_cast<const char*>(&len), 4);
  frame.append(reinterpret_cast<const char*>(&crc), 4);
  frame.append(record);
  Status written = file_->Append(frame);
  if (!written.ok()) {
    // A prefix of the frame may be on disk. Heal in place: truncate back to
    // the last good record boundary so the log stays appendable. Replay
    // would do the same, but a live server should not have to reopen.
    Status healed = env_->Truncate(path_, size_);
    if (!healed.ok()) broken_ = true;
    return Status::IOError("journal append at offset " +
                           std::to_string(size_) + ": " + written.message() +
                           (healed.ok() ? " (torn tail truncated)"
                                        : "; tail truncation also failed: " +
                                              healed.message()));
  }
  size_ += frame.size();
  if (durability() == DurabilityMode::kFsync) {
    GAEA_RETURN_IF_ERROR(file_->Sync());
  }
  appended_++;
  return Status::OK();
}

Status Journal::Replay(
    const std::function<Status(const std::string&)>& fn) const {
  // Held for the whole replay: a torn tail is truncated by path below, and
  // doing that concurrently with an in-progress Append would mistake the
  // half-written record for the tail and truncate live data.
  std::lock_guard<std::mutex> lock(mu_);
  auto file_or = env_->NewSequentialFile(path_);
  if (!file_or.ok()) {
    if (file_or.status().code() == StatusCode::kNotFound) {
      return Status::OK();  // nothing persisted yet
    }
    return file_or.status();
  }
  std::unique_ptr<SequentialFile> rf = *std::move(file_or);

  // Fixed-size chunked reads: a long-lived server's task/process journals
  // can grow large, and replay must not spike memory by slurping the whole
  // file. The rolling buffer holds at most one record plus one chunk.
  constexpr size_t kChunk = 64 * 1024;
  std::string buf;
  size_t pos = 0;           // parse cursor within buf
  uint64_t consumed = 0;    // file offset of buf[0]
  bool eof = false;

  // Ensures buf holds at least `need` unparsed bytes or EOF was reached.
  auto fill = [&](size_t need) -> Status {
    while (!eof && buf.size() - pos < need) {
      if (pos >= kChunk) {
        consumed += pos;
        buf.erase(0, pos);
        pos = 0;
      }
      char chunk[kChunk];
      GAEA_ASSIGN_OR_RETURN(size_t n, rf->Read(sizeof(chunk), chunk));
      if (n == 0) {
        eof = true;
        break;
      }
      buf.append(chunk, n);
    }
    return Status::OK();
  };

  uint64_t good_end = 0;  // file offset just past the last intact record
  bool torn = false;      // partial/corrupt tail to truncate away
  Status result = Status::OK();
  for (;;) {
    result = fill(8);
    if (!result.ok()) break;
    size_t avail = buf.size() - pos;
    if (avail < 8) {
      torn = avail > 0;  // truncated length/crc header
      break;
    }
    uint32_t len, crc;
    std::memcpy(&len, buf.data() + pos, 4);
    std::memcpy(&crc, buf.data() + pos + 4, 4);
    result = fill(8 + static_cast<size_t>(len));
    if (!result.ok()) break;
    if (buf.size() - pos < 8 + static_cast<size_t>(len)) {
      torn = true;  // truncated payload
      break;
    }
    std::string record = buf.substr(pos + 8, len);
    if (Crc32(record.data(), record.size()) != crc) {
      // Peek one byte further: a mismatch on the very last record is a torn
      // append; anything followed by more data is real corruption.
      result = fill(8 + static_cast<size_t>(len) + 1);
      if (!result.ok()) break;
      if (buf.size() - pos == 8 + static_cast<size_t>(len) && eof) {
        torn = true;
        break;
      }
      result = Status::Corruption("journal " + path_ +
                                  ": CRC mismatch at offset " +
                                  std::to_string(consumed + pos));
      break;
    }
    result = fn(record);
    if (!result.ok()) break;
    pos += 8 + static_cast<size_t>(len);
    good_end = consumed + pos;
  }
  if (result.ok() && torn) {
    // Crash mid-append: drop the partial tail so the next Append continues
    // a clean log instead of burying new records behind garbage.
    Status truncated = env_->Truncate(path_, good_end);
    if (!truncated.ok()) {
      return Status::IOError("journal truncate after torn tail: " +
                             truncated.message());
    }
  }
  if (result.ok()) {
    size_ = good_end;
    broken_ = false;
  }
  return result;
}

Status Journal::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (durability() == DurabilityMode::kNone) return Status::OK();
  return file_->Sync();
}

}  // namespace gaea
