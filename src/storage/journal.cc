#include "storage/journal.h"

#include <cstring>

namespace gaea {

namespace {

struct CrcTable {
  uint32_t entries[256];
  CrcTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  // Magic-static: initialization is thread-safe, unlike the old lazy flag.
  static const CrcTable crc_table;
  const uint32_t* table = crc_table.entries;
  uint32_t crc = 0xFFFFFFFFu;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string EncodeJournalFrame(std::string_view record) {
  uint32_t len = static_cast<uint32_t>(record.size());
  uint32_t crc = Crc32(record.data(), record.size());
  std::string frame;
  frame.reserve(8 + record.size());
  frame.append(reinterpret_cast<const char*>(&len), 4);
  frame.append(reinterpret_cast<const char*>(&crc), 4);
  frame.append(record);
  return frame;
}

namespace {

// A truncated journal starts with a control record carrying the LSN of its
// first data record. The magic is only honored in the FIRST record of a
// file: data payloads begin with a tag byte or a binary id, so nothing the
// components journal can collide with it there, and records later in the
// file are never inspected for it.
constexpr std::string_view kBaseMagic = "gaea.journal.base.v1";

std::string EncodeBaseRecord(uint64_t base_lsn) {
  std::string payload(kBaseMagic);
  payload.append(reinterpret_cast<const char*>(&base_lsn), 8);
  return payload;
}

bool DecodeBaseRecord(const std::string& record, uint64_t* base_lsn) {
  if (record.size() != kBaseMagic.size() + 8) return false;
  if (std::string_view(record).substr(0, kBaseMagic.size()) != kBaseMagic) {
    return false;
  }
  std::memcpy(base_lsn, record.data() + kBaseMagic.size(), 8);
  return true;
}

struct ScanState {
  uint64_t good_end = 0;  // file offset just past the last intact frame
  bool torn = false;      // partial/corrupt tail after good_end
  uint64_t base = 0;      // LSN of the file's first data record
  uint64_t records = 0;   // data records delivered (control excluded)
};

// The one chunked frame parser behind Replay, ReplayFile and
// TruncatePrefix: walks `path` frame by frame, decodes the leading control
// record if present, and hands every intact data record (with its LSN) to
// `fn`. A torn tail ends the scan cleanly with state->torn set; corruption
// before the tail is kCorruption. The rolling buffer holds at most one
// record plus one chunk, so replaying an arbitrarily large log keeps
// memory flat.
Status ScanJournal(
    Env* env, const std::string& path,
    const std::function<Status(uint64_t lsn, const std::string&)>& fn,
    ScanState* state) {
  GAEA_ASSIGN_OR_RETURN(std::unique_ptr<SequentialFile> rf,
                        env->NewSequentialFile(path));

  constexpr size_t kChunk = 64 * 1024;
  std::string buf;
  size_t pos = 0;         // parse cursor within buf
  uint64_t consumed = 0;  // file offset of buf[0]
  bool eof = false;

  // Ensures buf holds at least `need` unparsed bytes or EOF was reached.
  auto fill = [&](size_t need) -> Status {
    while (!eof && buf.size() - pos < need) {
      if (pos >= kChunk) {
        consumed += pos;
        buf.erase(0, pos);
        pos = 0;
      }
      char chunk[kChunk];
      GAEA_ASSIGN_OR_RETURN(size_t n, rf->Read(sizeof(chunk), chunk));
      if (n == 0) {
        eof = true;
        break;
      }
      buf.append(chunk, n);
    }
    return Status::OK();
  };

  bool first = true;
  Status result = Status::OK();
  for (;;) {
    result = fill(8);
    if (!result.ok()) break;
    size_t avail = buf.size() - pos;
    if (avail < 8) {
      state->torn = avail > 0;  // truncated length/crc header
      break;
    }
    uint32_t len, crc;
    std::memcpy(&len, buf.data() + pos, 4);
    std::memcpy(&crc, buf.data() + pos + 4, 4);
    result = fill(8 + static_cast<size_t>(len));
    if (!result.ok()) break;
    if (buf.size() - pos < 8 + static_cast<size_t>(len)) {
      state->torn = true;  // truncated payload
      break;
    }
    std::string record = buf.substr(pos + 8, len);
    if (Crc32(record.data(), record.size()) != crc) {
      // Peek one byte further: a mismatch on the very last record is a torn
      // append; anything followed by more data is real corruption.
      result = fill(8 + static_cast<size_t>(len) + 1);
      if (!result.ok()) break;
      if (buf.size() - pos == 8 + static_cast<size_t>(len) && eof) {
        state->torn = true;
        break;
      }
      result = Status::Corruption("journal " + path +
                                  ": CRC mismatch at offset " +
                                  std::to_string(consumed + pos));
      break;
    }
    uint64_t base = 0;
    if (first && DecodeBaseRecord(record, &base)) {
      state->base = base;
    } else {
      result = fn(state->base + state->records, record);
      if (!result.ok()) break;
      state->records++;
    }
    first = false;
    pos += 8 + static_cast<size_t>(len);
    state->good_end = consumed + pos;
  }
  return result;
}

}  // namespace

const char* DurabilityModeName(DurabilityMode mode) {
  switch (mode) {
    case DurabilityMode::kNone: return "none";
    case DurabilityMode::kOs: return "os";
    case DurabilityMode::kFsync: return "fsync";
  }
  return "unknown";
}

StatusOr<DurabilityMode> ParseDurabilityMode(std::string_view text) {
  if (text == "none") return DurabilityMode::kNone;
  if (text == "os") return DurabilityMode::kOs;
  if (text == "fsync") return DurabilityMode::kFsync;
  return Status::InvalidArgument("unknown durability mode '" +
                                 std::string(text) +
                                 "' (want none, os or fsync)");
}

StatusOr<std::unique_ptr<Journal>> Journal::Open(const std::string& path,
                                                 Env* env) {
  bool existed = env->FileExists(path);
  GAEA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                        env->NewWritableFile(path));
  if (!existed) {
    // The file's directory entry must survive a crash too, or recovery
    // reopens an empty directory and silently starts a fresh history.
    GAEA_RETURN_IF_ERROR(env->SyncParentDir(path));
  }
  uint64_t size = 0;
  if (existed) {
    GAEA_ASSIGN_OR_RETURN(size, env->FileSize(path));
  }
  return std::unique_ptr<Journal>(
      new Journal(std::move(file), path, env, size));
}

Status Journal::Append(const std::string& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (broken_) {
    return Status::FailedPrecondition(
        "journal " + path_ + " has an unhealed torn tail; appends refused");
  }
  std::string frame = EncodeJournalFrame(record);
  Status written = file_->Append(frame);
  if (!written.ok()) {
    // A prefix of the frame may be on disk. Heal in place: truncate back to
    // the last good record boundary so the log stays appendable. Replay
    // would do the same, but a live server should not have to reopen.
    Status healed = env_->Truncate(path_, size_);
    if (!healed.ok()) broken_ = true;
    return Status::IOError("journal append at offset " +
                           std::to_string(size_) + ": " + written.message() +
                           (healed.ok() ? " (torn tail truncated)"
                                        : "; tail truncation also failed: " +
                                              healed.message()));
  }
  size_ += frame.size();
  if (durability() == DurabilityMode::kFsync) {
    GAEA_RETURN_IF_ERROR(file_->Sync());
  }
  appended_++;
  record_count_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status Journal::Replay(const std::function<Status(const std::string&)>& fn,
                       uint64_t start_lsn) const {
  // Held for the whole replay: a torn tail is truncated by path below, and
  // doing that concurrently with an in-progress Append would mistake the
  // half-written record for the tail and truncate live data.
  std::lock_guard<std::mutex> lock(mu_);
  ScanState scan;
  Status result = ScanJournal(
      env_, path_,
      [&](uint64_t lsn, const std::string& record) -> Status {
        if (lsn < start_lsn) return Status::OK();  // covered by the snapshot
        return fn(record);
      },
      &scan);
  if (result.code() == StatusCode::kNotFound) {
    if (start_lsn > 0) {
      // A checkpoint claims to cover records this journal no longer has —
      // the file vanished underneath it. Surface as corruption so the
      // recovery planner falls back instead of silently losing the tail.
      return Status::Corruption("journal " + path_ + " missing but replay " +
                                "was requested from LSN " +
                                std::to_string(start_lsn));
    }
    size_ = 0;
    base_lsn_.store(0, std::memory_order_release);
    record_count_.store(0, std::memory_order_release);
    return Status::OK();  // nothing persisted yet
  }
  if (!result.ok()) return result;
  if (start_lsn > 0 && (start_lsn < scan.base ||
                        start_lsn > scan.base + scan.records)) {
    // Either the prefix was truncated beyond the requested start (records
    // the caller needs are gone) or the file ends before the checkpoint's
    // coverage (a tail the snapshot has was lost). Both mean this file
    // cannot reproduce the requested range.
    return Status::Corruption(
        "journal " + path_ + " holds LSNs [" + std::to_string(scan.base) +
        ", " + std::to_string(scan.base + scan.records) +
        ") which does not include replay start " + std::to_string(start_lsn));
  }
  if (scan.torn) {
    // Crash mid-append: drop the partial tail so the next Append continues
    // a clean log instead of burying new records behind garbage.
    Status truncated = env_->Truncate(path_, scan.good_end);
    if (!truncated.ok()) {
      return Status::IOError("journal truncate after torn tail: " +
                             truncated.message());
    }
  }
  size_ = scan.good_end;
  broken_ = false;
  base_lsn_.store(scan.base, std::memory_order_release);
  record_count_.store(scan.base + scan.records, std::memory_order_release);
  return Status::OK();
}

Status Journal::ReadRange(uint64_t from, size_t max_records, size_t max_bytes,
                          std::vector<std::string>* out,
                          uint64_t* next) const {
  std::lock_guard<std::mutex> lock(mu_);
  *next = from;
  uint64_t base = base_lsn_.load(std::memory_order_acquire);
  uint64_t count = record_count_.load(std::memory_order_acquire);
  if (from < base) {
    return Status::OutOfRange(
        "journal " + path_ + " holds LSNs [" + std::to_string(base) + ", " +
        std::to_string(count) + "); LSN " + std::to_string(from) +
        " was truncated into the archive chain");
  }
  if (from >= count) return Status::OK();  // caller is at the tail
  size_t bytes = 0;
  ScanState scan;
  Status result = ScanJournal(
      env_, path_,
      [&](uint64_t lsn, const std::string& record) -> Status {
        if (lsn < from) return Status::OK();
        if (out->size() >= max_records ||
            (bytes > 0 && bytes + record.size() > max_bytes)) {
          return Status::OK();  // full; keep scanning the accounting only
        }
        bytes += record.size();
        out->push_back(record);
        *next = lsn + 1;
        return Status::OK();
      },
      &scan);
  if (result.code() == StatusCode::kNotFound) return Status::OK();
  return result;
}

Status Journal::ReplayFile(
    Env* env, const std::string& path, bool strict,
    const std::function<Status(uint64_t lsn, const std::string&)>& fn) {
  ScanState scan;
  GAEA_RETURN_IF_ERROR(ScanJournal(env, path, fn, &scan));
  if (strict && scan.torn) {
    return Status::Corruption("journal-format file " + path +
                              ": torn tail at offset " +
                              std::to_string(scan.good_end) +
                              " in a file that must be complete");
  }
  return Status::OK();
}

Status Journal::TruncatePrefix(uint64_t upto_lsn,
                               const std::string& archive_path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (broken_) {
    return Status::FailedPrecondition(
        "journal " + path_ + " has an unhealed torn tail; refusing to "
        "truncate its prefix");
  }
  uint64_t base = base_lsn_.load(std::memory_order_acquire);
  uint64_t count = record_count_.load(std::memory_order_acquire);
  if (upto_lsn <= base) return Status::OK();  // prefix already gone
  if (upto_lsn > count) {
    return Status::InvalidArgument(
        "journal " + path_ + ": cannot truncate to LSN " +
        std::to_string(upto_lsn) + ", file ends at " + std::to_string(count));
  }

  // Stream the file once, splitting frames into the archive segment (the
  // dropped prefix, still replayable for restore-to-point and full-replay
  // fallback) and the rewritten live file. Both are written to tmp names;
  // the archive is renamed into place FIRST, so no instant exists at which
  // a record is neither in the live journal nor in a durable archive. A
  // crash between the two renames leaves the prefix in both places —
  // benign, because archive-chain replay dedups by LSN cursor.
  const std::string archive_tmp = archive_path + ".tmp";
  const std::string live_tmp = path_ + ".tmp";
  // Writable files open in append mode: clear leftovers of a crashed
  // earlier attempt before writing.
  GAEA_RETURN_IF_ERROR(env_->RemoveFile(archive_tmp));
  GAEA_RETURN_IF_ERROR(env_->RemoveFile(live_tmp));
  GAEA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> archive,
                        env_->NewWritableFile(archive_tmp));
  GAEA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> live,
                        env_->NewWritableFile(live_tmp));
  GAEA_RETURN_IF_ERROR(
      archive->Append(EncodeJournalFrame(EncodeBaseRecord(base))));
  std::string live_head = EncodeJournalFrame(EncodeBaseRecord(upto_lsn));
  GAEA_RETURN_IF_ERROR(live->Append(live_head));
  uint64_t live_bytes = live_head.size();
  ScanState scan;
  GAEA_RETURN_IF_ERROR(ScanJournal(
      env_, path_,
      [&](uint64_t lsn, const std::string& record) -> Status {
        std::string frame = EncodeJournalFrame(record);
        if (lsn < upto_lsn) return archive->Append(frame);
        live_bytes += frame.size();
        return live->Append(frame);
      },
      &scan));
  // The archive must be durable before the live prefix disappears,
  // whatever the journal's durability mode: prefix truncation is rare and
  // must never be the reason a record ceases to exist.
  GAEA_RETURN_IF_ERROR(archive->Sync());
  GAEA_RETURN_IF_ERROR(live->Sync());
  archive.reset();
  live.reset();
  GAEA_RETURN_IF_ERROR(env_->RenameFile(archive_tmp, archive_path));
  GAEA_RETURN_IF_ERROR(env_->RenameFile(live_tmp, path_));
  // The append handle still points at the renamed-away inode; reopen on
  // the rewritten file.
  GAEA_ASSIGN_OR_RETURN(file_, env_->NewWritableFile(path_));
  size_ = live_bytes;
  base_lsn_.store(upto_lsn, std::memory_order_release);
  return Status::OK();
}

Status Journal::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (durability() == DurabilityMode::kNone) return Status::OK();
  return file_->Sync();
}

}  // namespace gaea
