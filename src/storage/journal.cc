#include "storage/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <vector>

namespace gaea {

namespace {

struct CrcTable {
  uint32_t entries[256];
  CrcTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  // Magic-static: initialization is thread-safe, unlike the old lazy flag.
  static const CrcTable crc_table;
  const uint32_t* table = crc_table.entries;
  uint32_t crc = 0xFFFFFFFFu;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

StatusOr<std::unique_ptr<Journal>> Journal::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IOError("open journal " + path + ": " +
                           std::strerror(errno));
  }
  return std::unique_ptr<Journal>(new Journal(fd, path));
}

Journal::~Journal() { ::close(fd_); }

Status Journal::Append(const std::string& record) {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t len = static_cast<uint32_t>(record.size());
  uint32_t crc = Crc32(record.data(), record.size());
  std::string frame;
  frame.reserve(8 + record.size());
  frame.append(reinterpret_cast<const char*>(&len), 4);
  frame.append(reinterpret_cast<const char*>(&crc), 4);
  frame.append(record);
  ssize_t n = ::write(fd_, frame.data(), frame.size());
  if (n != static_cast<ssize_t>(frame.size())) {
    return Status::IOError("journal append: " + std::string(strerror(errno)));
  }
  appended_++;
  return Status::OK();
}

Status Journal::Replay(
    const std::function<Status(const std::string&)>& fn) const {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return Status::OK();  // nothing persisted yet
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  size_t pos = 0;
  while (pos + 8 <= bytes.size()) {
    uint32_t len, crc;
    std::memcpy(&len, bytes.data() + pos, 4);
    std::memcpy(&crc, bytes.data() + pos + 4, 4);
    if (pos + 8 + len > bytes.size()) {
      // Torn tail from a crash mid-append: ignore.
      return Status::OK();
    }
    std::string record = bytes.substr(pos + 8, len);
    if (Crc32(record.data(), record.size()) != crc) {
      bool is_tail = pos + 8 + len == bytes.size();
      if (is_tail) return Status::OK();
      return Status::Corruption("journal " + path_ +
                                ": CRC mismatch at offset " +
                                std::to_string(pos));
    }
    GAEA_RETURN_IF_ERROR(fn(record));
    pos += 8 + len;
  }
  return Status::OK();
}

Status Journal::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (::fsync(fd_) != 0) {
    return Status::IOError("journal fsync: " + std::string(strerror(errno)));
  }
  return Status::OK();
}

}  // namespace gaea
