#include "storage/buffer_pool.h"

#include <cstring>

namespace gaea {

StatusOr<std::unique_ptr<BufferPool>> BufferPool::Open(const std::string& path,
                                                       size_t capacity,
                                                       size_t shards,
                                                       Env* env) {
  if (capacity == 0) {
    return Status::InvalidArgument("buffer pool needs capacity >= 1");
  }
  if (shards == 0) {
    return Status::InvalidArgument("buffer pool needs shards >= 1");
  }
  if (shards > capacity) shards = capacity;
  bool existed = env->FileExists(path);
  GAEA_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                        env->NewRandomAccessFile(path));
  if (!existed) {
    GAEA_RETURN_IF_ERROR(env->SyncParentDir(path));
  }
  uint64_t size = 0;
  if (existed) {
    GAEA_ASSIGN_OR_RETURN(size, env->FileSize(path));
  }
  if (size % kPageSize != 0) {
    // A crash mid-pwrite while extending the file leaves a trailing partial
    // page. That page was never acknowledged (the write errored or the
    // process died), so dropping it loses nothing committed; anything that
    // referenced it is caught by the kernel's recovery invariants.
    uint64_t good = size - (size % kPageSize);
    GAEA_RETURN_IF_ERROR(env->Truncate(path, good));
    size = good;
  }
  uint32_t page_count = static_cast<uint32_t>(size / kPageSize);
  return std::unique_ptr<BufferPool>(
      new BufferPool(std::move(file), page_count, capacity, shards));
}

BufferPool::BufferPool(std::unique_ptr<RandomAccessFile> file,
                       uint32_t page_count, size_t capacity, size_t shards)
    : file_(std::move(file)), page_count_(page_count), shards_(shards) {
  // Spread the frame budget over the shards; every shard gets at least one.
  size_t per_shard = capacity / shards;
  size_t remainder = capacity % shards;
  for (size_t i = 0; i < shards; ++i) {
    shards_[i].capacity = per_shard + (i < remainder ? 1 : 0);
    if (shards_[i].capacity == 0) shards_[i].capacity = 1;
  }
}

BufferPool::~BufferPool() { (void)Flush(); }

Status BufferPool::WriteFrame(const Frame& frame) {
  uint64_t offset = static_cast<uint64_t>(frame.page_id) * kPageSize;
  return file_->Write(
      offset, std::string_view(reinterpret_cast<const char*>(frame.page.data()),
                               kPageSize));
}

Status BufferPool::MaybeEvict(Shard* shard) {
  if (shard->frames.size() < shard->capacity) return Status::OK();
  // Least-recently-used unpinned frame (scanning from the back). New pins
  // take the shard latch, so a frame seen unpinned here cannot gain a pin
  // before it is erased.
  for (auto it = shard->frames.rbegin(); it != shard->frames.rend(); ++it) {
    if (it->pins.load(std::memory_order_acquire) != 0) continue;
    if (it->dirty.load(std::memory_order_acquire)) {
      GAEA_RETURN_IF_ERROR(WriteFrame(*it));
    }
    shard->index.erase(it->page_id);
    shard->frames.erase(std::next(it).base());
    shard->evictions++;
    return Status::OK();
  }
  // Every frame pinned: overflow the budget rather than fail or deadlock.
  return Status::OK();
}

StatusOr<BufferPool::Frame*> BufferPool::InsertFrame(Shard* shard,
                                                     uint32_t page_id) {
  GAEA_RETURN_IF_ERROR(MaybeEvict(shard));
  shard->frames.emplace_front();
  Frame& frame = shard->frames.front();
  frame.page_id = page_id;
  frame.pins.store(1, std::memory_order_release);
  shard->index[page_id] = shard->frames.begin();
  return &frame;
}

StatusOr<PageGuard> BufferPool::AllocatePage() {
  uint32_t page_id = page_count_.fetch_add(1, std::memory_order_acq_rel);
  Shard& shard = ShardFor(page_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  GAEA_ASSIGN_OR_RETURN(Frame * frame, InsertFrame(&shard, page_id));
  frame->dirty.store(true, std::memory_order_release);  // must reach disk
  return PageGuard(frame);
}

StatusOr<PageGuard> BufferPool::FetchPage(uint32_t page_id) {
  if (page_id >= page_count_.load(std::memory_order_acquire)) {
    return Status::OutOfRange("page " + std::to_string(page_id) +
                              " beyond file end (" +
                              std::to_string(PageCount()) + " pages)");
  }
  Shard& shard = ShardFor(page_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(page_id);
  if (it != shard.index.end()) {
    shard.hits++;
    // Move to front (most recently used); list nodes stay in place, so
    // outstanding guards are unaffected.
    shard.frames.splice(shard.frames.begin(), shard.frames, it->second);
    shard.index[page_id] = shard.frames.begin();
    Frame& frame = shard.frames.front();
    frame.pins.fetch_add(1, std::memory_order_acq_rel);
    return PageGuard(&frame);
  }
  shard.misses++;
  GAEA_ASSIGN_OR_RETURN(Frame * frame, InsertFrame(&shard, page_id));
  uint64_t offset = static_cast<uint64_t>(page_id) * kPageSize;
  auto read = file_->Read(offset, kPageSize,
                          reinterpret_cast<char*>(frame->page.data()));
  if (!read.ok()) {
    shard.index.erase(page_id);
    shard.frames.pop_front();
    return Status::IOError("read page " + std::to_string(page_id) + ": " +
                           read.status().message());
  }
  // A short read happens only for pages allocated but never flushed by a
  // crashed process; treat the missing bytes as zeros.
  if (*read < kPageSize) {
    std::memset(frame->page.data() + *read, 0, kPageSize - *read);
  }
  return PageGuard(frame);
}

Status BufferPool::Flush() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (Frame& frame : shard.frames) {
      if (frame.dirty.load(std::memory_order_acquire)) {
        GAEA_RETURN_IF_ERROR(WriteFrame(frame));
        frame.dirty.store(false, std::memory_order_release);
      }
    }
  }
  return Status::OK();
}

std::vector<BufferPool::ShardStats> BufferPool::PerShardStats() const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    ShardStats stats;
    stats.hits = shard.hits;
    stats.misses = shard.misses;
    stats.evictions = shard.evictions;
    stats.resident = shard.frames.size();
    for (const Frame& frame : shard.frames) {
      if (frame.pins.load(std::memory_order_acquire) != 0) stats.pinned++;
    }
    out.push_back(stats);
  }
  return out;
}

uint64_t BufferPool::hits() const {
  uint64_t total = 0;
  for (const ShardStats& s : PerShardStats()) total += s.hits;
  return total;
}

uint64_t BufferPool::misses() const {
  uint64_t total = 0;
  for (const ShardStats& s : PerShardStats()) total += s.misses;
  return total;
}

uint64_t BufferPool::evictions() const {
  uint64_t total = 0;
  for (const ShardStats& s : PerShardStats()) total += s.evictions;
  return total;
}

}  // namespace gaea
