#include "storage/buffer_pool.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace gaea {

StatusOr<std::unique_ptr<BufferPool>> BufferPool::Open(const std::string& path,
                                                       size_t capacity) {
  if (capacity == 0) {
    return Status::InvalidArgument("buffer pool needs capacity >= 1");
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IOError("fstat " + path + ": " + std::strerror(err));
  }
  if (st.st_size % kPageSize != 0) {
    ::close(fd);
    return Status::Corruption(path + ": size not a multiple of page size");
  }
  uint32_t page_count = static_cast<uint32_t>(st.st_size / kPageSize);
  return std::unique_ptr<BufferPool>(
      new BufferPool(fd, page_count, capacity));
}

BufferPool::BufferPool(int fd, uint32_t page_count, size_t capacity)
    : fd_(fd), page_count_(page_count), capacity_(capacity) {}

BufferPool::~BufferPool() {
  (void)Flush();
  ::close(fd_);
}

Status BufferPool::WriteFrame(const Frame& frame) {
  off_t offset = static_cast<off_t>(frame.page_id) * kPageSize;
  ssize_t n = ::pwrite(fd_, frame.page.data(), kPageSize, offset);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pwrite page " + std::to_string(frame.page_id) +
                           ": " + std::strerror(errno));
  }
  return Status::OK();
}

Status BufferPool::EvictOne() {
  // Evict the least-recently-used frame (back of the list).
  Frame& victim = frames_.back();
  if (victim.dirty) {
    GAEA_RETURN_IF_ERROR(WriteFrame(victim));
  }
  index_.erase(victim.page_id);
  frames_.pop_back();
  return Status::OK();
}

StatusOr<uint32_t> BufferPool::AllocatePage() {
  uint32_t page_id = page_count_;
  if (frames_.size() >= capacity_) {
    GAEA_RETURN_IF_ERROR(EvictOne());
  }
  frames_.emplace_front();
  frames_.front().page_id = page_id;
  frames_.front().dirty = true;  // new page must reach disk
  index_[page_id] = frames_.begin();
  page_count_++;
  return page_id;
}

StatusOr<Page*> BufferPool::FetchPage(uint32_t page_id) {
  if (page_id >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(page_id) +
                              " beyond file end (" +
                              std::to_string(page_count_) + " pages)");
  }
  auto it = index_.find(page_id);
  if (it != index_.end()) {
    hits_++;
    // Move to front (most recently used).
    frames_.splice(frames_.begin(), frames_, it->second);
    index_[page_id] = frames_.begin();
    return &frames_.front().page;
  }
  misses_++;
  if (frames_.size() >= capacity_) {
    GAEA_RETURN_IF_ERROR(EvictOne());
  }
  frames_.emplace_front();
  Frame& frame = frames_.front();
  frame.page_id = page_id;
  off_t offset = static_cast<off_t>(page_id) * kPageSize;
  ssize_t n = ::pread(fd_, frame.page.data(), kPageSize, offset);
  if (n < 0) {
    frames_.pop_front();
    return Status::IOError("pread page " + std::to_string(page_id) + ": " +
                           std::strerror(errno));
  }
  // A short read happens only for pages allocated but never flushed by a
  // crashed process; treat missing bytes as zeros (already memset).
  index_[page_id] = frames_.begin();
  return &frame.page;
}

Status BufferPool::MarkDirty(uint32_t page_id) {
  auto it = index_.find(page_id);
  if (it == index_.end()) {
    return Status::Internal("MarkDirty on non-resident page " +
                            std::to_string(page_id));
  }
  it->second->dirty = true;
  return Status::OK();
}

Status BufferPool::Flush() {
  for (Frame& frame : frames_) {
    if (frame.dirty) {
      GAEA_RETURN_IF_ERROR(WriteFrame(frame));
      frame.dirty = false;
    }
  }
  return Status::OK();
}

}  // namespace gaea
