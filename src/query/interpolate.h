// Temporal interpolation: the generic derivation of §2.1.5 step 2.
//
// "Interpolation can be used in many situations where data are missing. It
// is a generic derivation process which is applicable to many data types in
// many domains." Given a class with a temporal extent and a requested
// instant with no stored snapshot, the interpolator finds the nearest
// bracketing objects (same/overlapping spatial extent), linearly blends
// image attributes and numeric attributes by the time fraction, copies
// invariant attributes from the earlier bracket, stamps the requested time,
// stores the result, and records a synthetic task
// (process "interpolate:<class>", version 0).
//
// Synthetic interpolation tasks are replayed by Interpolator::Replay, not
// Deriver::Replay — they are not template-defined processes.

#ifndef GAEA_QUERY_INTERPOLATE_H_
#define GAEA_QUERY_INTERPOLATE_H_

#include <optional>
#include <string>

#include "catalog/catalog.h"
#include "core/task.h"
#include "spatial/abstime.h"
#include "spatial/box.h"
#include "util/status.h"

namespace gaea {

class Interpolator {
 public:
  Interpolator(Catalog* catalog, TaskLog* log)
      : catalog_(catalog), log_(log) {}

  void set_user(std::string user) { user_ = std::move(user); }
  void set_clock(AbsTime now) { now_ = now; }

  // The bracketing pair used for an interpolation request.
  struct Brackets {
    Oid before = kInvalidOid;
    Oid after = kInvalidOid;
    AbsTime t_before;
    AbsTime t_after;
  };

  // Finds the nearest stored objects of `class_id` before and after `t`
  // (optionally restricted to extents overlapping `region`). kNotFound when
  // either side is missing — interpolation needs both brackets.
  StatusOr<Brackets> FindBrackets(ClassId class_id, AbsTime t,
                                  const std::optional<Box>& region) const;

  // Interpolates an object of `class_id` at time `t`; returns the new OID.
  StatusOr<Oid> Interpolate(ClassId class_id, AbsTime t,
                            const std::optional<Box>& region = std::nullopt);

  // Re-runs a synthetic interpolation task recorded by this class.
  StatusOr<Oid> Replay(const Task& task);

  // Name of the synthetic process recorded on interpolation tasks.
  static std::string ProcessNameFor(const std::string& class_name) {
    return "interpolate:" + class_name;
  }

 private:
  StatusOr<Oid> BlendObjects(const ClassDef& def, Oid before, Oid after,
                             AbsTime t);

  Catalog* catalog_;
  TaskLog* log_;
  std::string user_ = "gaea";
  AbsTime now_;
};

}  // namespace gaea

#endif  // GAEA_QUERY_INTERPOLATE_H_
