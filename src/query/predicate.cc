#include "query/predicate.h"

#include <sstream>

namespace gaea {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

namespace {
StatusOr<int> ThreeWay(const Value& a, const Value& b) {
  // Numeric comparison covers int/double mixes.
  if ((a.type() == TypeId::kInt || a.type() == TypeId::kDouble) &&
      (b.type() == TypeId::kInt || b.type() == TypeId::kDouble)) {
    GAEA_ASSIGN_OR_RETURN(double x, a.AsDouble());
    GAEA_ASSIGN_OR_RETURN(double y, b.AsDouble());
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.type() == TypeId::kString && b.type() == TypeId::kString) {
    GAEA_ASSIGN_OR_RETURN(std::string x, a.AsString());
    GAEA_ASSIGN_OR_RETURN(std::string y, b.AsString());
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.type() == TypeId::kTime && b.type() == TypeId::kTime) {
    GAEA_ASSIGN_OR_RETURN(AbsTime x, a.AsTime());
    GAEA_ASSIGN_OR_RETURN(AbsTime y, b.AsTime());
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  return Status::InvalidArgument(
      std::string("attributes of type ") + TypeIdName(a.type()) +
      " do not support ordered comparison with " + TypeIdName(b.type()));
}
}  // namespace

StatusOr<bool> AttrPredicate::Matches(const ClassDef& def,
                                      const DataObject& obj) const {
  GAEA_ASSIGN_OR_RETURN(Value actual, obj.Get(def, attr));
  switch (op) {
    case CompareOp::kEq:
      return actual == value;
    case CompareOp::kNe:
      return !(actual == value);
    default:
      break;
  }
  GAEA_ASSIGN_OR_RETURN(int cmp, ThreeWay(actual, value));
  switch (op) {
    case CompareOp::kLt: return cmp < 0;
    case CompareOp::kLe: return cmp <= 0;
    case CompareOp::kGt: return cmp > 0;
    case CompareOp::kGe: return cmp >= 0;
    default:
      return Status::Internal("unhandled compare op");
  }
}

std::string AttrPredicate::ToString() const {
  return attr + " " + CompareOpName(op) + " " + value.ToString();
}

StatusOr<bool> QueryFilter::Matches(const ClassDef& def,
                                    const DataObject& obj) const {
  if (window.region.has_value() && def.has_spatial_extent()) {
    GAEA_ASSIGN_OR_RETURN(Box extent, obj.SpatialExtent(def));
    if (!extent.Overlaps(*window.region)) return false;
  }
  if (window.time.has_value() && def.has_temporal_extent()) {
    GAEA_ASSIGN_OR_RETURN(AbsTime ts, obj.Timestamp(def));
    if (!window.time->Contains(ts)) return false;
  }
  for (const AttrPredicate& pred : predicates) {
    GAEA_ASSIGN_OR_RETURN(bool match, pred.Matches(def, obj));
    if (!match) return false;
  }
  return true;
}

std::string QueryFilter::ToString() const {
  std::ostringstream os;
  os << window.ToString();
  for (const AttrPredicate& pred : predicates) {
    os << " AND " << pred.ToString();
  }
  return os.str();
}

}  // namespace gaea
