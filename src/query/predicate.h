// Attribute predicates for object retrieval, composing with the
// spatio-temporal Window of the planner: `numclass = 12`,
// `area = "africa"`, `resolution <= 30.0`.

#ifndef GAEA_QUERY_PREDICATE_H_
#define GAEA_QUERY_PREDICATE_H_

#include <string>
#include <vector>

#include "catalog/class_def.h"
#include "catalog/data_object.h"
#include "core/planner.h"
#include "util/status.h"

namespace gaea {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

// One attribute comparison.
struct AttrPredicate {
  std::string attr;
  CompareOp op = CompareOp::kEq;
  Value value;

  // Evaluates against an object. Ordered comparisons require numeric,
  // string or time attributes; eq/ne work on any type.
  StatusOr<bool> Matches(const ClassDef& def, const DataObject& obj) const;

  std::string ToString() const;
};

// Conjunction of a spatio-temporal window and attribute predicates.
struct QueryFilter {
  Window window;
  std::vector<AttrPredicate> predicates;

  StatusOr<bool> Matches(const ClassDef& def, const DataObject& obj) const;
  std::string ToString() const;
};

}  // namespace gaea

#endif  // GAEA_QUERY_PREDICATE_H_
