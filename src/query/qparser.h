// Textual query language for the §2.1.5 interface — the surface the Gaea
// visual environment would generate. One statement form:
//
//   SELECT FROM <concept-or-class>
//   [ WHERE <predicate> { AND <predicate> } ]
//   [ USING <step> { , <step> } ]
//
// predicates:
//   REGION OVERLAPS box(x0, y0, x1, y1)
//   TIME IN (<timestamp>, <timestamp>)      timestamp: "YYYY-MM-DD" or int
//   TIME AT <timestamp>
//   <attr> <op> <literal>                   op: = != < <= > >=
//
// steps: RETRIEVE | INTERPOLATE | DERIVE (defaults to all three, in the
// paper's order).
//
// Example:
//   SELECT FROM vegetation_change
//   WHERE REGION OVERLAPS box(-20, -35, 52, 38)
//     AND TIME IN ("1988-01-01", "1989-12-31")
//   USING RETRIEVE, DERIVE

#ifndef GAEA_QUERY_QPARSER_H_
#define GAEA_QUERY_QPARSER_H_

#include <string>

#include "query/query.h"
#include "util/status.h"

namespace gaea {

// Parses one SELECT statement into a QueryRequest.
StatusOr<QueryRequest> ParseQuery(const std::string& source);

}  // namespace gaea

#endif  // GAEA_QUERY_QPARSER_H_
