#include "query/interpolate.h"

#include <chrono>

#include "raster/image_ops.h"

namespace gaea {

StatusOr<Interpolator::Brackets> Interpolator::FindBrackets(
    ClassId class_id, AbsTime t, const std::optional<Box>& region) const {
  GAEA_ASSIGN_OR_RETURN(const ClassDef* def,
                        catalog_->classes().LookupById(class_id));
  if (!def->has_temporal_extent()) {
    return Status::FailedPrecondition("class " + def->name() +
                                      " has no temporal extent");
  }
  // Index-driven: the R-tree pre-filters by region so only spatially
  // relevant snapshots are deserialized for their timestamps.
  GAEA_ASSIGN_OR_RETURN(std::vector<Oid> candidates,
                        catalog_->Candidates(class_id, region, std::nullopt));
  Brackets brackets;
  bool have_before = false, have_after = false;
  for (Oid oid : candidates) {
    GAEA_ASSIGN_OR_RETURN(DataObject obj, catalog_->GetObject(oid));
    auto ts_or = obj.Timestamp(*def);
    if (!ts_or.ok()) continue;  // snapshots without a timestamp can't bracket
    AbsTime ts = *ts_or;
    if (ts <= t && (!have_before || ts > brackets.t_before)) {
      brackets.before = oid;
      brackets.t_before = ts;
      have_before = true;
    }
    if (ts >= t && (!have_after || ts < brackets.t_after)) {
      brackets.after = oid;
      brackets.t_after = ts;
      have_after = true;
    }
  }
  if (!have_before || !have_after) {
    return Status::NotFound(
        "no bracketing snapshots of " + def->name() + " around " +
        t.ToString() + " (before: " + (have_before ? "yes" : "no") +
        ", after: " + (have_after ? "yes" : "no") + ")");
  }
  return brackets;
}

StatusOr<Oid> Interpolator::BlendObjects(const ClassDef& def, Oid before_oid,
                                         Oid after_oid, AbsTime t) {
  GAEA_ASSIGN_OR_RETURN(DataObject before, catalog_->GetObject(before_oid));
  GAEA_ASSIGN_OR_RETURN(DataObject after, catalog_->GetObject(after_oid));
  GAEA_ASSIGN_OR_RETURN(AbsTime t0, before.Timestamp(def));
  GAEA_ASSIGN_OR_RETURN(AbsTime t1, after.Timestamp(def));
  double w = 0.0;
  if (t1 - t0 > 0) {
    w = static_cast<double>(t - t0) / static_cast<double>(t1 - t0);
  }

  DataObject out(def);
  for (const AttributeDef& attr : def.attributes()) {
    if (attr.name == def.temporal_attr()) {
      GAEA_RETURN_IF_ERROR(out.Set(def, attr.name, Value::Time(t)));
      continue;
    }
    GAEA_ASSIGN_OR_RETURN(Value a, before.Get(def, attr.name));
    GAEA_ASSIGN_OR_RETURN(Value b, after.Get(def, attr.name));
    switch (attr.type) {
      case TypeId::kImage: {
        GAEA_ASSIGN_OR_RETURN(ImagePtr ia, a.AsImage());
        GAEA_ASSIGN_OR_RETURN(ImagePtr ib, b.AsImage());
        GAEA_ASSIGN_OR_RETURN(Image blended, BlendLinear(*ia, *ib, w));
        GAEA_RETURN_IF_ERROR(
            out.Set(def, attr.name, Value::OfImage(std::move(blended))));
        break;
      }
      case TypeId::kDouble: {
        GAEA_ASSIGN_OR_RETURN(double xa, a.AsDouble());
        GAEA_ASSIGN_OR_RETURN(double xb, b.AsDouble());
        GAEA_RETURN_IF_ERROR(out.Set(
            def, attr.name, Value::Double((1.0 - w) * xa + w * xb)));
        break;
      }
      default:
        // Invariant attributes (names, units, extents, integer counts) are
        // carried from the earlier snapshot, as in the paper's invariant
        // transfer of extents.
        GAEA_RETURN_IF_ERROR(out.Set(def, attr.name, std::move(a)));
        break;
    }
  }

  GAEA_ASSIGN_OR_RETURN(Oid oid, catalog_->InsertObject(std::move(out)));

  Task task;
  task.process_name = ProcessNameFor(def.name());
  task.process_version = 0;  // synthetic: not a template-defined process
  task.inputs["before"] = {before_oid};
  task.inputs["after"] = {after_oid};
  task.outputs = {oid};
  task.user = user_;
  task.started = now_;
  GAEA_RETURN_IF_ERROR(log_->Append(std::move(task)).status());
  return oid;
}

StatusOr<Oid> Interpolator::Interpolate(ClassId class_id, AbsTime t,
                                        const std::optional<Box>& region) {
  GAEA_ASSIGN_OR_RETURN(const ClassDef* def,
                        catalog_->classes().LookupById(class_id));
  GAEA_ASSIGN_OR_RETURN(Brackets brackets, FindBrackets(class_id, t, region));
  return BlendObjects(*def, brackets.before, brackets.after, t);
}

StatusOr<Oid> Interpolator::Replay(const Task& task) {
  auto before_it = task.inputs.find("before");
  auto after_it = task.inputs.find("after");
  if (before_it == task.inputs.end() || after_it == task.inputs.end() ||
      before_it->second.size() != 1 || after_it->second.size() != 1 ||
      task.outputs.size() != 1) {
    return Status::InvalidArgument("task #" + std::to_string(task.id) +
                                   " is not an interpolation task");
  }
  // Recover the class and requested time from the recorded output object.
  GAEA_ASSIGN_OR_RETURN(DataObject original,
                        catalog_->GetObject(task.outputs[0]));
  GAEA_ASSIGN_OR_RETURN(const ClassDef* def,
                        catalog_->classes().LookupById(original.class_id()));
  GAEA_ASSIGN_OR_RETURN(AbsTime t, original.Timestamp(*def));
  return BlendObjects(*def, before_it->second[0], after_it->second[0], t);
}

}  // namespace gaea
