// The query engine: answers requests over concepts and classes with the
// three-step sequence of paper §2.1.5:
//
//   1. direct data retrieval from the non-primitive classes corresponding
//      to the concept of interest;
//   2. data interpolation (temporal), where data are missing;
//   3. data computation, based on a derivation relationship;
//
// with "steps 2 and 3 prioritized according to the user's needs" — the
// request carries an ordered strategy list. Queries over a concept expand
// to the classes it covers (own members plus ISA descendants).

#ifndef GAEA_QUERY_QUERY_H_
#define GAEA_QUERY_QUERY_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "core/deriver.h"
#include "core/planner.h"
#include "core/process_registry.h"
#include "query/interpolate.h"
#include "query/predicate.h"
#include "util/status.h"

namespace gaea {

enum class QueryStep : uint8_t { kRetrieve = 0, kInterpolate = 1, kDerive = 2 };

const char* QueryStepName(QueryStep step);

struct QueryRequest {
  // Concept name or class name; concepts expand to covered classes.
  std::string target;
  QueryFilter filter;
  // Steps attempted in order per class until one yields objects.
  std::vector<QueryStep> strategy = {QueryStep::kRetrieve,
                                     QueryStep::kInterpolate,
                                     QueryStep::kDerive};
};

// Per-class portion of an answer.
struct ClassAnswer {
  ClassId class_id = kInvalidClassId;
  std::string class_name;
  QueryStep method = QueryStep::kRetrieve;  // how the objects were obtained
  std::vector<Oid> oids;
  // One line per attempted step, e.g. "retrieve: 0 objects",
  // "derive: Underivable: ..." — the EXPLAIN trace of §2.1.5's sequence.
  std::vector<std::string> attempts;
};

struct QueryResult {
  std::vector<ClassAnswer> answers;

  // All OIDs across classes.
  std::vector<Oid> AllOids() const;
  bool empty() const;
};

class QueryEngine {
 public:
  QueryEngine(Catalog* catalog, const ProcessRegistry* processes,
              Deriver* deriver, Interpolator* interpolator)
      : catalog_(catalog),
        processes_(processes),
        deriver_(deriver),
        interpolator_(interpolator),
        planner_(catalog, processes) {}

  // Executes the request. A class contributes an answer from the first
  // strategy step that yields objects; classes where every step fails are
  // omitted. An entirely empty result is returned as OK with no answers
  // when at least one step failed only for lack of data, so callers can
  // distinguish "no data" from malformed requests (which return errors).
  StatusOr<QueryResult> Execute(const QueryRequest& request);

  const Planner& planner() const { return planner_; }

 private:
  // Classes named by `target` (one class, or a concept's covered classes).
  StatusOr<std::vector<ClassId>> ResolveTarget(const std::string& target) const;

  StatusOr<std::vector<Oid>> TryRetrieve(ClassId class_id,
                                         const QueryFilter& filter) const;
  StatusOr<std::vector<Oid>> TryInterpolate(ClassId class_id,
                                            const QueryFilter& filter);
  StatusOr<std::vector<Oid>> TryDerive(ClassId class_id,
                                       const QueryFilter& filter);

  Catalog* catalog_;
  const ProcessRegistry* processes_;
  Deriver* deriver_;
  Interpolator* interpolator_;
  Planner planner_;
};

}  // namespace gaea

#endif  // GAEA_QUERY_QUERY_H_
