#include "query/query.h"

namespace gaea {

const char* QueryStepName(QueryStep step) {
  switch (step) {
    case QueryStep::kRetrieve: return "retrieve";
    case QueryStep::kInterpolate: return "interpolate";
    case QueryStep::kDerive: return "derive";
  }
  return "unknown";
}

std::vector<Oid> QueryResult::AllOids() const {
  std::vector<Oid> out;
  for (const ClassAnswer& answer : answers) {
    out.insert(out.end(), answer.oids.begin(), answer.oids.end());
  }
  return out;
}

bool QueryResult::empty() const {
  for (const ClassAnswer& answer : answers) {
    if (!answer.oids.empty()) return false;
  }
  return true;
}

StatusOr<std::vector<ClassId>> QueryEngine::ResolveTarget(
    const std::string& target) const {
  auto cls = catalog_->classes().LookupByName(target);
  if (cls.ok()) return std::vector<ClassId>{(*cls)->id()};
  auto concept_def = catalog_->concepts().LookupByName(target);
  if (concept_def.ok()) {
    GAEA_ASSIGN_OR_RETURN(std::set<ClassId> covered,
                          catalog_->concepts().CoveredClasses(
                              (*concept_def)->id));
    if (covered.empty()) {
      return Status::FailedPrecondition(
          "concept " + target +
          " covers no classes (no derivation mapped yet)");
    }
    return std::vector<ClassId>(covered.begin(), covered.end());
  }
  return Status::NotFound("'" + target + "' is neither a class nor a concept");
}

StatusOr<std::vector<Oid>> QueryEngine::TryRetrieve(
    ClassId class_id, const QueryFilter& filter) const {
  GAEA_ASSIGN_OR_RETURN(const ClassDef* def,
                        catalog_->classes().LookupById(class_id));
  // Index-driven candidates: the spatial and temporal window constraints
  // are already satisfied; only attribute predicates require loading.
  GAEA_ASSIGN_OR_RETURN(
      std::vector<Oid> candidates,
      catalog_->Candidates(class_id, filter.window.region,
                           filter.window.time));
  if (filter.predicates.empty()) return candidates;
  std::vector<Oid> out;
  for (Oid oid : candidates) {
    GAEA_ASSIGN_OR_RETURN(DataObject obj, catalog_->GetObject(oid));
    bool match = true;
    for (const AttrPredicate& pred : filter.predicates) {
      GAEA_ASSIGN_OR_RETURN(match, pred.Matches(*def, obj));
      if (!match) break;
    }
    if (match) out.push_back(oid);
  }
  return out;
}

StatusOr<std::vector<Oid>> QueryEngine::TryInterpolate(
    ClassId class_id, const QueryFilter& filter) {
  if (!filter.window.time.has_value()) {
    return Status::FailedPrecondition(
        "interpolation needs a temporal window");
  }
  // Interpolate at the window midpoint — the requested instant for
  // instant-style windows.
  const TimeInterval& interval = *filter.window.time;
  AbsTime t = interval.begin() +
              (interval.end() - interval.begin()) / 2;
  GAEA_ASSIGN_OR_RETURN(
      Oid oid, interpolator_->Interpolate(class_id, t, filter.window.region));
  // The interpolated object must still satisfy attribute predicates.
  GAEA_ASSIGN_OR_RETURN(const ClassDef* def,
                        catalog_->classes().LookupById(class_id));
  GAEA_ASSIGN_OR_RETURN(DataObject obj, catalog_->GetObject(oid));
  GAEA_ASSIGN_OR_RETURN(bool match, filter.Matches(*def, obj));
  if (!match) {
    return Status::NotFound("interpolated object does not satisfy predicates");
  }
  return std::vector<Oid>{oid};
}

StatusOr<std::vector<Oid>> QueryEngine::TryDerive(ClassId class_id,
                                                  const QueryFilter& filter) {
  GAEA_ASSIGN_OR_RETURN(DerivationPlan plan,
                        planner_.Plan(class_id, filter.window));
  if (plan.steps.empty()) {
    // Planner found stored data; nothing to derive.
    return Status::NotFound("data already stored; nothing to derive");
  }
  GAEA_ASSIGN_OR_RETURN(std::vector<Oid> produced, deriver_->Execute(plan));
  // The final step's output is the requested object; check predicates.
  GAEA_ASSIGN_OR_RETURN(const ClassDef* def,
                        catalog_->classes().LookupById(class_id));
  Oid target_oid = produced.back();
  GAEA_ASSIGN_OR_RETURN(DataObject obj, catalog_->GetObject(target_oid));
  GAEA_ASSIGN_OR_RETURN(bool match, filter.Matches(*def, obj));
  if (!match) {
    return Status::NotFound("derived object does not satisfy predicates");
  }
  return std::vector<Oid>{target_oid};
}

StatusOr<QueryResult> QueryEngine::Execute(const QueryRequest& request) {
  if (request.strategy.empty()) {
    return Status::InvalidArgument("query strategy must list at least one step");
  }
  GAEA_ASSIGN_OR_RETURN(std::vector<ClassId> classes,
                        ResolveTarget(request.target));
  QueryResult result;
  for (ClassId class_id : classes) {
    GAEA_ASSIGN_OR_RETURN(const ClassDef* def,
                          catalog_->classes().LookupById(class_id));
    std::vector<std::string> attempts;
    bool answered = false;
    for (QueryStep step : request.strategy) {
      StatusOr<std::vector<Oid>> oids =
          Status::Internal("unreachable query step");
      switch (step) {
        case QueryStep::kRetrieve:
          oids = TryRetrieve(class_id, request.filter);
          break;
        case QueryStep::kInterpolate:
          oids = TryInterpolate(class_id, request.filter);
          break;
        case QueryStep::kDerive:
          oids = TryDerive(class_id, request.filter);
          break;
      }
      attempts.push_back(std::string(QueryStepName(step)) + ": " +
                         (oids.ok() ? std::to_string(oids->size()) + " object(s)"
                                    : oids.status().ToString()));
      if (oids.ok() && !oids->empty()) {
        ClassAnswer answer;
        answer.class_id = class_id;
        answer.class_name = def->name();
        answer.method = step;
        answer.oids = *std::move(oids);
        answer.attempts = std::move(attempts);
        result.answers.push_back(std::move(answer));
        answered = true;
        break;
      }
      // Data-availability misses fall through to the next step; genuine
      // configuration errors abort the query.
      if (!oids.ok() && oids.status().code() != StatusCode::kNotFound &&
          oids.status().code() != StatusCode::kUnderivable &&
          oids.status().code() != StatusCode::kFailedPrecondition) {
        return oids.status();
      }
    }
    if (!answered && !attempts.empty()) {
      // Record the miss so callers can explain "no data" (empty oids).
      ClassAnswer miss;
      miss.class_id = class_id;
      miss.class_name = def->name();
      miss.attempts = std::move(attempts);
      result.answers.push_back(std::move(miss));
    }
  }
  return result;
}

}  // namespace gaea
