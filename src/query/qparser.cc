#include "query/qparser.h"

#include <cstdlib>

#include "ddl/lexer.h"
#include "util/string_util.h"

namespace gaea {

namespace {

// Reuses the DDL tokenizer; the query grammar needs no new token kinds.
class QueryParser {
 public:
  explicit QueryParser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  StatusOr<QueryRequest> Parse() {
    QueryRequest req;
    GAEA_RETURN_IF_ERROR(ExpectKeyword("select"));
    GAEA_RETURN_IF_ERROR(ExpectKeyword("from"));
    GAEA_ASSIGN_OR_RETURN(req.target, ExpectIdentifier());
    if (ConsumeKeyword("where")) {
      GAEA_RETURN_IF_ERROR(Predicate(&req));
      while (ConsumeKeyword("and")) {
        GAEA_RETURN_IF_ERROR(Predicate(&req));
      }
    }
    if (ConsumeKeyword("using")) {
      req.strategy.clear();
      GAEA_RETURN_IF_ERROR(Step(&req));
      while (Peek().Is(TokenKind::kComma)) {
        Take();
        GAEA_RETURN_IF_ERROR(Step(&req));
      }
    }
    if (!Peek().Is(TokenKind::kEof)) {
      return Error("unexpected trailing input: '" + Peek().text + "'");
    }
    return req;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t idx = pos_ + ahead;
    if (idx >= tokens_.size()) idx = tokens_.size() - 1;
    return tokens_[idx];
  }
  Token Take() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  Status Error(const std::string& msg) const {
    const Token& tok = Peek();
    return Status::InvalidArgument("query parse error at line " +
                                   std::to_string(tok.line) + ":" +
                                   std::to_string(tok.column) + ": " + msg);
  }

  Status ExpectKeyword(const char* keyword) {
    if (!Peek().IsKeyword(keyword)) {
      return Error(std::string("expected '") + keyword + "', got '" +
                   Peek().text + "'");
    }
    Take();
    return Status::OK();
  }

  bool ConsumeKeyword(const char* keyword) {
    if (Peek().IsKeyword(keyword)) {
      Take();
      return true;
    }
    return false;
  }

  StatusOr<std::string> ExpectIdentifier() {
    if (!Peek().Is(TokenKind::kIdentifier)) {
      return Error("expected identifier, got '" + Peek().text + "'");
    }
    return Take().text;
  }

  StatusOr<double> ExpectNumber() {
    if (!Peek().Is(TokenKind::kNumber)) {
      return Error("expected number, got '" + Peek().text + "'");
    }
    return std::strtod(Take().text.c_str(), nullptr);
  }

  // "YYYY-MM-DD" (string literal) or raw seconds (number).
  StatusOr<AbsTime> Timestamp() {
    if (Peek().Is(TokenKind::kNumber)) {
      GAEA_ASSIGN_OR_RETURN(double seconds, ExpectNumber());
      return AbsTime(static_cast<int64_t>(seconds));
    }
    if (Peek().Is(TokenKind::kString)) {
      std::string text = Take().text;
      std::vector<std::string> parts = StrSplit(text, '-');
      if (parts.size() != 3) {
        return Error("timestamp must be \"YYYY-MM-DD\", got \"" + text + "\"");
      }
      auto t = AbsTime::FromDate(std::atoi(parts[0].c_str()),
                                 std::atoi(parts[1].c_str()),
                                 std::atoi(parts[2].c_str()));
      if (!t.ok()) return Error("bad timestamp \"" + text + "\"");
      return *t;
    }
    return Error("expected timestamp, got '" + Peek().text + "'");
  }

  Status Predicate(QueryRequest* req) {
    if (ConsumeKeyword("region")) {
      GAEA_RETURN_IF_ERROR(ExpectKeyword("overlaps"));
      GAEA_RETURN_IF_ERROR(ExpectKeyword("box"));
      if (!Peek().Is(TokenKind::kLParen)) return Error("expected '('");
      Take();
      double coords[4];
      for (int i = 0; i < 4; ++i) {
        GAEA_ASSIGN_OR_RETURN(coords[i], ExpectNumber());
        if (i < 3) {
          if (!Peek().Is(TokenKind::kComma)) return Error("expected ','");
          Take();
        }
      }
      if (!Peek().Is(TokenKind::kRParen)) return Error("expected ')'");
      Take();
      req->filter.window.region = Box(coords[0], coords[1], coords[2],
                                      coords[3]);
      return Status::OK();
    }
    if (ConsumeKeyword("time")) {
      if (ConsumeKeyword("at")) {
        GAEA_ASSIGN_OR_RETURN(AbsTime t, Timestamp());
        req->filter.window.time = TimeInterval(t, t);
        return Status::OK();
      }
      GAEA_RETURN_IF_ERROR(ExpectKeyword("in"));
      // '[' is not a DDL token; accept a parenthesized or bare pair.
      bool bracketed = false;
      if (Peek().Is(TokenKind::kLParen)) {
        Take();
        bracketed = true;
      }
      GAEA_ASSIGN_OR_RETURN(AbsTime begin, Timestamp());
      if (!Peek().Is(TokenKind::kComma)) return Error("expected ','");
      Take();
      GAEA_ASSIGN_OR_RETURN(AbsTime end, Timestamp());
      if (bracketed) {
        if (!Peek().Is(TokenKind::kRParen)) return Error("expected ')'");
        Take();
      }
      req->filter.window.time = TimeInterval(begin, end);
      return Status::OK();
    }
    // attribute predicate: <attr> <op> <literal>
    GAEA_ASSIGN_OR_RETURN(std::string attr, ExpectIdentifier());
    AttrPredicate pred;
    pred.attr = std::move(attr);
    switch (Peek().kind) {
      case TokenKind::kEq: pred.op = CompareOp::kEq; break;
      case TokenKind::kNe: pred.op = CompareOp::kNe; break;
      case TokenKind::kLt: pred.op = CompareOp::kLt; break;
      case TokenKind::kLe: pred.op = CompareOp::kLe; break;
      case TokenKind::kGt: pred.op = CompareOp::kGt; break;
      case TokenKind::kGe: pred.op = CompareOp::kGe; break;
      default:
        return Error("expected comparison operator, got '" + Peek().text + "'");
    }
    Take();
    const Token& lit = Peek();
    if (lit.Is(TokenKind::kNumber)) {
      std::string spelling = Take().text;
      if (spelling.find('.') != std::string::npos) {
        pred.value = Value::Double(std::strtod(spelling.c_str(), nullptr));
      } else {
        pred.value = Value::Int(std::strtoll(spelling.c_str(), nullptr, 10));
      }
    } else if (lit.Is(TokenKind::kString)) {
      pred.value = Value::String(Take().text);
    } else if (lit.IsKeyword("true") || lit.IsKeyword("false")) {
      pred.value = Value::Bool(Take().text == "true");
    } else {
      return Error("expected literal, got '" + lit.text + "'");
    }
    req->filter.predicates.push_back(std::move(pred));
    return Status::OK();
  }

  Status Step(QueryRequest* req) {
    if (ConsumeKeyword("retrieve")) {
      req->strategy.push_back(QueryStep::kRetrieve);
    } else if (ConsumeKeyword("interpolate")) {
      req->strategy.push_back(QueryStep::kInterpolate);
    } else if (ConsumeKeyword("derive")) {
      req->strategy.push_back(QueryStep::kDerive);
    } else {
      return Error("expected RETRIEVE, INTERPOLATE or DERIVE, got '" +
                   Peek().text + "'");
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<QueryRequest> ParseQuery(const std::string& source) {
  GAEA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  QueryParser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace gaea
