// Lock-cheap metrics registry: counters, gauges, and latency histograms.
//
// The hot path is a single relaxed atomic add: callers look an instrument
// up once (registry mutex, name -> stable pointer) and then increment it
// forever after with no lock. The registry renders everything as
// Prometheus text exposition format; gauges whose value lives elsewhere
// (cache stats, buffer-pool stats, catalog sizes) are refreshed at scrape
// time by registered collector callbacks rather than being pushed on every
// mutation. See docs/OBSERVABILITY.md for the metric name schema.

#ifndef GAEA_OBS_METRICS_H_
#define GAEA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gaea {
namespace obs {

// Monotonically increasing counter.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time signed value.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Latency histogram with fixed log-scale (power-of-two) buckets.
//
// Bucket i counts observations v with v <= 2^i (microseconds, when used
// for latency); the final bucket is +Inf. 28 finite buckets cover 1us to
// ~134s, which brackets everything Gaea does. Observe is wait-free: one
// relaxed add on the bucket, one on the running sum.
class Histogram {
 public:
  static constexpr int kNumFiniteBuckets = 28;
  static constexpr int kNumBuckets = kNumFiniteBuckets + 1;  // + overflow

  // Upper bound of finite bucket i: 2^i.
  static uint64_t BucketUpperBound(int i) { return uint64_t{1} << i; }

  // Index of the bucket counting `v`: the smallest i with v <= 2^i, or the
  // overflow bucket when v exceeds the largest finite bound.
  static int BucketIndex(uint64_t v);

  void Observe(uint64_t v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  // Snapshot of per-bucket counts (not cumulative), total count, and sum.
  struct Snapshot {
    uint64_t buckets[kNumBuckets];
    uint64_t count;
    uint64_t sum;
  };
  Snapshot snapshot() const;

  uint64_t count() const;
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

// Name -> instrument registry with Prometheus text rendering.
//
// Lookup creates the instrument on first use and returns a pointer that
// stays valid for the registry's lifetime. Names follow Prometheus rules
// ([a-zA-Z_:][a-zA-Z0-9_:]*) and may carry a literal label suffix, e.g.
// `gaea_pool_page_hits{pool="heap"}`; the text renderer groups metrics by
// base name (everything before '{') for # TYPE lines.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // Registers a callback run at the start of every Render, used to refresh
  // gauges whose source of truth lives in another subsystem (it typically
  // captures that subsystem and calls Set on gauges of this registry).
  void AddCollector(std::function<void()> fn);

  // Prometheus text exposition format, metrics sorted by name.
  std::string Render() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* GetOrCreate(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::vector<std::function<void()>> collectors_;
};

}  // namespace obs
}  // namespace gaea

#endif  // GAEA_OBS_METRICS_H_
