#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace gaea {
namespace obs {

void Profiler::Record(const std::string& key, uint64_t duration_us) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[key];
  if (entry.count == 0 || duration_us < entry.min_us) {
    entry.min_us = duration_us;
  }
  if (duration_us > entry.max_us) entry.max_us = duration_us;
  entry.count += 1;
  entry.total_us += duration_us;
}

std::map<std::string, Profiler::Entry> Profiler::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

std::string Profiler::Table(const std::string& prefix) const {
  std::vector<std::pair<std::string, Entry>> rows;
  for (const auto& [key, entry] : snapshot()) {
    if (key.compare(0, prefix.size(), prefix) == 0) {
      rows.emplace_back(key, entry);
    }
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.total_us != b.second.total_us) {
      return a.second.total_us > b.second.total_us;
    }
    return a.first < b.first;
  });

  size_t name_width = 4;  // "name"
  for (const auto& [key, entry] : rows) {
    name_width = std::max(name_width, key.size());
  }
  char line[256];
  std::snprintf(line, sizeof(line), "%-*s %10s %12s %10s %10s %10s\n",
                static_cast<int>(name_width), "name", "count", "total_us",
                "avg_us", "min_us", "max_us");
  std::string out = line;
  for (const auto& [key, entry] : rows) {
    uint64_t avg = entry.count == 0 ? 0 : entry.total_us / entry.count;
    std::snprintf(line, sizeof(line),
                  "%-*s %10llu %12llu %10llu %10llu %10llu\n",
                  static_cast<int>(name_width), key.c_str(),
                  static_cast<unsigned long long>(entry.count),
                  static_cast<unsigned long long>(entry.total_us),
                  static_cast<unsigned long long>(avg),
                  static_cast<unsigned long long>(entry.min_us),
                  static_cast<unsigned long long>(entry.max_us));
    out += line;
  }
  return out;
}

void Profiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace obs
}  // namespace gaea
