#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "util/env.h"

namespace gaea {
namespace obs {

namespace {

thread_local TraceContext t_context;

// Dense per-thread ordinal, assigned on first use. Chrome's viewer groups
// events by tid; dense ordinals also keep golden traces stable across runs
// (native thread ids are not reproducible).
uint64_t ThreadOrdinal() {
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

void AppendJsonEscaped(const std::string& in, std::string* out) {
  for (char c : in) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

Tracer::Tracer() = default;

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::SetClock(std::function<uint64_t()> clock) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = std::move(clock);
}

uint64_t Tracer::Now() const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (clock_) return clock_();
  }
  return Env::Default()->NowMicros();
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  next_span_id_.store(1, std::memory_order_relaxed);
  next_trace_id_.store(1, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

TraceContext Tracer::CurrentContext() { return t_context; }

void Tracer::SetCurrentContext(TraceContext ctx) { t_context = ctx; }

void Tracer::Record(Span span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= kMaxSpans) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_.push_back(std::move(span));
}

std::vector<Span> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::string Tracer::DumpChromeJson() const {
  std::vector<Span> spans = this->spans();
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    if (a.start_us != b.start_us) return a.start_us < b.start_us;
    return a.span_id < b.span_id;
  });
  std::string out = "{\"traceEvents\":[\n";
  for (size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    out += "{\"ph\":\"X\",\"name\":\"";
    AppendJsonEscaped(s.name, &out);
    out += "\",\"cat\":\"";
    AppendJsonEscaped(s.category, &out);
    out += "\",\"pid\":1,\"tid\":" + std::to_string(s.tid);
    out += ",\"ts\":" + std::to_string(s.start_us);
    out += ",\"dur\":" + std::to_string(s.duration_us);
    out += ",\"args\":{\"trace\":" + std::to_string(s.trace_id);
    out += ",\"span\":" + std::to_string(s.span_id);
    out += ",\"parent\":" + std::to_string(s.parent_id) + "}}";
    if (i + 1 != spans.size()) out += ",";
    out += "\n";
  }
  out += "]}\n";
  return out;
}

SpanGuard::SpanGuard(std::string name, std::string category) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  active_ = true;
  saved_ = t_context;
  span_.trace_id =
      saved_.trace_id != 0 ? saved_.trace_id : tracer.NewTraceId();
  span_.parent_id = saved_.parent_id;
  span_.span_id = tracer.NextSpanId();
  span_.name = std::move(name);
  span_.category = std::move(category);
  span_.tid = ThreadOrdinal();
  span_.start_us = tracer.Now();
  t_context = TraceContext{span_.trace_id, span_.span_id};
}

SpanGuard::~SpanGuard() {
  if (!active_) return;
  Tracer& tracer = Tracer::Global();
  uint64_t end = tracer.Now();
  span_.duration_us = end > span_.start_us ? end - span_.start_us : 0;
  t_context = saved_;
  tracer.Record(std::move(span_));
}

}  // namespace obs
}  // namespace gaea
