// Hierarchical span tracer with Chrome trace_event JSON output.
//
// A trace is a tree of spans: request -> task -> operator. The tree shape
// comes from a thread-local TraceContext (trace id + current parent span);
// SpanGuard is the RAII unit — it reads the context on entry, installs
// itself as the parent for everything nested inside, and records the
// completed span on exit. Crossing a thread boundary (server worker pool,
// scheduler workers) means capturing CurrentContext() on the spawning side
// and installing it with ScopedContext on the worker side; crossing the
// network means carrying the trace id in the request header (docs/NET.md).
//
// The tracer is process-global and disabled by default; when disabled a
// SpanGuard is one relaxed atomic load. Dump as Chrome trace JSON via
// `gaea_shell trace <file>`, gaead --trace, or a bench --trace flag, and
// open in chrome://tracing or https://ui.perfetto.dev.

#ifndef GAEA_OBS_TRACE_H_
#define GAEA_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace gaea {
namespace obs {

// One completed span. Ids are process-local and dense (handed out by an
// atomic counter), which keeps golden traces stable.
struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root of its trace
  std::string name;
  std::string category;
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  uint64_t tid = 0;  // process-local thread ordinal, dense from 1
};

// The ambient trace position of the current thread.
struct TraceContext {
  uint64_t trace_id = 0;   // 0 = not inside any trace
  uint64_t parent_id = 0;  // span to parent new spans under
};

class Tracer {
 public:
  static Tracer& Global();

  // Tracing is off by default; when off, span creation is a no-op.
  void Enable(bool on) { enabled_.store(on, std::memory_order_release); }
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  // Clock used for span timestamps; defaults to Env::Default()->NowMicros.
  // Tests inject a FakeClockEnv-backed function for determinism.
  void SetClock(std::function<uint64_t()> clock);

  // Drops all recorded spans and resets span/trace id allocation, so a test
  // records the same ids every run. Does not change enabled state or clock.
  void Reset();

  uint64_t NewTraceId() {
    return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // Thread-local context plumbing.
  static TraceContext CurrentContext();
  static void SetCurrentContext(TraceContext ctx);

  void Record(Span span);
  std::vector<Span> spans() const;
  // Spans dropped because the in-memory buffer hit its cap.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  // Chrome trace_event JSON ("X" complete events; parent/trace ids carried
  // in args). Spans are ordered by (start, span id), so output for a
  // fake-clock single-threaded run is byte-stable.
  std::string DumpChromeJson() const;

 private:
  friend class SpanGuard;

  Tracer();

  uint64_t Now() const;
  uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // Bounded span buffer: a long-running traced server should degrade to
  // dropping spans, not eat the heap.
  static constexpr size_t kMaxSpans = 1 << 20;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_span_id_{1};
  std::atomic<uint64_t> next_trace_id_{1};
  std::atomic<uint64_t> dropped_{0};

  mutable std::mutex mu_;
  std::function<uint64_t()> clock_;  // guarded by mu_
  std::vector<Span> spans_;          // guarded by mu_
};

// RAII span: opens on construction (becoming the thread's current parent),
// records on destruction. When the thread has no trace context yet, the
// span starts a fresh trace (so a local shell/bench run traces without any
// network header to seed it).
class SpanGuard {
 public:
  SpanGuard(std::string name, std::string category);
  ~SpanGuard();

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  bool active() const { return active_; }
  uint64_t span_id() const { return span_.span_id; }

 private:
  bool active_ = false;
  Span span_;
  TraceContext saved_;
};

// Installs `ctx` as the thread's trace context for the current scope; used
// when work hops threads (worker pools) or arrives off the wire.
class ScopedContext {
 public:
  explicit ScopedContext(TraceContext ctx) : saved_(Tracer::CurrentContext()) {
    Tracer::SetCurrentContext(ctx);
  }
  ~ScopedContext() { Tracer::SetCurrentContext(saved_); }

  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  TraceContext saved_;
};

}  // namespace obs
}  // namespace gaea

#endif  // GAEA_OBS_TRACE_H_
