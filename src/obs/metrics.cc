#include "obs/metrics.h"

#include <algorithm>

namespace gaea {
namespace obs {

int Histogram::BucketIndex(uint64_t v) {
  // Smallest i with v <= 2^i. 0 and 1 both land in bucket 0 (bound 2^0=1);
  // anything above the largest finite bound lands in the overflow bucket.
  if (v <= 1) return 0;
  if (v > BucketUpperBound(kNumFiniteBuckets - 1)) return kNumFiniteBuckets;
  // v >= 2 here: the bucket for v is ceil(log2(v)).
  int bits = 64 - __builtin_clzll(v - 1);  // ceil(log2(v)) for v >= 2
  return std::min(bits, kNumFiniteBuckets - 1);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.count = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

MetricsRegistry::Entry* MetricsRegistry::GetOrCreate(const std::string& name,
                                                     Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
    it = entries_.emplace(name, std::move(entry)).first;
  }
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  Entry* entry = GetOrCreate(name, Kind::kCounter);
  return entry->kind == Kind::kCounter ? entry->counter.get() : nullptr;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  Entry* entry = GetOrCreate(name, Kind::kGauge);
  return entry->kind == Kind::kGauge ? entry->gauge.get() : nullptr;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  Entry* entry = GetOrCreate(name, Kind::kHistogram);
  return entry->kind == Kind::kHistogram ? entry->histogram.get() : nullptr;
}

void MetricsRegistry::AddCollector(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.push_back(std::move(fn));
}

namespace {

// Base metric name: everything before a literal label suffix.
std::string BaseName(const std::string& name) {
  size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

// Splices histogram-series labels (le="...") into a possibly-labelled name:
//   h             -> h_bucket{le="2"}
//   h{pool="x"}   -> h_bucket{pool="x",le="2"}
std::string SeriesName(const std::string& name, const std::string& suffix,
                       const std::string& extra_label) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) {
    if (extra_label.empty()) return name + suffix;
    return name + suffix + "{" + extra_label + "}";
  }
  std::string labels = name.substr(brace + 1, name.size() - brace - 2);
  std::string out = name.substr(0, brace) + suffix + "{" + labels;
  if (!extra_label.empty()) out += "," + extra_label;
  out += "}";
  return out;
}

}  // namespace

std::string MetricsRegistry::Render() const {
  std::vector<std::function<void()>> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    collectors = collectors_;
  }
  for (const auto& fn : collectors) fn();

  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  std::string last_base;
  for (const auto& [name, entry] : entries_) {
    std::string base = BaseName(name);
    bool new_base = base != last_base;
    last_base = base;
    switch (entry.kind) {
      case Kind::kCounter:
        if (new_base) out += "# TYPE " + base + " counter\n";
        out += name + " " + std::to_string(entry.counter->value()) + "\n";
        break;
      case Kind::kGauge:
        if (new_base) out += "# TYPE " + base + " gauge\n";
        out += name + " " + std::to_string(entry.gauge->value()) + "\n";
        break;
      case Kind::kHistogram: {
        if (new_base) out += "# TYPE " + base + " histogram\n";
        Histogram::Snapshot snap = entry.histogram->snapshot();
        uint64_t cumulative = 0;
        for (int i = 0; i < Histogram::kNumFiniteBuckets; ++i) {
          cumulative += snap.buckets[i];
          out += SeriesName(name, "_bucket",
                            "le=\"" +
                                std::to_string(Histogram::BucketUpperBound(i)) +
                                "\"") +
                 " " + std::to_string(cumulative) + "\n";
        }
        out += SeriesName(name, "_bucket", "le=\"+Inf\"") + " " +
               std::to_string(snap.count) + "\n";
        out += SeriesName(name, "_sum", "") + " " + std::to_string(snap.sum) +
               "\n";
        out += SeriesName(name, "_count", "") + " " +
               std::to_string(snap.count) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace gaea
