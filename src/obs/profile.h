// Cumulative timing tables: where did derivation time go?
//
// The profiler accumulates (count, total, min, max) per key. The kernel
// owns one and feeds it from two seams: the deriver records one sample per
// executed process ("process/<name>"), and operator evaluation records one
// per op invocation ("op/<name>"). A Task row in the lineage log says
// *what* ran; joining on process name against this table says *how long*
// that kind of step takes. Queryable from the shell: `profile`.

#ifndef GAEA_OBS_PROFILE_H_
#define GAEA_OBS_PROFILE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace gaea {
namespace obs {

class Profiler {
 public:
  struct Entry {
    uint64_t count = 0;
    uint64_t total_us = 0;
    uint64_t min_us = 0;
    uint64_t max_us = 0;
  };

  void Record(const std::string& key, uint64_t duration_us);

  std::map<std::string, Entry> snapshot() const;

  // Human-readable table (sorted by total time, descending), optionally
  // restricted to keys with the given prefix ("process/", "op/").
  std::string Table(const std::string& prefix = "") const;

  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace obs
}  // namespace gaea

#endif  // GAEA_OBS_PROFILE_H_
