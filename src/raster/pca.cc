#include "raster/pca.h"

#include <cmath>

#include "raster/image_ops.h"

namespace gaea {

namespace {

// Shared pipeline of Figure 4: convert-image-matrix, center (and optionally
// standardize), compute-covariance/correlation, get-eigen-vector,
// linear-combination, convert-matrix-image.
StatusOr<PcaResult> PcaImpl(const std::vector<const Image*>& bands,
                            int n_components, bool standardized) {
  if (bands.size() < 2) {
    return Status::InvalidArgument(
        "PCA needs at least two input images (paper Petri-net threshold)");
  }
  GAEA_ASSIGN_OR_RETURN(Matrix data, ImagesToMatrix(bands));
  int nbands = data.cols();
  if (n_components == 0) n_components = nbands;
  if (n_components < 0 || n_components > nbands) {
    return Status::InvalidArgument("n_components out of range: " +
                                   std::to_string(n_components));
  }

  // Center (z-score for SPCA) the observations.
  std::vector<double> means = data.ColumnMeans();
  std::vector<double> sds = data.ColumnStddevs();
  Matrix centered = data;
  for (int i = 0; i < centered.rows(); ++i) {
    for (int j = 0; j < nbands; ++j) {
      double v = centered(i, j) - means[j];
      if (standardized) v = sds[j] > 0 ? v / sds[j] : 0.0;
      centered(i, j) = v;
    }
  }

  GAEA_ASSIGN_OR_RETURN(
      Matrix second_moment,
      standardized ? data.Correlation() : data.Covariance());
  GAEA_ASSIGN_OR_RETURN(Matrix::Eigen eig, second_moment.SymmetricEigen());

  // Keep the strongest n_components eigenvectors as loading columns.
  Matrix loadings(nbands, n_components);
  for (int j = 0; j < n_components; ++j) {
    for (int i = 0; i < nbands; ++i) loadings(i, j) = eig.vectors(i, j);
  }

  GAEA_ASSIGN_OR_RETURN(Matrix scores, LinearCombination(centered, loadings));
  GAEA_ASSIGN_OR_RETURN(
      std::vector<Image> comps,
      MatrixToImages(scores, bands[0]->nrow(), bands[0]->ncol()));

  PcaResult out;
  out.components = std::move(comps);
  out.eigenvalues.assign(eig.values.begin(),
                         eig.values.begin() + n_components);
  out.loadings = std::move(loadings);
  return out;
}

}  // namespace

StatusOr<PcaResult> Pca(const std::vector<const Image*>& bands,
                        int n_components) {
  return PcaImpl(bands, n_components, /*standardized=*/false);
}

StatusOr<PcaResult> Spca(const std::vector<const Image*>& bands,
                         int n_components) {
  return PcaImpl(bands, n_components, /*standardized=*/true);
}

}  // namespace gaea
