// Classification operators (paper Figures 3 & 5).
//
// `unsuperclassify` is the unsupervised land-cover classification of process
// P20: k-means over the multi-band pixel vectors, deterministic (k-means++
// style farthest-point seeding from a fixed seed) so that re-running a task
// reproduces the identical output — the property Gaea's experiment
// reproducibility depends on.
//
// `maxlike` is the maximum-likelihood supervised classifier the paper lists
// among the classification schemes scientists evaluate (§1); per-class
// Gaussians with diagonal covariance estimated from a training label image.

#ifndef GAEA_RASTER_CLASSIFY_H_
#define GAEA_RASTER_CLASSIFY_H_

#include <vector>

#include "raster/image.h"
#include "util/status.h"

namespace gaea {

struct KMeansOptions {
  int max_iterations = 25;
  uint64_t seed = 0x9aea;  // fixed: derivations must be reproducible
};

// Unsupervised classification of co-registered bands into `k` classes.
// Returns an int32 label image with values in [0, k).
StatusOr<Image> UnsupervisedClassify(const std::vector<const Image*>& bands,
                                     int k, const KMeansOptions& opts = {});

// Maximum-likelihood supervised classification. `training` is an int32
// image where pixel >= 0 gives the true class of that pixel and -1 means
// unlabeled. Returns an int32 label image over classes seen in training.
StatusOr<Image> MaxLikelihoodClassify(const std::vector<const Image*>& bands,
                                      const Image& training);

// Land-cover change map between two label images of the same shape:
// pixel = before_label * num_classes + after_label where labels differ,
// and -1 where they agree (no change). This is the final step of the
// Figure 5 land-change-detection compound process.
StatusOr<Image> ChangeMap(const Image& before, const Image& after,
                          int num_classes);

// Fraction of pixels marked changed in a ChangeMap output.
StatusOr<double> ChangedFraction(const Image& change_map);

}  // namespace gaea

#endif  // GAEA_RASTER_CLASSIFY_H_
