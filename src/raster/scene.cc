#include "raster/scene.h"

#include <cmath>

namespace gaea {

namespace {

// Deterministic hash-based gradient-free value noise. Hash a lattice point
// with the seed, interpolate with a smoothstep; octaves add detail.
uint64_t HashCoords(uint64_t seed, int64_t x, int64_t y) {
  uint64_t h = seed;
  h ^= static_cast<uint64_t>(x) * 0x9E3779B97F4A7C15ULL;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
  h ^= static_cast<uint64_t>(y) * 0xC2B2AE3D27D4EB4FULL;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL;
  return h ^ (h >> 31);
}

// Uniform in [0,1) at a lattice point.
double LatticeValue(uint64_t seed, int64_t x, int64_t y) {
  return static_cast<double>(HashCoords(seed, x, y) >> 11) /
         static_cast<double>(1ULL << 53);
}

double SmoothStep(double t) { return t * t * (3.0 - 2.0 * t); }

// Smooth value noise in [0,1) at continuous coordinates.
double ValueNoise(uint64_t seed, double x, double y) {
  int64_t x0 = static_cast<int64_t>(std::floor(x));
  int64_t y0 = static_cast<int64_t>(std::floor(y));
  double fx = SmoothStep(x - x0);
  double fy = SmoothStep(y - y0);
  double v00 = LatticeValue(seed, x0, y0);
  double v10 = LatticeValue(seed, x0 + 1, y0);
  double v01 = LatticeValue(seed, x0, y0 + 1);
  double v11 = LatticeValue(seed, x0 + 1, y0 + 1);
  double a = v00 + (v10 - v00) * fx;
  double b = v01 + (v11 - v01) * fx;
  return a + (b - a) * fy;
}

// Three-octave fractal noise in [0,1].
double Fractal(uint64_t seed, double x, double y) {
  double v = 0.5333 * ValueNoise(seed, x, y) +
             0.2667 * ValueNoise(seed ^ 0xABCD, 2 * x, 2 * y) +
             0.2000 * ValueNoise(seed ^ 0x1357, 4 * x, 4 * y);
  return v;
}

// Per-pixel deterministic "sensor noise" in [-1,1].
double PixelNoise(uint64_t seed, int band, int r, int c) {
  uint64_t h = HashCoords(seed ^ (0xBEEF0000ULL + band), r, c);
  return 2.0 * (static_cast<double>(h >> 11) /
                static_cast<double>(1ULL << 53)) -
         1.0;
}

}  // namespace

StatusOr<std::vector<Image>> GenerateScene(const SceneSpec& spec) {
  if (spec.nbands <= 0) {
    return Status::InvalidArgument("scene needs at least one band");
  }
  if (spec.feature_scale <= 0) {
    return Status::InvalidArgument("feature_scale must be positive");
  }
  // Two latent fields: elevation (stable across epochs) and vegetation
  // (drifts with epoch_drift).
  uint64_t elev_seed = spec.seed;
  uint64_t veg_seed = spec.seed ^ 0x77777777ULL;
  double drift = spec.epoch_drift;

  std::vector<Image> bands;
  bands.reserve(spec.nbands);
  for (int b = 0; b < spec.nbands; ++b) {
    GAEA_ASSIGN_OR_RETURN(
        Image img, Image::Create(spec.nrow, spec.ncol, PixelType::kFloat64));
    bands.push_back(std::move(img));
  }

  for (int r = 0; r < spec.nrow; ++r) {
    for (int c = 0; c < spec.ncol; ++c) {
      double x = c / spec.feature_scale;
      double y = r / spec.feature_scale;
      double elev = Fractal(elev_seed, x, y);
      // Epoch drift: blend vegetation field toward a shifted field.
      double veg0 = Fractal(veg_seed, x, y);
      double veg1 = Fractal(veg_seed ^ 0xFEDCBA98ULL, x + 11.7, y - 4.3);
      double veg = (1.0 - drift) * veg0 + drift * veg1;

      for (int b = 0; b < spec.nbands; ++b) {
        double v;
        if (b == 0) {
          // Red: bright over bare terrain, dark over vegetation.
          v = 0.25 + 0.55 * elev - 0.35 * veg;
        } else if (b == 1) {
          // Near infrared: bright over vegetation.
          v = 0.20 + 0.15 * elev + 0.60 * veg;
        } else {
          // Higher bands: epoch-stable mixtures so PCA sees correlated
          // structure beyond the vegetation signal.
          double w = static_cast<double>(b) / spec.nbands;
          v = 0.2 + (0.7 - 0.4 * w) * elev + (0.1 + 0.4 * w) * veg;
        }
        v += spec.noise * PixelNoise(spec.seed, b, r, c);
        bands[b].Set(r, c, v);
      }
    }
  }
  return bands;
}

StatusOr<Image> GenerateGroundTruth(const SceneSpec& spec, int num_classes) {
  if (num_classes <= 0) {
    return Status::InvalidArgument("ground truth needs positive class count");
  }
  GAEA_ASSIGN_OR_RETURN(
      Image out, Image::Create(spec.nrow, spec.ncol, PixelType::kInt32));
  uint64_t elev_seed = spec.seed;
  uint64_t veg_seed = spec.seed ^ 0x77777777ULL;
  for (int r = 0; r < spec.nrow; ++r) {
    for (int c = 0; c < spec.ncol; ++c) {
      double x = c / spec.feature_scale;
      double y = r / spec.feature_scale;
      double elev = Fractal(elev_seed, x, y);
      double veg = Fractal(veg_seed, x, y);
      // Quantize the dominant latent direction into classes.
      double t = 0.5 * elev + 0.5 * veg;
      int label = std::min(static_cast<int>(t * num_classes), num_classes - 1);
      out.Set(r, c, label);
    }
  }
  return out;
}

}  // namespace gaea
