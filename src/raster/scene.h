// Synthetic scene generator: the substitute for Landsat TM / AVHRR imagery
// (see DESIGN.md §2). Generates multi-band rasters with the statistical
// structure the paper's experiments rely on:
//
//  * spatially correlated fields (value-noise terrain) so classification
//    finds coherent regions rather than salt-and-pepper noise;
//  * strong inter-band correlation (bands are linear mixes of shared latent
//    fields) so PCA concentrates variance in few components;
//  * a seasonal/annual NDVI drift knob so vegetation-change detection between
//    two epochs has signal;
//  * class-structured land cover so unsupervised classification is
//    well-posed.
//
// Everything is driven by an explicit seed: scenes (like derivations) must be
// reproducible.

#ifndef GAEA_RASTER_SCENE_H_
#define GAEA_RASTER_SCENE_H_

#include <cstdint>
#include <vector>

#include "raster/image.h"
#include "util/status.h"

namespace gaea {

struct SceneSpec {
  int nrow = 64;
  int ncol = 64;
  int nbands = 3;
  uint64_t seed = 42;
  // Spatial feature size in pixels (larger = smoother terrain).
  double feature_scale = 16.0;
  // Std-dev of per-band independent sensor noise.
  double noise = 0.05;
  // Temporal drift in [0,1]: 0 reproduces the same epoch, 1 is a fully
  // different season (shifts the latent vegetation field).
  double epoch_drift = 0.0;
};

// Generates `spec.nbands` co-registered float8 bands. Band 0 behaves like a
// red/visible band (anti-correlated with vegetation), band 1 like near
// infrared (correlated with vegetation), higher bands are mixtures.
StatusOr<std::vector<Image>> GenerateScene(const SceneSpec& spec);

// Generates a ground-truth land-cover label image (int32 labels in
// [0, num_classes)) consistent with the latent fields of `spec`, usable as
// training data for supervised classification.
StatusOr<Image> GenerateGroundTruth(const SceneSpec& spec, int num_classes);

}  // namespace gaea

#endif  // GAEA_RASTER_SCENE_H_
