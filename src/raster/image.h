// The `image` primitive class (paper §2.1.3): a 2-D raster with a pixel data
// type. The paper's external representation is "(nrows, ncols, pixtype,
// filepath)" with pixel data in a file; we keep pixels in memory and provide
// the same file-backed round trip (Save/Load) so the storage substrate can
// spill rasters exactly as the Postgres ADT did.
//
// Pixels are stored in their native width (uint8/int16/int32/float/double)
// and accessed through double-valued Get/Set, which is what every analysis
// operator (NDVI, PCA, classification) works in.

#ifndef GAEA_RASTER_IMAGE_H_
#define GAEA_RASTER_IMAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/serialize.h"
#include "util/status.h"

namespace gaea {

enum class PixelType : uint8_t {
  kUInt8 = 0,
  kInt16 = 1,
  kInt32 = 2,
  kFloat32 = 3,
  kFloat64 = 4,
};

// Bytes per pixel for `t`.
size_t PixelSize(PixelType t);
const char* PixelTypeName(PixelType t);
// Parses "char", "int2", "int4", "float4", "float8" — the paper's names —
// as well as the modern aliases above.
StatusOr<PixelType> PixelTypeFromString(const std::string& s);

// A dense row-major raster. Copyable (deep copy) and movable; analysis
// operators treat images as values, matching the paper's value-identified
// primitive classes ("changing the value of an object in a primitive class
// will always lead to another object").
class Image {
 public:
  // Empty 0x0 image.
  Image() = default;

  // Zero-filled raster. Fails on nonpositive dimensions or absurd sizes.
  static StatusOr<Image> Create(int nrow, int ncol,
                                PixelType type = PixelType::kFloat64);

  // Builds from a row-major double vector (values clamped/cast per `type`).
  static StatusOr<Image> FromValues(int nrow, int ncol,
                                    const std::vector<double>& values,
                                    PixelType type = PixelType::kFloat64);

  int nrow() const { return nrow_; }
  int ncol() const { return ncol_; }
  // Overflow-safe accessors: loop bounds in raster kernels index with
  // int64_t against these so row*ncol arithmetic can't wrap (docs/PERF.md).
  int64_t nrow64() const { return nrow_; }
  int64_t ncol64() const { return ncol_; }
  size_t SizeBytes() const { return data_.size(); }
  PixelType pixel_type() const { return type_; }
  size_t PixelCount() const {
    return static_cast<size_t>(nrow_) * static_cast<size_t>(ncol_);
  }
  bool empty() const { return nrow_ == 0 || ncol_ == 0; }

  // Unchecked accessors (assert in debug builds). Row/col are 0-based.
  double Get(int r, int c) const;
  void Set(int r, int c, double v);

  // Checked accessors.
  StatusOr<double> At(int r, int c) const;
  Status SetAt(int r, int c, double v);

  // Row access for vectorized kernels. The typed pointers are only valid
  // while the image is alive and unresized; RowF64 requires
  // pixel_type() == kFloat64 (asserted in debug builds).
  const double* RowF64(int64_t r) const;
  double* MutableRowF64(int64_t r);
  // Conversion row access for any pixel type: ReadRow widens row `r` into
  // `out[0..ncol)` exactly as Get() would; WriteRow narrows with the same
  // clamping as Set(). The per-type switch sits outside the column loop, so
  // each leg is a contiguous loop the compiler can vectorize.
  void ReadRow(int64_t r, double* out) const;
  void WriteRow(int64_t r, const double* in);

  bool SameShape(const Image& other) const {
    return nrow_ == other.nrow_ && ncol_ == other.ncol_;
  }

  // Summary statistics over all pixels (empty image -> all zeros).
  struct Stats {
    double min = 0, max = 0, mean = 0, stddev = 0;
  };
  Stats ComputeStats() const;

  // Histogram with `bins` equal-width buckets over [lo, hi].
  std::vector<int64_t> Histogram(int bins, double lo, double hi) const;

  // Exact pixel-wise equality (and same shape/type).
  bool operator==(const Image& other) const;
  bool operator!=(const Image& other) const { return !(*this == other); }

  // Converts pixel representation (values clamped per target type).
  StatusOr<Image> ConvertTo(PixelType type) const;

  std::string ToString() const;

  // In-memory serialization (used by the object store for raster payloads).
  void Serialize(BinaryWriter* w) const;
  static StatusOr<Image> Deserialize(BinaryReader* r);

  // File-backed round trip matching the paper's "(nrows, ncols, pixtype,
  // filepath)" representation: a small header followed by raw pixels.
  Status Save(const std::string& path) const;
  static StatusOr<Image> Load(const std::string& path);

 private:
  Image(int nrow, int ncol, PixelType type);

  double GetRaw(size_t idx) const;
  void SetRaw(size_t idx, double v);

  int nrow_ = 0;
  int ncol_ = 0;
  PixelType type_ = PixelType::kFloat64;
  std::vector<uint8_t> data_;
};

// Images flow through the Value system by shared pointer; operators never
// mutate their inputs, so sharing is safe.
using ImagePtr = std::shared_ptr<const Image>;

}  // namespace gaea

#endif  // GAEA_RASTER_IMAGE_H_
