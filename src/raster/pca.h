// Principal component analysis over multi-band imagery (paper §2.1.3,
// Figure 4) and its standardized variant SPCA (Eastman [9]), the two
// derivation procedures the paper uses as the flagship example of "the same
// conceptual outcome" (vegetation change) reached by different processes.
//
// PCA diagonalizes the band covariance matrix; SPCA diagonalizes the band
// correlation matrix (i.e. PCA on z-scored bands). Both expose the exact
// operator pipeline of Figure 4 so the compound-operator network and the
// fused implementation can be cross-validated.

#ifndef GAEA_RASTER_PCA_H_
#define GAEA_RASTER_PCA_H_

#include <vector>

#include "raster/image.h"
#include "raster/matrix.h"
#include "util/status.h"

namespace gaea {

struct PcaResult {
  // Component images, strongest first; size = n_components.
  std::vector<Image> components;
  // Eigenvalues (descending) of the (co)variance/correlation matrix.
  std::vector<double> eigenvalues;
  // Loadings: columns are eigenvectors, nbands x n_components.
  Matrix loadings;
};

// Standard PCA. `n_components` <= number of bands (0 = all).
StatusOr<PcaResult> Pca(const std::vector<const Image*>& bands,
                        int n_components = 0);

// Standardized PCA (correlation-matrix PCA on z-scored bands).
StatusOr<PcaResult> Spca(const std::vector<const Image*>& bands,
                         int n_components = 0);

}  // namespace gaea

#endif  // GAEA_RASTER_PCA_H_
