// Watershed segmentation by immersion (Vincent & Soille 1991, the paper's
// reference [39]): the paper names WATERSHED as "another well known
// imprecise entity" — the canonical example of a concept whose member
// classes are defined by the segmentation procedure applied.
//
// The implementation follows the flooding formulation: pixels are processed
// in increasing grey level; a pixel joins the basin of an already-labeled
// 4-neighbour, seeds a new basin when it is a regional minimum, and becomes
// a watershed ridge when two distinct basins meet.

#ifndef GAEA_RASTER_WATERSHED_H_
#define GAEA_RASTER_WATERSHED_H_

#include "raster/image.h"
#include "util/status.h"

namespace gaea {

// Label value marking ridge pixels separating two basins.
constexpr int kWatershedRidge = 0;

struct WatershedResult {
  // int32 image: kWatershedRidge on ridges, basin ids 1..n_basins elsewhere.
  Image labels;
  int n_basins = 0;
};

// Segments `elevation` into catchment basins. `levels` quantizes the grey
// range for the immersion order (more levels = finer flooding).
StatusOr<WatershedResult> Watershed(const Image& elevation, int levels = 256);

}  // namespace gaea

#endif  // GAEA_RASTER_WATERSHED_H_
