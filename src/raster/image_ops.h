// Analysis operators on the `image` primitive class (paper §2.1.3 and
// Figures 3-4): band arithmetic, NDVI, composites, image<->matrix
// conversion, resampling and spatio-temporal interpolation.
//
// All operators are pure: inputs are const, outputs are fresh images. This
// matches the paper's value-identified primitive classes and makes task
// replay (reproducibility) exact.

#ifndef GAEA_RASTER_IMAGE_OPS_H_
#define GAEA_RASTER_IMAGE_OPS_H_

#include <functional>
#include <vector>

#include "raster/image.h"
#include "raster/matrix.h"
#include "util/status.h"

namespace gaea {

// ---- pixel-wise arithmetic -------------------------------------------------

// Applies `fn` pixel-wise to two same-shaped images; result is float8.
StatusOr<Image> PointwiseBinary(const Image& a, const Image& b,
                                const std::function<double(double, double)>& fn);
// Applies `fn` pixel-wise to one image; result is float8.
StatusOr<Image> PointwiseUnary(const Image& a,
                               const std::function<double(double)>& fn);

StatusOr<Image> ImgAdd(const Image& a, const Image& b);
StatusOr<Image> ImgSubtract(const Image& a, const Image& b);
StatusOr<Image> ImgMultiply(const Image& a, const Image& b);
// Pixel-wise a/b; pixels where |b| < eps produce 0 (the GIS convention for
// ratio images over nodata).
StatusOr<Image> ImgDivide(const Image& a, const Image& b, double eps = 1e-12);
StatusOr<Image> ImgScale(const Image& a, double factor, double offset = 0.0);
StatusOr<Image> ImgAbs(const Image& a);

// Normalized difference vegetation index: (nir - red) / (nir + red), with 0
// where the denominator vanishes. The qualitative vegetation measure the
// paper's introduction scenario derives from AVHRR imagery.
StatusOr<Image> Ndvi(const Image& nir, const Image& red);

// ---- multi-band helpers ----------------------------------------------------

// Validates that all bands share one shape and converts them to float8.
// This is the `composite(bands)` of Figure 3: the result is the stacked
// multi-band raster handed to classification.
StatusOr<std::vector<Image>> Composite(const std::vector<const Image*>& bands);

// Figure 4 "convert-image-matrix": stacks bands into an (npixels x nbands)
// observation matrix, one row per pixel.
StatusOr<Matrix> ImagesToMatrix(const std::vector<const Image*>& bands);

// Figure 4 "convert-matrix-image": splits an (npixels x k) matrix back into
// k images of shape nrow x ncol.
StatusOr<std::vector<Image>> MatrixToImages(const Matrix& m, int nrow,
                                            int ncol);

// Figure 4 "linear-combination": data (npixels x nbands) * weights
// (nbands x k) -> components (npixels x k).
StatusOr<Matrix> LinearCombination(const Matrix& data, const Matrix& weights);

// ---- resampling & interpolation ---------------------------------------------

enum class ResampleMethod { kNearest, kBilinear };

// Resamples to new_rows x new_cols.
StatusOr<Image> Resample(const Image& a, int new_rows, int new_cols,
                         ResampleMethod method = ResampleMethod::kBilinear);

// Linear interpolation in time between two co-registered snapshots: weight
// w in [0,1] selects a point between `a` (w=0) and `b` (w=1). This is the
// generic interpolation derivation of §2.1.5 step 2.
StatusOr<Image> BlendLinear(const Image& a, const Image& b, double w);

// ---- misc -------------------------------------------------------------------

// 1 where pixel >= threshold else 0, as uint8.
StatusOr<Image> Threshold(const Image& a, double threshold);

// Fraction of pixels where both label images agree (for comparing two
// derivations of the same concept).
StatusOr<double> AgreementRatio(const Image& a, const Image& b);

}  // namespace gaea

#endif  // GAEA_RASTER_IMAGE_OPS_H_
