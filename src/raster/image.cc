#include "raster/image.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "core/tile_pool.h"
#include "util/string_util.h"

namespace gaea {

namespace {
// Refuse rasters above ~1 GiB of float64 to catch corrupted headers.
constexpr int64_t kMaxPixels = int64_t{1} << 27;

double ClampTo(PixelType t, double v) {
  switch (t) {
    case PixelType::kUInt8:
      return std::clamp(std::round(v), 0.0, 255.0);
    case PixelType::kInt16:
      return std::clamp(std::round(v), -32768.0, 32767.0);
    case PixelType::kInt32:
      return std::clamp(std::round(v), -2147483648.0, 2147483647.0);
    case PixelType::kFloat32:
      return static_cast<double>(static_cast<float>(v));
    case PixelType::kFloat64:
      return v;
  }
  return v;
}
}  // namespace

size_t PixelSize(PixelType t) {
  switch (t) {
    case PixelType::kUInt8: return 1;
    case PixelType::kInt16: return 2;
    case PixelType::kInt32: return 4;
    case PixelType::kFloat32: return 4;
    case PixelType::kFloat64: return 8;
  }
  return 8;
}

const char* PixelTypeName(PixelType t) {
  switch (t) {
    case PixelType::kUInt8: return "char";
    case PixelType::kInt16: return "int2";
    case PixelType::kInt32: return "int4";
    case PixelType::kFloat32: return "float4";
    case PixelType::kFloat64: return "float8";
  }
  return "unknown";
}

StatusOr<PixelType> PixelTypeFromString(const std::string& s) {
  std::string lower = StrToLower(StrTrim(s));
  if (lower == "char" || lower == "uint8" || lower == "byte") {
    return PixelType::kUInt8;
  }
  if (lower == "int2" || lower == "int16") return PixelType::kInt16;
  if (lower == "int4" || lower == "int32") return PixelType::kInt32;
  if (lower == "float4" || lower == "float32" || lower == "float") {
    return PixelType::kFloat32;
  }
  if (lower == "float8" || lower == "float64" || lower == "double") {
    return PixelType::kFloat64;
  }
  return Status::InvalidArgument("unknown pixel type: " + s);
}

Image::Image(int nrow, int ncol, PixelType type)
    : nrow_(nrow),
      ncol_(ncol),
      type_(type),
      data_(static_cast<size_t>(nrow) * ncol * PixelSize(type), 0) {}

StatusOr<Image> Image::Create(int nrow, int ncol, PixelType type) {
  if (nrow <= 0 || ncol <= 0) {
    return Status::InvalidArgument("image dimensions must be positive, got " +
                                   std::to_string(nrow) + "x" +
                                   std::to_string(ncol));
  }
  if (static_cast<int64_t>(nrow) * ncol > kMaxPixels) {
    return Status::InvalidArgument("image too large: " + std::to_string(nrow) +
                                   "x" + std::to_string(ncol));
  }
  return Image(nrow, ncol, type);
}

StatusOr<Image> Image::FromValues(int nrow, int ncol,
                                  const std::vector<double>& values,
                                  PixelType type) {
  GAEA_ASSIGN_OR_RETURN(Image img, Create(nrow, ncol, type));
  if (values.size() != img.PixelCount()) {
    return Status::InvalidArgument(
        "pixel vector size " + std::to_string(values.size()) +
        " does not match " + std::to_string(nrow) + "x" + std::to_string(ncol));
  }
  for (size_t i = 0; i < values.size(); ++i) img.SetRaw(i, values[i]);
  return img;
}

double Image::GetRaw(size_t idx) const {
  const uint8_t* p = data_.data() + idx * PixelSize(type_);
  switch (type_) {
    case PixelType::kUInt8:
      return *p;
    case PixelType::kInt16: {
      int16_t v;
      std::memcpy(&v, p, sizeof(v));
      return v;
    }
    case PixelType::kInt32: {
      int32_t v;
      std::memcpy(&v, p, sizeof(v));
      return v;
    }
    case PixelType::kFloat32: {
      float v;
      std::memcpy(&v, p, sizeof(v));
      return v;
    }
    case PixelType::kFloat64: {
      double v;
      std::memcpy(&v, p, sizeof(v));
      return v;
    }
  }
  return 0;
}

void Image::SetRaw(size_t idx, double v) {
  uint8_t* p = data_.data() + idx * PixelSize(type_);
  v = ClampTo(type_, v);
  switch (type_) {
    case PixelType::kUInt8: {
      *p = static_cast<uint8_t>(v);
      return;
    }
    case PixelType::kInt16: {
      int16_t t = static_cast<int16_t>(v);
      std::memcpy(p, &t, sizeof(t));
      return;
    }
    case PixelType::kInt32: {
      int32_t t = static_cast<int32_t>(v);
      std::memcpy(p, &t, sizeof(t));
      return;
    }
    case PixelType::kFloat32: {
      float t = static_cast<float>(v);
      std::memcpy(p, &t, sizeof(t));
      return;
    }
    case PixelType::kFloat64: {
      std::memcpy(p, &v, sizeof(v));
      return;
    }
  }
}

double Image::Get(int r, int c) const {
  assert(r >= 0 && r < nrow_ && c >= 0 && c < ncol_);
  return GetRaw(static_cast<size_t>(r) * ncol_ + c);
}

void Image::Set(int r, int c, double v) {
  assert(r >= 0 && r < nrow_ && c >= 0 && c < ncol_);
  SetRaw(static_cast<size_t>(r) * ncol_ + c, v);
}

StatusOr<double> Image::At(int r, int c) const {
  if (r < 0 || r >= nrow_ || c < 0 || c >= ncol_) {
    return Status::OutOfRange("pixel (" + std::to_string(r) + "," +
                              std::to_string(c) + ") outside " +
                              std::to_string(nrow_) + "x" +
                              std::to_string(ncol_));
  }
  return Get(r, c);
}

Status Image::SetAt(int r, int c, double v) {
  if (r < 0 || r >= nrow_ || c < 0 || c >= ncol_) {
    return Status::OutOfRange("pixel (" + std::to_string(r) + "," +
                              std::to_string(c) + ") outside " +
                              std::to_string(nrow_) + "x" +
                              std::to_string(ncol_));
  }
  Set(r, c, v);
  return Status::OK();
}

const double* Image::RowF64(int64_t r) const {
  assert(type_ == PixelType::kFloat64 && r >= 0 && r < nrow_);
  return reinterpret_cast<const double*>(data_.data()) +
         r * static_cast<int64_t>(ncol_);
}

double* Image::MutableRowF64(int64_t r) {
  assert(type_ == PixelType::kFloat64 && r >= 0 && r < nrow_);
  return reinterpret_cast<double*>(data_.data()) +
         r * static_cast<int64_t>(ncol_);
}

void Image::ReadRow(int64_t r, double* out) const {
  assert(r >= 0 && r < nrow_);
  const int64_t n = ncol_;
  const uint8_t* base = data_.data() + static_cast<size_t>(r) * n * PixelSize(type_);
  switch (type_) {
    case PixelType::kUInt8: {
      for (int64_t i = 0; i < n; ++i) out[i] = base[i];
      return;
    }
    case PixelType::kInt16: {
      const int16_t* p = reinterpret_cast<const int16_t*>(base);
      for (int64_t i = 0; i < n; ++i) out[i] = p[i];
      return;
    }
    case PixelType::kInt32: {
      const int32_t* p = reinterpret_cast<const int32_t*>(base);
      for (int64_t i = 0; i < n; ++i) out[i] = p[i];
      return;
    }
    case PixelType::kFloat32: {
      const float* p = reinterpret_cast<const float*>(base);
      for (int64_t i = 0; i < n; ++i) out[i] = p[i];
      return;
    }
    case PixelType::kFloat64:
      std::memcpy(out, base, static_cast<size_t>(n) * sizeof(double));
      return;
  }
}

void Image::WriteRow(int64_t r, const double* in) {
  assert(r >= 0 && r < nrow_);
  const int64_t n = ncol_;
  uint8_t* base = data_.data() + static_cast<size_t>(r) * n * PixelSize(type_);
  // Each leg applies exactly the ClampTo() of SetRaw for its type.
  switch (type_) {
    case PixelType::kUInt8: {
      for (int64_t i = 0; i < n; ++i) {
        base[i] =
            static_cast<uint8_t>(std::clamp(std::round(in[i]), 0.0, 255.0));
      }
      return;
    }
    case PixelType::kInt16: {
      int16_t* p = reinterpret_cast<int16_t*>(base);
      for (int64_t i = 0; i < n; ++i) {
        p[i] = static_cast<int16_t>(
            std::clamp(std::round(in[i]), -32768.0, 32767.0));
      }
      return;
    }
    case PixelType::kInt32: {
      int32_t* p = reinterpret_cast<int32_t*>(base);
      for (int64_t i = 0; i < n; ++i) {
        p[i] = static_cast<int32_t>(
            std::clamp(std::round(in[i]), -2147483648.0, 2147483647.0));
      }
      return;
    }
    case PixelType::kFloat32: {
      float* p = reinterpret_cast<float*>(base);
      for (int64_t i = 0; i < n; ++i) p[i] = static_cast<float>(in[i]);
      return;
    }
    case PixelType::kFloat64:
      std::memcpy(base, in, static_cast<size_t>(n) * sizeof(double));
      return;
  }
}

Image::Stats Image::ComputeStats() const {
  Stats s;
  size_t n = PixelCount();
  if (n == 0) return s;
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  double sum = 0, sum2 = 0;
  // Row-at-a-time so the widening loop vectorizes; the reduction itself
  // stays scalar in pixel order (bit-stable accumulation).
  std::vector<double> row(ncol_);
  for (int64_t r = 0; r < nrow_; ++r) {
    ReadRow(r, row.data());
    for (int64_t c = 0; c < ncol_; ++c) {
      double v = row[c];
      s.min = std::min(s.min, v);
      s.max = std::max(s.max, v);
      sum += v;
      sum2 += v * v;
    }
  }
  s.mean = sum / static_cast<double>(n);
  double var = sum2 / static_cast<double>(n) - s.mean * s.mean;
  s.stddev = var > 0 ? std::sqrt(var) : 0.0;
  return s;
}

std::vector<int64_t> Image::Histogram(int bins, double lo, double hi) const {
  std::vector<int64_t> h(std::max(bins, 1), 0);
  if (bins <= 0 || hi <= lo) return h;
  double scale = bins / (hi - lo);
  size_t n = PixelCount();
  for (size_t i = 0; i < n; ++i) {
    double v = GetRaw(i);
    if (v < lo || v > hi) continue;
    int b = std::min(static_cast<int>((v - lo) * scale), bins - 1);
    h[b]++;
  }
  return h;
}

bool Image::operator==(const Image& other) const {
  return nrow_ == other.nrow_ && ncol_ == other.ncol_ &&
         type_ == other.type_ && data_ == other.data_;
}

StatusOr<Image> Image::ConvertTo(PixelType type) const {
  if (type == type_) return *this;
  if (empty()) return Image();
  GAEA_ASSIGN_OR_RETURN(Image out, Create(nrow_, ncol_, type));
  GAEA_RETURN_IF_ERROR(TilePool::Global().ParallelRows(
      "convert", nrow_, [&](int64_t r0, int64_t r1) {
        std::vector<double> row(ncol_);
        for (int64_t r = r0; r < r1; ++r) {
          ReadRow(r, row.data());
          out.WriteRow(r, row.data());
        }
        return Status::OK();
      }));
  return out;
}

std::string Image::ToString() const {
  std::ostringstream os;
  os << "image(" << nrow_ << "x" << ncol_ << ", " << PixelTypeName(type_)
     << ")";
  return os.str();
}

void Image::Serialize(BinaryWriter* w) const {
  w->PutI32(nrow_);
  w->PutI32(ncol_);
  w->PutU8(static_cast<uint8_t>(type_));
  w->PutU64(data_.size());
  w->PutRaw(data_.data(), data_.size());
}

StatusOr<Image> Image::Deserialize(BinaryReader* r) {
  GAEA_ASSIGN_OR_RETURN(int32_t nrow, r->GetI32());
  GAEA_ASSIGN_OR_RETURN(int32_t ncol, r->GetI32());
  GAEA_ASSIGN_OR_RETURN(uint8_t type_raw, r->GetU8());
  if (type_raw > static_cast<uint8_t>(PixelType::kFloat64)) {
    return Status::Corruption("bad pixel type tag " + std::to_string(type_raw));
  }
  PixelType type = static_cast<PixelType>(type_raw);
  GAEA_ASSIGN_OR_RETURN(uint64_t size, r->GetU64());
  if (nrow == 0 || ncol == 0) {
    if (size != 0) return Status::Corruption("empty image with pixel payload");
    return Image();
  }
  if (nrow < 0 || ncol < 0 ||
      static_cast<int64_t>(nrow) * ncol > kMaxPixels) {
    return Status::Corruption("bad image dimensions in payload");
  }
  size_t expected =
      static_cast<size_t>(nrow) * static_cast<size_t>(ncol) * PixelSize(type);
  if (size != expected) {
    return Status::Corruption("image payload size mismatch: header says " +
                              std::to_string(expected) + ", got " +
                              std::to_string(size));
  }
  GAEA_ASSIGN_OR_RETURN(std::string bytes, r->GetRaw(size));
  Image img(nrow, ncol, type);
  std::memcpy(img.data_.data(), bytes.data(), size);
  return img;
}

Status Image::Save(const std::string& path) const {
  BinaryWriter w;
  w.PutString("GAEAIMG1");
  Serialize(&w);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(w.buffer().data(), static_cast<std::streamsize>(w.size()));
  if (!out) return Status::IOError("short write: " + path);
  return Status::OK();
}

StatusOr<Image> Image::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  BinaryReader r(bytes);
  GAEA_ASSIGN_OR_RETURN(std::string magic, r.GetString());
  if (magic != "GAEAIMG1") {
    return Status::Corruption("not a Gaea image file: " + path);
  }
  return Deserialize(&r);
}

}  // namespace gaea
