#include "raster/classify.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "core/tile_pool.h"
#include "raster/image_ops.h"

namespace gaea {

namespace {

// Deterministic xorshift64* PRNG: classification must replay identically.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x1234567) {}
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }
  // Uniform in [0, n).
  size_t Index(size_t n) { return static_cast<size_t>(Next() % n); }

 private:
  uint64_t state_;
};

double Dist2(const double* __restrict__ a, const double* __restrict__ b,
             int64_t n) {
  double s = 0;
  for (int64_t i = 0; i < n; ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

// Gathers the band stack into one contiguous (npix x nb) feature array,
// row-band tiled. Pixel i's feature vector is features[i*nb .. i*nb+nb).
std::vector<double> GatherFeatures(const std::vector<Image>& stack) {
  const Image& first = stack[0];
  const int64_t ncol = first.ncol64();
  const int64_t nb = static_cast<int64_t>(stack.size());
  std::vector<double> features(static_cast<size_t>(first.nrow64() * ncol * nb));
  TilePool::Global().ParallelRows(
      "gather_features", first.nrow64(), [&](int64_t r0, int64_t r1) {
        for (int64_t j = 0; j < nb; ++j) {
          const Image& img = stack[static_cast<size_t>(j)];
          for (int64_t r = r0; r < r1; ++r) {
            const double* row = img.RowF64(r);  // Composite() made float8
            double* frow = features.data() + r * ncol * nb + j;
            for (int64_t c = 0; c < ncol; ++c) frow[c * nb] = row[c];
          }
        }
        return Status::OK();
      });
  return features;
}

}  // namespace

StatusOr<Image> UnsupervisedClassify(const std::vector<const Image*>& bands,
                                     int k, const KMeansOptions& opts) {
  if (k <= 0) {
    return Status::InvalidArgument("unsuperclassify: k must be positive");
  }
  GAEA_ASSIGN_OR_RETURN(std::vector<Image> stack, Composite(bands));
  const Image& first = stack[0];
  const int64_t nrows = first.nrow64();
  const int64_t ncol = first.ncol64();
  const int64_t npix = nrows * ncol;
  if (npix < k) {
    return Status::InvalidArgument("unsuperclassify: fewer pixels than classes");
  }
  const int64_t nb = static_cast<int64_t>(stack.size());
  const int64_t ntiles = TileCount(nrows);
  TilePool& pool = TilePool::Global();

  std::vector<double> px = GatherFeatures(stack);
  auto feature = [&](int64_t i) { return px.data() + i * nb; };

  // Farthest-point (k-means++ without randomness beyond the first pick)
  // seeding from a fixed PRNG: deterministic given inputs. Each tile finds
  // its farthest pixel; partials combine in ascending tile order with a
  // strict >, so the lowest pixel index wins ties exactly as the serial
  // scan would.
  Rng rng(opts.seed);
  std::vector<double> centers;  // k x nb, row-major
  centers.reserve(static_cast<size_t>(k) * nb);
  {
    const double* seed_px = feature(static_cast<int64_t>(rng.Index(npix)));
    centers.insert(centers.end(), seed_px, seed_px + nb);
  }
  std::vector<double> best_d2(static_cast<size_t>(npix),
                              std::numeric_limits<double>::infinity());
  struct Farthest {
    double d2 = -1;
    int64_t idx = 0;
  };
  while (static_cast<int64_t>(centers.size()) / nb < k) {
    const double* last = centers.data() + centers.size() - nb;
    std::vector<Farthest> partial(static_cast<size_t>(ntiles));
    pool.ParallelRows("kmeans_seed", nrows, [&](int64_t r0, int64_t r1) {
      Farthest far;
      for (int64_t i = r0 * ncol; i < r1 * ncol; ++i) {
        double d2 = Dist2(feature(i), last, nb);
        double& best = best_d2[static_cast<size_t>(i)];
        best = std::min(best, d2);
        if (best > far.d2) {
          far.d2 = best;
          far.idx = i;
        }
      }
      partial[static_cast<size_t>(r0 / TilePool::kTileRows)] = far;
      return Status::OK();
    });
    Farthest far;
    for (const Farthest& p : partial) {
      if (p.d2 > far.d2) far = p;
    }
    const double* fp = feature(far.idx);
    centers.insert(centers.end(), fp, fp + nb);
  }

  // Lloyd iterations: tiled assignment (pure per-pixel argmin) and tiled
  // center updates (per-tile sums combined in ascending tile order).
  std::vector<int32_t> assign(static_cast<size_t>(npix), 0);
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    std::vector<uint8_t> tile_moved(static_cast<size_t>(ntiles), 0);
    pool.ParallelRows("kmeans_assign", nrows, [&](int64_t r0, int64_t r1) {
      bool moved = false;
      for (int64_t i = r0 * ncol; i < r1 * ncol; ++i) {
        int32_t best = 0;
        double best_dist = std::numeric_limits<double>::infinity();
        for (int64_t c = 0; c < k; ++c) {
          double d = Dist2(feature(i), centers.data() + c * nb, nb);
          if (d < best_dist) {
            best_dist = d;
            best = static_cast<int32_t>(c);
          }
        }
        if (assign[static_cast<size_t>(i)] != best) {
          assign[static_cast<size_t>(i)] = best;
          moved = true;
        }
      }
      tile_moved[static_cast<size_t>(r0 / TilePool::kTileRows)] = moved;
      return Status::OK();
    });
    bool moved = false;
    for (uint8_t m : tile_moved) moved |= m != 0;
    if (!moved) break;

    std::vector<std::vector<double>> sum_partial(
        static_cast<size_t>(ntiles),
        std::vector<double>(static_cast<size_t>(k) * nb, 0.0));
    std::vector<std::vector<int64_t>> count_partial(
        static_cast<size_t>(ntiles),
        std::vector<int64_t>(static_cast<size_t>(k), 0));
    pool.ParallelRows("kmeans_update", nrows, [&](int64_t r0, int64_t r1) {
      size_t tile = static_cast<size_t>(r0 / TilePool::kTileRows);
      std::vector<double>& sums = sum_partial[tile];
      std::vector<int64_t>& counts = count_partial[tile];
      for (int64_t i = r0 * ncol; i < r1 * ncol; ++i) {
        int32_t c = assign[static_cast<size_t>(i)];
        counts[static_cast<size_t>(c)]++;
        const double* __restrict__ f = feature(i);
        double* __restrict__ s = sums.data() + static_cast<int64_t>(c) * nb;
        for (int64_t j = 0; j < nb; ++j) s[j] += f[j];
      }
      return Status::OK();
    });
    std::vector<double> sums(static_cast<size_t>(k) * nb, 0.0);
    std::vector<int64_t> counts(static_cast<size_t>(k), 0);
    for (int64_t t = 0; t < ntiles; ++t) {
      const auto& sp = sum_partial[static_cast<size_t>(t)];
      for (size_t i = 0; i < sums.size(); ++i) sums[i] += sp[i];
      const auto& cp = count_partial[static_cast<size_t>(t)];
      for (size_t i = 0; i < counts.size(); ++i) counts[i] += cp[i];
    }
    for (int64_t c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) continue;  // keep old center
      for (int64_t j = 0; j < nb; ++j) {
        centers[static_cast<size_t>(c * nb + j)] =
            sums[static_cast<size_t>(c * nb + j)] /
            static_cast<double>(counts[static_cast<size_t>(c)]);
      }
    }
  }

  GAEA_ASSIGN_OR_RETURN(
      Image out, Image::Create(first.nrow(), first.ncol(), PixelType::kInt32));
  GAEA_RETURN_IF_ERROR(
      pool.ParallelRows("kmeans_emit", nrows, [&](int64_t r0, int64_t r1) {
        std::vector<double> row(ncol);
        for (int64_t r = r0; r < r1; ++r) {
          const int32_t* arow = assign.data() + r * ncol;
          for (int64_t c = 0; c < ncol; ++c) row[static_cast<size_t>(c)] = arow[c];
          out.WriteRow(r, row.data());
        }
        return Status::OK();
      }));
  return out;
}

StatusOr<Image> MaxLikelihoodClassify(const std::vector<const Image*>& bands,
                                      const Image& training) {
  GAEA_ASSIGN_OR_RETURN(std::vector<Image> stack, Composite(bands));
  const Image& first = stack[0];
  if (!training.SameShape(first)) {
    return Status::InvalidArgument("maxlike: training image shape mismatch");
  }
  const int64_t nrows = first.nrow64();
  const int64_t ncol = first.ncol64();
  const int64_t nb = static_cast<int64_t>(stack.size());
  const int64_t ntiles = TileCount(nrows);
  TilePool& pool = TilePool::Global();

  // Per-class mean and diagonal variance over labeled pixels: per-tile
  // label->sums maps merged in ascending tile order (deterministic for any
  // thread count; a single-tile raster reproduces the serial pass).
  struct ClassStats {
    std::vector<double> sum, sum2;
    int64_t n = 0;
  };
  std::vector<std::map<int, ClassStats>> partial(static_cast<size_t>(ntiles));
  pool.ParallelRows("maxlike_train", nrows, [&](int64_t r0, int64_t r1) {
    std::map<int, ClassStats>& local =
        partial[static_cast<size_t>(r0 / TilePool::kTileRows)];
    std::vector<double> lrow(ncol);
    for (int64_t r = r0; r < r1; ++r) {
      training.ReadRow(r, lrow.data());
      for (int64_t c = 0; c < ncol; ++c) {
        int label = static_cast<int>(lrow[static_cast<size_t>(c)]);
        if (label < 0) continue;
        ClassStats& cs = local[label];
        if (cs.sum.empty()) {
          cs.sum.assign(static_cast<size_t>(nb), 0.0);
          cs.sum2.assign(static_cast<size_t>(nb), 0.0);
        }
        for (int64_t j = 0; j < nb; ++j) {
          double v = stack[static_cast<size_t>(j)].RowF64(r)[c];
          cs.sum[static_cast<size_t>(j)] += v;
          cs.sum2[static_cast<size_t>(j)] += v * v;
        }
        cs.n++;
      }
    }
    return Status::OK();
  });
  std::map<int, ClassStats> stats;
  for (const auto& local : partial) {
    for (const auto& [label, cs] : local) {
      ClassStats& merged = stats[label];
      if (merged.sum.empty()) {
        merged.sum.assign(static_cast<size_t>(nb), 0.0);
        merged.sum2.assign(static_cast<size_t>(nb), 0.0);
      }
      for (int64_t j = 0; j < nb; ++j) {
        merged.sum[static_cast<size_t>(j)] += cs.sum[static_cast<size_t>(j)];
        merged.sum2[static_cast<size_t>(j)] += cs.sum2[static_cast<size_t>(j)];
      }
      merged.n += cs.n;
    }
  }
  if (stats.empty()) {
    return Status::FailedPrecondition("maxlike: training image has no labels");
  }

  struct Gaussian {
    int label;
    std::vector<double> mean, var;
  };
  std::vector<Gaussian> models;
  for (const auto& [label, cs] : stats) {
    Gaussian g;
    g.label = label;
    g.mean.resize(static_cast<size_t>(nb));
    g.var.resize(static_cast<size_t>(nb));
    for (int64_t j = 0; j < nb; ++j) {
      g.mean[static_cast<size_t>(j)] =
          cs.sum[static_cast<size_t>(j)] / static_cast<double>(cs.n);
      double var = cs.sum2[static_cast<size_t>(j)] / static_cast<double>(cs.n) -
                   g.mean[static_cast<size_t>(j)] * g.mean[static_cast<size_t>(j)];
      g.var[static_cast<size_t>(j)] =
          std::max(var, 1e-6);  // floor to keep log-likelihood finite
    }
    models.push_back(std::move(g));
  }

  GAEA_ASSIGN_OR_RETURN(
      Image out, Image::Create(first.nrow(), first.ncol(), PixelType::kInt32));
  GAEA_RETURN_IF_ERROR(
      pool.ParallelRows("maxlike_classify", nrows, [&](int64_t r0, int64_t r1) {
        std::vector<double> feat(static_cast<size_t>(nb));
        std::vector<double> orow(static_cast<size_t>(ncol));
        for (int64_t r = r0; r < r1; ++r) {
          for (int64_t c = 0; c < ncol; ++c) {
            for (int64_t j = 0; j < nb; ++j) {
              feat[static_cast<size_t>(j)] = stack[static_cast<size_t>(j)].RowF64(r)[c];
            }
            double best_ll = -std::numeric_limits<double>::infinity();
            int best_label = models[0].label;
            for (const Gaussian& g : models) {
              double ll = 0;
              for (int64_t j = 0; j < nb; ++j) {
                double d = feat[static_cast<size_t>(j)] - g.mean[static_cast<size_t>(j)];
                double var = g.var[static_cast<size_t>(j)];
                ll += -0.5 * (d * d / var + std::log(var));
              }
              if (ll > best_ll) {
                best_ll = ll;
                best_label = g.label;
              }
            }
            orow[static_cast<size_t>(c)] = best_label;
          }
          out.WriteRow(r, orow.data());
        }
        return Status::OK();
      }));
  return out;
}

StatusOr<Image> ChangeMap(const Image& before, const Image& after,
                          int num_classes) {
  if (num_classes <= 0) {
    return Status::InvalidArgument("changemap: num_classes must be positive");
  }
  GAEA_ASSIGN_OR_RETURN(
      Image out,
      PointwiseBinary(before, after, [num_classes](double b, double a) {
        int bi = static_cast<int>(b), ai = static_cast<int>(a);
        return bi == ai ? -1.0 : static_cast<double>(bi * num_classes + ai);
      }));
  return out.ConvertTo(PixelType::kInt32);
}

StatusOr<double> ChangedFraction(const Image& change_map) {
  if (change_map.empty()) {
    return Status::InvalidArgument("changemap fraction of empty image");
  }
  const int64_t ncol = change_map.ncol64();
  std::vector<int64_t> partial(
      static_cast<size_t>(TileCount(change_map.nrow64())), 0);
  TilePool::Global().ParallelRows(
      "changed_fraction", change_map.nrow64(), [&](int64_t r0, int64_t r1) {
        std::vector<double> row(static_cast<size_t>(ncol));
        int64_t changed = 0;
        for (int64_t r = r0; r < r1; ++r) {
          change_map.ReadRow(r, row.data());
          for (int64_t c = 0; c < ncol; ++c) {
            if (row[static_cast<size_t>(c)] >= 0) ++changed;
          }
        }
        partial[static_cast<size_t>(r0 / TilePool::kTileRows)] = changed;
        return Status::OK();
      });
  int64_t changed = 0;
  for (int64_t p : partial) changed += p;
  return static_cast<double>(changed) /
         static_cast<double>(change_map.PixelCount());
}

}  // namespace gaea
