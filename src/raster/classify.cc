#include "raster/classify.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "raster/image_ops.h"

namespace gaea {

namespace {

// Deterministic xorshift64* PRNG: classification must replay identically.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x1234567) {}
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }
  // Uniform in [0, n).
  size_t Index(size_t n) { return static_cast<size_t>(Next() % n); }

 private:
  uint64_t state_;
};

double Dist2(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace

StatusOr<Image> UnsupervisedClassify(const std::vector<const Image*>& bands,
                                     int k, const KMeansOptions& opts) {
  if (k <= 0) {
    return Status::InvalidArgument("unsuperclassify: k must be positive");
  }
  GAEA_ASSIGN_OR_RETURN(std::vector<Image> stack, Composite(bands));
  const Image& first = stack[0];
  size_t npix = first.PixelCount();
  if (npix < static_cast<size_t>(k)) {
    return Status::InvalidArgument("unsuperclassify: fewer pixels than classes");
  }
  size_t nb = stack.size();

  // Gather pixel feature vectors.
  std::vector<std::vector<double>> px(npix, std::vector<double>(nb));
  for (size_t j = 0; j < nb; ++j) {
    const Image& img = stack[j];
    size_t idx = 0;
    for (int r = 0; r < img.nrow(); ++r) {
      for (int c = 0; c < img.ncol(); ++c) {
        px[idx++][j] = img.Get(r, c);
      }
    }
  }

  // Farthest-point (k-means++ without randomness beyond the first pick)
  // seeding from a fixed PRNG: deterministic given inputs.
  Rng rng(opts.seed);
  std::vector<std::vector<double>> centers;
  centers.reserve(k);
  centers.push_back(px[rng.Index(npix)]);
  std::vector<double> best_d2(npix, std::numeric_limits<double>::infinity());
  while (static_cast<int>(centers.size()) < k) {
    size_t far_idx = 0;
    double far_d2 = -1;
    for (size_t i = 0; i < npix; ++i) {
      double d2 = Dist2(px[i], centers.back());
      best_d2[i] = std::min(best_d2[i], d2);
      if (best_d2[i] > far_d2) {
        far_d2 = best_d2[i];
        far_idx = i;
      }
    }
    centers.push_back(px[far_idx]);
  }

  // Lloyd iterations.
  std::vector<int> assign(npix, 0);
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    bool moved = false;
    for (size_t i = 0; i < npix; ++i) {
      int best = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (int c = 0; c < k; ++c) {
        double d = Dist2(px[i], centers[c]);
        if (d < best_dist) {
          best_dist = d;
          best = c;
        }
      }
      if (assign[i] != best) {
        assign[i] = best;
        moved = true;
      }
    }
    if (!moved) break;
    std::vector<std::vector<double>> sums(k, std::vector<double>(nb, 0.0));
    std::vector<int64_t> counts(k, 0);
    for (size_t i = 0; i < npix; ++i) {
      counts[assign[i]]++;
      for (size_t j = 0; j < nb; ++j) sums[assign[i]][j] += px[i][j];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // keep old center for empty cluster
      for (size_t j = 0; j < nb; ++j) {
        centers[c][j] = sums[c][j] / counts[c];
      }
    }
  }

  GAEA_ASSIGN_OR_RETURN(
      Image out, Image::Create(first.nrow(), first.ncol(), PixelType::kInt32));
  size_t idx = 0;
  for (int r = 0; r < first.nrow(); ++r) {
    for (int c = 0; c < first.ncol(); ++c) {
      out.Set(r, c, assign[idx++]);
    }
  }
  return out;
}

StatusOr<Image> MaxLikelihoodClassify(const std::vector<const Image*>& bands,
                                      const Image& training) {
  GAEA_ASSIGN_OR_RETURN(std::vector<Image> stack, Composite(bands));
  const Image& first = stack[0];
  if (!training.SameShape(first)) {
    return Status::InvalidArgument("maxlike: training image shape mismatch");
  }
  size_t nb = stack.size();

  // Per-class mean and diagonal variance over labeled pixels.
  struct ClassStats {
    std::vector<double> sum, sum2;
    int64_t n = 0;
  };
  std::map<int, ClassStats> stats;
  for (int r = 0; r < first.nrow(); ++r) {
    for (int c = 0; c < first.ncol(); ++c) {
      int label = static_cast<int>(training.Get(r, c));
      if (label < 0) continue;
      ClassStats& cs = stats[label];
      if (cs.sum.empty()) {
        cs.sum.assign(nb, 0.0);
        cs.sum2.assign(nb, 0.0);
      }
      for (size_t j = 0; j < nb; ++j) {
        double v = stack[j].Get(r, c);
        cs.sum[j] += v;
        cs.sum2[j] += v * v;
      }
      cs.n++;
    }
  }
  if (stats.empty()) {
    return Status::FailedPrecondition("maxlike: training image has no labels");
  }

  struct Gaussian {
    int label;
    std::vector<double> mean, var;
  };
  std::vector<Gaussian> models;
  for (const auto& [label, cs] : stats) {
    Gaussian g;
    g.label = label;
    g.mean.resize(nb);
    g.var.resize(nb);
    for (size_t j = 0; j < nb; ++j) {
      g.mean[j] = cs.sum[j] / cs.n;
      double var = cs.sum2[j] / cs.n - g.mean[j] * g.mean[j];
      g.var[j] = std::max(var, 1e-6);  // floor to keep log-likelihood finite
    }
    models.push_back(std::move(g));
  }

  GAEA_ASSIGN_OR_RETURN(
      Image out, Image::Create(first.nrow(), first.ncol(), PixelType::kInt32));
  std::vector<double> feat(nb);
  for (int r = 0; r < first.nrow(); ++r) {
    for (int c = 0; c < first.ncol(); ++c) {
      for (size_t j = 0; j < nb; ++j) feat[j] = stack[j].Get(r, c);
      double best_ll = -std::numeric_limits<double>::infinity();
      int best_label = models[0].label;
      for (const Gaussian& g : models) {
        double ll = 0;
        for (size_t j = 0; j < nb; ++j) {
          double d = feat[j] - g.mean[j];
          ll += -0.5 * (d * d / g.var[j] + std::log(g.var[j]));
        }
        if (ll > best_ll) {
          best_ll = ll;
          best_label = g.label;
        }
      }
      out.Set(r, c, best_label);
    }
  }
  return out;
}

StatusOr<Image> ChangeMap(const Image& before, const Image& after,
                          int num_classes) {
  if (num_classes <= 0) {
    return Status::InvalidArgument("changemap: num_classes must be positive");
  }
  GAEA_ASSIGN_OR_RETURN(
      Image out,
      PointwiseBinary(before, after, [num_classes](double b, double a) {
        int bi = static_cast<int>(b), ai = static_cast<int>(a);
        return bi == ai ? -1.0 : static_cast<double>(bi * num_classes + ai);
      }));
  return out.ConvertTo(PixelType::kInt32);
}

StatusOr<double> ChangedFraction(const Image& change_map) {
  if (change_map.empty()) {
    return Status::InvalidArgument("changemap fraction of empty image");
  }
  int64_t changed = 0;
  for (int r = 0; r < change_map.nrow(); ++r) {
    for (int c = 0; c < change_map.ncol(); ++c) {
      if (change_map.Get(r, c) >= 0) ++changed;
    }
  }
  return static_cast<double>(changed) /
         static_cast<double>(change_map.PixelCount());
}

}  // namespace gaea
