#include "raster/matrix.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "core/tile_pool.h"

namespace gaea {

Matrix::Matrix(int rows, int cols)
    : rows_(std::max(rows, 0)),
      cols_(std::max(cols, 0)),
      data_(static_cast<size_t>(rows_) * cols_, 0.0) {}

StatusOr<Matrix> Matrix::FromRows(
    const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  size_t cols = rows[0].size();
  for (const auto& r : rows) {
    if (r.size() != cols) {
      return Status::InvalidArgument("ragged matrix rows");
    }
  }
  Matrix m(static_cast<int>(rows.size()), static_cast<int>(cols));
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < cols; ++c) {
      m(static_cast<int>(r), static_cast<int>(c)) = rows[r][c];
    }
  }
  return m;
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

StatusOr<Matrix> Matrix::Multiply(const Matrix& other) const {
  if (cols_ != other.rows_) {
    return Status::InvalidArgument(
        "matrix shape mismatch for multiply: " + std::to_string(rows_) + "x" +
        std::to_string(cols_) + " * " + std::to_string(other.rows_) + "x" +
        std::to_string(other.cols_));
  }
  Matrix out(rows_, other.cols_);
  const int64_t n = other.cols_;
  // Output rows are independent, so row-band tiles are bit-identical to the
  // serial i-k-j loop for any thread count. The inner j loop runs over
  // contiguous rows of `out` and `other` and auto-vectorizes.
  GAEA_RETURN_IF_ERROR(TilePool::Global().ParallelRows(
      "matrix_multiply", rows_, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          const double* arow = Row(i);
          double* __restrict__ orow = out.Row(i);
          for (int64_t k = 0; k < cols_; ++k) {
            double a = arow[k];
            if (a == 0.0) continue;
            const double* __restrict__ brow = other.Row(k);
            for (int64_t j = 0; j < n; ++j) orow[j] += a * brow[j];
          }
        }
        return Status::OK();
      }));
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (int i = 0; i < rows_; ++i) {
    for (int j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

StatusOr<Matrix> Matrix::Add(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return Status::InvalidArgument("matrix shape mismatch for add");
  }
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

StatusOr<Matrix> Matrix::Subtract(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return Status::InvalidArgument("matrix shape mismatch for subtract");
  }
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::Scale(double factor) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= factor;
  return out;
}

std::vector<double> Matrix::ColumnMeans() const {
  std::vector<double> means(cols_, 0.0);
  if (rows_ == 0) return means;
  // Per-tile partial sums combined in ascending tile order: the geometry is
  // fixed (TilePool::kTileRows), so the result is bit-identical for any
  // thread count, and a single-tile matrix reproduces the serial sum.
  std::vector<std::vector<double>> partial(
      static_cast<size_t>(TileCount(rows_)), std::vector<double>(cols_, 0.0));
  // The tile body cannot fail, so the pool status is always OK.
  TilePool::Global().ParallelRows(
      "column_means", rows_, [&](int64_t i0, int64_t i1) {
        std::vector<double>& acc =
            partial[static_cast<size_t>(i0 / TilePool::kTileRows)];
        for (int64_t i = i0; i < i1; ++i) {
          const double* row = Row(i);
          for (int64_t j = 0; j < cols_; ++j) acc[j] += row[j];
        }
        return Status::OK();
      });
  for (const auto& acc : partial) {
    for (int j = 0; j < cols_; ++j) means[j] += acc[j];
  }
  for (double& m : means) m /= rows_;
  return means;
}

std::vector<double> Matrix::ColumnStddevs() const {
  std::vector<double> out(cols_, 0.0);
  if (rows_ == 0) return out;
  std::vector<double> means = ColumnMeans();
  for (int i = 0; i < rows_; ++i) {
    for (int j = 0; j < cols_; ++j) {
      double d = (*this)(i, j) - means[j];
      out[j] += d * d;
    }
  }
  for (double& v : out) v = std::sqrt(v / rows_);
  return out;
}

StatusOr<Matrix> Matrix::Covariance() const {
  if (rows_ < 1 || cols_ < 1) {
    return Status::InvalidArgument("covariance of empty matrix");
  }
  std::vector<double> means = ColumnMeans();
  Matrix cov(cols_, cols_);
  // Upper-triangle partials per tile, combined in ascending tile order
  // (same determinism argument as ColumnMeans).
  const size_t ncov = static_cast<size_t>(cols_) * cols_;
  std::vector<std::vector<double>> partial(
      static_cast<size_t>(TileCount(rows_)), std::vector<double>(ncov, 0.0));
  GAEA_RETURN_IF_ERROR(TilePool::Global().ParallelRows(
      "covariance", rows_, [&](int64_t i0, int64_t i1) {
        std::vector<double>& acc =
            partial[static_cast<size_t>(i0 / TilePool::kTileRows)];
        for (int64_t i = i0; i < i1; ++i) {
          const double* row = Row(i);
          for (int64_t a = 0; a < cols_; ++a) {
            double da = row[a] - means[a];
            double* accrow = acc.data() + a * cols_;
            for (int64_t b = a; b < cols_; ++b) {
              accrow[b] += da * (row[b] - means[b]);
            }
          }
        }
        return Status::OK();
      }));
  for (const auto& acc : partial) {
    for (int a = 0; a < cols_; ++a) {
      for (int b = a; b < cols_; ++b) {
        cov(a, b) += acc[static_cast<size_t>(a) * cols_ + b];
      }
    }
  }
  for (int a = 0; a < cols_; ++a) {
    for (int b = a; b < cols_; ++b) {
      cov(a, b) /= rows_;
      cov(b, a) = cov(a, b);
    }
  }
  return cov;
}

StatusOr<Matrix> Matrix::Correlation() const {
  GAEA_ASSIGN_OR_RETURN(Matrix cov, Covariance());
  std::vector<double> sd(cols_);
  for (int i = 0; i < cols_; ++i) sd[i] = std::sqrt(cov(i, i));
  Matrix corr(cols_, cols_);
  for (int a = 0; a < cols_; ++a) {
    for (int b = 0; b < cols_; ++b) {
      double denom = sd[a] * sd[b];
      corr(a, b) = denom > 0 ? cov(a, b) / denom : (a == b ? 1.0 : 0.0);
    }
  }
  return corr;
}

StatusOr<double> Matrix::Distance(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return Status::InvalidArgument("matrix shape mismatch for distance");
  }
  double sum = 0;
  for (size_t i = 0; i < data_.size(); ++i) {
    double d = data_[i] - other.data_[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

bool Matrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (int i = 0; i < rows_; ++i) {
    for (int j = i + 1; j < cols_; ++j) {
      if (std::fabs((*this)(i, j) - (*this)(j, i)) > tol) return false;
    }
  }
  return true;
}

StatusOr<Matrix::Eigen> Matrix::SymmetricEigen(int max_sweeps,
                                               double tol) const {
  if (rows_ != cols_ || rows_ == 0) {
    return Status::InvalidArgument("eigen decomposition needs square matrix");
  }
  if (!IsSymmetric(1e-8)) {
    return Status::InvalidArgument("eigen decomposition needs symmetric matrix");
  }
  int n = rows_;
  Matrix a = *this;
  Matrix v = Identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    }
    if (off < tol) break;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) {
        double apq = a(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;
        // Rotate rows/cols p and q of `a`.
        for (int k = 0; k < n; ++k) {
          double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (int k = 0; k < n; ++k) {
          double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        // Accumulate the rotation into the eigenvector matrix.
        for (int k = 0; k < n; ++k) {
          double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  Eigen out;
  out.values.resize(n);
  for (int i = 0; i < n; ++i) out.values[i] = a(i, i);
  // Sort eigenpairs by descending eigenvalue.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int x, int y) {
    return out.values[x] > out.values[y];
  });
  std::vector<double> sorted_vals(n);
  Matrix sorted_vecs(n, n);
  for (int i = 0; i < n; ++i) {
    sorted_vals[i] = out.values[order[i]];
    for (int k = 0; k < n; ++k) sorted_vecs(k, i) = v(k, order[i]);
  }
  out.values = std::move(sorted_vals);
  out.vectors = std::move(sorted_vecs);
  return out;
}

bool Matrix::AlmostEquals(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Matrix::ToString() const {
  std::ostringstream os;
  os << "matrix(" << rows_ << "x" << cols_ << ")";
  return os.str();
}

void Matrix::Serialize(BinaryWriter* w) const {
  w->PutI32(rows_);
  w->PutI32(cols_);
  for (double v : data_) w->PutF64(v);
}

StatusOr<Matrix> Matrix::Deserialize(BinaryReader* r) {
  GAEA_ASSIGN_OR_RETURN(int32_t rows, r->GetI32());
  GAEA_ASSIGN_OR_RETURN(int32_t cols, r->GetI32());
  if (rows < 0 || cols < 0 ||
      static_cast<int64_t>(rows) * cols > (int64_t{1} << 26)) {
    return Status::Corruption("bad matrix dimensions");
  }
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      GAEA_ASSIGN_OR_RETURN(double v, r->GetF64());
      m(i, j) = v;
    }
  }
  return m;
}

}  // namespace gaea
