#include "raster/image_ops.h"

#include <algorithm>
#include <cmath>

namespace gaea {

StatusOr<Image> PointwiseBinary(
    const Image& a, const Image& b,
    const std::function<double(double, double)>& fn) {
  if (!a.SameShape(b)) {
    return Status::InvalidArgument("image shape mismatch: " + a.ToString() +
                                   " vs " + b.ToString());
  }
  GAEA_ASSIGN_OR_RETURN(Image out,
                        Image::Create(a.nrow(), a.ncol(), PixelType::kFloat64));
  for (int r = 0; r < a.nrow(); ++r) {
    for (int c = 0; c < a.ncol(); ++c) {
      out.Set(r, c, fn(a.Get(r, c), b.Get(r, c)));
    }
  }
  return out;
}

StatusOr<Image> PointwiseUnary(const Image& a,
                               const std::function<double(double)>& fn) {
  GAEA_ASSIGN_OR_RETURN(Image out,
                        Image::Create(a.nrow(), a.ncol(), PixelType::kFloat64));
  for (int r = 0; r < a.nrow(); ++r) {
    for (int c = 0; c < a.ncol(); ++c) {
      out.Set(r, c, fn(a.Get(r, c)));
    }
  }
  return out;
}

StatusOr<Image> ImgAdd(const Image& a, const Image& b) {
  return PointwiseBinary(a, b, [](double x, double y) { return x + y; });
}

StatusOr<Image> ImgSubtract(const Image& a, const Image& b) {
  return PointwiseBinary(a, b, [](double x, double y) { return x - y; });
}

StatusOr<Image> ImgMultiply(const Image& a, const Image& b) {
  return PointwiseBinary(a, b, [](double x, double y) { return x * y; });
}

StatusOr<Image> ImgDivide(const Image& a, const Image& b, double eps) {
  return PointwiseBinary(a, b, [eps](double x, double y) {
    return std::fabs(y) < eps ? 0.0 : x / y;
  });
}

StatusOr<Image> ImgScale(const Image& a, double factor, double offset) {
  return PointwiseUnary(a,
                        [factor, offset](double x) { return x * factor + offset; });
}

StatusOr<Image> ImgAbs(const Image& a) {
  return PointwiseUnary(a, [](double x) { return std::fabs(x); });
}

StatusOr<Image> Ndvi(const Image& nir, const Image& red) {
  return PointwiseBinary(nir, red, [](double n, double r) {
    double denom = n + r;
    return std::fabs(denom) < 1e-12 ? 0.0 : (n - r) / denom;
  });
}

StatusOr<std::vector<Image>> Composite(
    const std::vector<const Image*>& bands) {
  if (bands.empty()) {
    return Status::InvalidArgument("composite needs at least one band");
  }
  for (const Image* b : bands) {
    if (b == nullptr) return Status::InvalidArgument("composite: null band");
    if (!b->SameShape(*bands[0])) {
      return Status::InvalidArgument("composite: band shape mismatch " +
                                     bands[0]->ToString() + " vs " +
                                     b->ToString());
    }
  }
  std::vector<Image> out;
  out.reserve(bands.size());
  for (const Image* b : bands) {
    GAEA_ASSIGN_OR_RETURN(Image converted, b->ConvertTo(PixelType::kFloat64));
    out.push_back(std::move(converted));
  }
  return out;
}

StatusOr<Matrix> ImagesToMatrix(const std::vector<const Image*>& bands) {
  if (bands.empty()) {
    return Status::InvalidArgument("convert-image-matrix needs >=1 image");
  }
  const Image& first = *bands[0];
  for (const Image* b : bands) {
    if (b == nullptr || !b->SameShape(first)) {
      return Status::InvalidArgument("convert-image-matrix: shape mismatch");
    }
  }
  int64_t npix = static_cast<int64_t>(first.nrow()) * first.ncol();
  Matrix m(static_cast<int>(npix), static_cast<int>(bands.size()));
  for (size_t j = 0; j < bands.size(); ++j) {
    const Image& img = *bands[j];
    int idx = 0;
    for (int r = 0; r < img.nrow(); ++r) {
      for (int c = 0; c < img.ncol(); ++c) {
        m(idx++, static_cast<int>(j)) = img.Get(r, c);
      }
    }
  }
  return m;
}

StatusOr<std::vector<Image>> MatrixToImages(const Matrix& m, int nrow,
                                            int ncol) {
  if (nrow <= 0 || ncol <= 0 ||
      static_cast<int64_t>(nrow) * ncol != m.rows()) {
    return Status::InvalidArgument(
        "convert-matrix-image: matrix rows " + std::to_string(m.rows()) +
        " do not factor as " + std::to_string(nrow) + "x" +
        std::to_string(ncol));
  }
  std::vector<Image> out;
  out.reserve(m.cols());
  for (int j = 0; j < m.cols(); ++j) {
    GAEA_ASSIGN_OR_RETURN(Image img,
                          Image::Create(nrow, ncol, PixelType::kFloat64));
    int idx = 0;
    for (int r = 0; r < nrow; ++r) {
      for (int c = 0; c < ncol; ++c) {
        img.Set(r, c, m(idx++, j));
      }
    }
    out.push_back(std::move(img));
  }
  return out;
}

StatusOr<Matrix> LinearCombination(const Matrix& data, const Matrix& weights) {
  return data.Multiply(weights);
}

StatusOr<Image> Resample(const Image& a, int new_rows, int new_cols,
                         ResampleMethod method) {
  if (a.empty()) return Status::InvalidArgument("resample of empty image");
  GAEA_ASSIGN_OR_RETURN(Image out,
                        Image::Create(new_rows, new_cols, PixelType::kFloat64));
  double rs = static_cast<double>(a.nrow()) / new_rows;
  double cs = static_cast<double>(a.ncol()) / new_cols;
  for (int r = 0; r < new_rows; ++r) {
    for (int c = 0; c < new_cols; ++c) {
      // Center-of-pixel sampling in source coordinates.
      double sr = (r + 0.5) * rs - 0.5;
      double sc = (c + 0.5) * cs - 0.5;
      if (method == ResampleMethod::kNearest) {
        int ir = std::clamp(static_cast<int>(std::lround(sr)), 0, a.nrow() - 1);
        int ic = std::clamp(static_cast<int>(std::lround(sc)), 0, a.ncol() - 1);
        out.Set(r, c, a.Get(ir, ic));
      } else {
        int r0 = std::clamp(static_cast<int>(std::floor(sr)), 0, a.nrow() - 1);
        int c0 = std::clamp(static_cast<int>(std::floor(sc)), 0, a.ncol() - 1);
        int r1 = std::min(r0 + 1, a.nrow() - 1);
        int c1 = std::min(c0 + 1, a.ncol() - 1);
        double fr = std::clamp(sr - r0, 0.0, 1.0);
        double fc = std::clamp(sc - c0, 0.0, 1.0);
        double v = (1 - fr) * (1 - fc) * a.Get(r0, c0) +
                   (1 - fr) * fc * a.Get(r0, c1) +
                   fr * (1 - fc) * a.Get(r1, c0) + fr * fc * a.Get(r1, c1);
        out.Set(r, c, v);
      }
    }
  }
  return out;
}

StatusOr<Image> BlendLinear(const Image& a, const Image& b, double w) {
  if (w < 0.0 || w > 1.0) {
    return Status::InvalidArgument("blend weight must be in [0,1], got " +
                                   std::to_string(w));
  }
  return PointwiseBinary(
      a, b, [w](double x, double y) { return (1.0 - w) * x + w * y; });
}

StatusOr<Image> Threshold(const Image& a, double threshold) {
  GAEA_ASSIGN_OR_RETURN(
      Image out, PointwiseUnary(a, [threshold](double x) {
        return x >= threshold ? 1.0 : 0.0;
      }));
  return out.ConvertTo(PixelType::kUInt8);
}

StatusOr<double> AgreementRatio(const Image& a, const Image& b) {
  if (!a.SameShape(b)) {
    return Status::InvalidArgument("agreement: image shape mismatch");
  }
  if (a.empty()) return Status::InvalidArgument("agreement of empty images");
  int64_t agree = 0;
  for (int r = 0; r < a.nrow(); ++r) {
    for (int c = 0; c < a.ncol(); ++c) {
      if (a.Get(r, c) == b.Get(r, c)) ++agree;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(a.PixelCount());
}

}  // namespace gaea
