#include "raster/image_ops.h"

#include <algorithm>
#include <cmath>

#include "core/tile_pool.h"

namespace gaea {

namespace {

// Widens row `r` of `img` to float8: a pointer straight into the image when
// it already stores float8, otherwise a converted copy in `scratch` (sized
// ncol by the caller).
const double* RowAsF64(const Image& img, int64_t r,
                       std::vector<double>* scratch) {
  if (img.pixel_type() == PixelType::kFloat64) return img.RowF64(r);
  img.ReadRow(r, scratch->data());
  return scratch->data();
}

// Runs kernel(arow, brow, outrow, ncol) over every row of a fresh float8
// output, tiled on the TilePool. The kernel sees contiguous float8 rows, so
// a plain column loop auto-vectorizes (scripts/check_vectorization.sh).
template <typename RowKernel>
StatusOr<Image> TiledBinary(const char* label, const Image& a, const Image& b,
                            RowKernel kernel) {
  if (!a.SameShape(b)) {
    return Status::InvalidArgument("image shape mismatch: " + a.ToString() +
                                   " vs " + b.ToString());
  }
  GAEA_ASSIGN_OR_RETURN(Image out,
                        Image::Create(a.nrow(), a.ncol(), PixelType::kFloat64));
  const int64_t ncol = a.ncol64();
  GAEA_RETURN_IF_ERROR(TilePool::Global().ParallelRows(
      label, a.nrow64(), [&](int64_t r0, int64_t r1) {
        std::vector<double> abuf(ncol), bbuf(ncol);
        for (int64_t r = r0; r < r1; ++r) {
          kernel(RowAsF64(a, r, &abuf), RowAsF64(b, r, &bbuf),
                 out.MutableRowF64(r), ncol);
        }
        return Status::OK();
      }));
  return out;
}

template <typename RowKernel>
StatusOr<Image> TiledUnary(const char* label, const Image& a,
                           RowKernel kernel) {
  GAEA_ASSIGN_OR_RETURN(Image out,
                        Image::Create(a.nrow(), a.ncol(), PixelType::kFloat64));
  const int64_t ncol = a.ncol64();
  GAEA_RETURN_IF_ERROR(TilePool::Global().ParallelRows(
      label, a.nrow64(), [&](int64_t r0, int64_t r1) {
        std::vector<double> abuf(ncol);
        for (int64_t r = r0; r < r1; ++r) {
          kernel(RowAsF64(a, r, &abuf), out.MutableRowF64(r), ncol);
        }
        return Status::OK();
      }));
  return out;
}

}  // namespace

StatusOr<Image> PointwiseBinary(
    const Image& a, const Image& b,
    const std::function<double(double, double)>& fn) {
  return TiledBinary("pointwise_binary", a, b,
                     [&fn](const double* x, const double* y, double* o,
                           int64_t n) {
                       for (int64_t i = 0; i < n; ++i) o[i] = fn(x[i], y[i]);
                     });
}

StatusOr<Image> PointwiseUnary(const Image& a,
                               const std::function<double(double)>& fn) {
  return TiledUnary("pointwise_unary", a,
                    [&fn](const double* x, double* o, int64_t n) {
                      for (int64_t i = 0; i < n; ++i) o[i] = fn(x[i]);
                    });
}

StatusOr<Image> ImgAdd(const Image& a, const Image& b) {
  return TiledBinary(
      "img_add", a, b,
      [](const double* __restrict__ x, const double* __restrict__ y,
         double* __restrict__ o, int64_t n) {
        for (int64_t i = 0; i < n; ++i) o[i] = x[i] + y[i];
      });
}

StatusOr<Image> ImgSubtract(const Image& a, const Image& b) {
  return TiledBinary(
      "img_sub", a, b,
      [](const double* __restrict__ x, const double* __restrict__ y,
         double* __restrict__ o, int64_t n) {
        for (int64_t i = 0; i < n; ++i) o[i] = x[i] - y[i];
      });
}

StatusOr<Image> ImgMultiply(const Image& a, const Image& b) {
  return TiledBinary(
      "img_mul", a, b,
      [](const double* __restrict__ x, const double* __restrict__ y,
         double* __restrict__ o, int64_t n) {
        for (int64_t i = 0; i < n; ++i) o[i] = x[i] * y[i];
      });
}

StatusOr<Image> ImgDivide(const Image& a, const Image& b, double eps) {
  return TiledBinary(
      "img_div", a, b,
      [eps](const double* __restrict__ x, const double* __restrict__ y,
            double* __restrict__ o, int64_t n) {
        // Branch-free select: if-converts (and vectorizes) because the
        // raster TUs build with -fno-trapping-math.
        for (int64_t i = 0; i < n; ++i) {
          o[i] = std::fabs(y[i]) < eps ? 0.0 : x[i] / y[i];
        }
      });
}

StatusOr<Image> ImgScale(const Image& a, double factor, double offset) {
  return TiledUnary("img_scale", a,
                    [factor, offset](const double* __restrict__ x,
                                     double* __restrict__ o, int64_t n) {
                      for (int64_t i = 0; i < n; ++i) {
                        o[i] = x[i] * factor + offset;
                      }
                    });
}

StatusOr<Image> ImgAbs(const Image& a) {
  return TiledUnary("img_abs", a,
                    [](const double* __restrict__ x, double* __restrict__ o,
                       int64_t n) {
                      for (int64_t i = 0; i < n; ++i) o[i] = std::fabs(x[i]);
                    });
}

StatusOr<Image> Ndvi(const Image& nir, const Image& red) {
  return TiledBinary(
      "ndvi", nir, red,
      [](const double* __restrict__ x, const double* __restrict__ y,
         double* __restrict__ o, int64_t n) {
        for (int64_t i = 0; i < n; ++i) {
          double denom = x[i] + y[i];
          o[i] = std::fabs(denom) < 1e-12 ? 0.0 : (x[i] - y[i]) / denom;
        }
      });
}

StatusOr<std::vector<Image>> Composite(
    const std::vector<const Image*>& bands) {
  if (bands.empty()) {
    return Status::InvalidArgument("composite needs at least one band");
  }
  for (const Image* b : bands) {
    if (b == nullptr) return Status::InvalidArgument("composite: null band");
    if (!b->SameShape(*bands[0])) {
      return Status::InvalidArgument("composite: band shape mismatch " +
                                     bands[0]->ToString() + " vs " +
                                     b->ToString());
    }
  }
  std::vector<Image> out;
  out.reserve(bands.size());
  for (const Image* b : bands) {
    GAEA_ASSIGN_OR_RETURN(Image converted, b->ConvertTo(PixelType::kFloat64));
    out.push_back(std::move(converted));
  }
  return out;
}

StatusOr<Matrix> ImagesToMatrix(const std::vector<const Image*>& bands) {
  if (bands.empty()) {
    return Status::InvalidArgument("convert-image-matrix needs >=1 image");
  }
  const Image& first = *bands[0];
  for (const Image* b : bands) {
    if (b == nullptr || !b->SameShape(first)) {
      return Status::InvalidArgument("convert-image-matrix: shape mismatch");
    }
  }
  const int64_t ncol = first.ncol64();
  const int64_t nb = static_cast<int64_t>(bands.size());
  int64_t npix = first.nrow64() * ncol;
  Matrix m(static_cast<int>(npix), static_cast<int>(nb));
  GAEA_RETURN_IF_ERROR(TilePool::Global().ParallelRows(
      "images_to_matrix", first.nrow64(), [&](int64_t r0, int64_t r1) {
        std::vector<double> buf(ncol);
        for (int64_t j = 0; j < nb; ++j) {
          const Image& img = *bands[static_cast<size_t>(j)];
          for (int64_t r = r0; r < r1; ++r) {
            const double* row = RowAsF64(img, r, &buf);
            double* mrow = m.data() + r * ncol * nb + j;
            for (int64_t c = 0; c < ncol; ++c) mrow[c * nb] = row[c];
          }
        }
        return Status::OK();
      }));
  return m;
}

StatusOr<std::vector<Image>> MatrixToImages(const Matrix& m, int nrow,
                                            int ncol) {
  if (nrow <= 0 || ncol <= 0 ||
      static_cast<int64_t>(nrow) * ncol != m.rows()) {
    return Status::InvalidArgument(
        "convert-matrix-image: matrix rows " + std::to_string(m.rows()) +
        " do not factor as " + std::to_string(nrow) + "x" +
        std::to_string(ncol));
  }
  const int64_t k = m.cols();
  const int64_t w = ncol;
  std::vector<Image> out;
  out.reserve(static_cast<size_t>(k));
  for (int64_t j = 0; j < k; ++j) {
    GAEA_ASSIGN_OR_RETURN(Image img,
                          Image::Create(nrow, ncol, PixelType::kFloat64));
    GAEA_RETURN_IF_ERROR(TilePool::Global().ParallelRows(
        "matrix_to_images", nrow, [&](int64_t r0, int64_t r1) {
          for (int64_t r = r0; r < r1; ++r) {
            const double* mrow = m.data() + r * w * k + j;
            double* orow = img.MutableRowF64(r);
            for (int64_t c = 0; c < w; ++c) orow[c] = mrow[c * k];
          }
          return Status::OK();
        }));
    out.push_back(std::move(img));
  }
  return out;
}

StatusOr<Matrix> LinearCombination(const Matrix& data, const Matrix& weights) {
  return data.Multiply(weights);
}

StatusOr<Image> Resample(const Image& a, int new_rows, int new_cols,
                         ResampleMethod method) {
  if (a.empty()) return Status::InvalidArgument("resample of empty image");
  GAEA_ASSIGN_OR_RETURN(Image out,
                        Image::Create(new_rows, new_cols, PixelType::kFloat64));
  const double rs = static_cast<double>(a.nrow()) / new_rows;
  const double cs = static_cast<double>(a.ncol()) / new_cols;
  // Tiles split the *output* rows; every tile reads arbitrary source rows,
  // which is safe (pure reads of `a`).
  GAEA_RETURN_IF_ERROR(TilePool::Global().ParallelRows(
      "resample", new_rows, [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          double* orow = out.MutableRowF64(r);
          for (int64_t c = 0; c < new_cols; ++c) {
            // Center-of-pixel sampling in source coordinates.
            double sr = (static_cast<double>(r) + 0.5) * rs - 0.5;
            double sc = (static_cast<double>(c) + 0.5) * cs - 0.5;
            if (method == ResampleMethod::kNearest) {
              int ir = std::clamp(static_cast<int>(std::lround(sr)), 0,
                                  a.nrow() - 1);
              int ic = std::clamp(static_cast<int>(std::lround(sc)), 0,
                                  a.ncol() - 1);
              orow[c] = a.Get(ir, ic);
            } else {
              int sr0 = std::clamp(static_cast<int>(std::floor(sr)), 0,
                                   a.nrow() - 1);
              int sc0 = std::clamp(static_cast<int>(std::floor(sc)), 0,
                                   a.ncol() - 1);
              int sr1 = std::min(sr0 + 1, a.nrow() - 1);
              int sc1 = std::min(sc0 + 1, a.ncol() - 1);
              double fr = std::clamp(sr - sr0, 0.0, 1.0);
              double fc = std::clamp(sc - sc0, 0.0, 1.0);
              orow[c] = (1 - fr) * (1 - fc) * a.Get(sr0, sc0) +
                        (1 - fr) * fc * a.Get(sr0, sc1) +
                        fr * (1 - fc) * a.Get(sr1, sc0) +
                        fr * fc * a.Get(sr1, sc1);
            }
          }
        }
        return Status::OK();
      }));
  return out;
}

StatusOr<Image> BlendLinear(const Image& a, const Image& b, double w) {
  if (w < 0.0 || w > 1.0) {
    return Status::InvalidArgument("blend weight must be in [0,1], got " +
                                   std::to_string(w));
  }
  return TiledBinary(
      "img_blend", a, b,
      [w](const double* __restrict__ x, const double* __restrict__ y,
          double* __restrict__ o, int64_t n) {
        for (int64_t i = 0; i < n; ++i) o[i] = (1.0 - w) * x[i] + w * y[i];
      });
}

StatusOr<Image> Threshold(const Image& a, double threshold) {
  GAEA_ASSIGN_OR_RETURN(
      Image out,
      TiledUnary("img_threshold", a,
                 [threshold](const double* __restrict__ x,
                             double* __restrict__ o, int64_t n) {
                   for (int64_t i = 0; i < n; ++i) {
                     o[i] = x[i] >= threshold ? 1.0 : 0.0;
                   }
                 }));
  return out.ConvertTo(PixelType::kUInt8);
}

StatusOr<double> AgreementRatio(const Image& a, const Image& b) {
  if (!a.SameShape(b)) {
    return Status::InvalidArgument("agreement: image shape mismatch");
  }
  if (a.empty()) return Status::InvalidArgument("agreement of empty images");
  const int64_t ncol = a.ncol64();
  // Per-tile counts combined in ascending tile order; geometry is fixed, so
  // the total is identical for every thread count (integer sums commute,
  // but the rule keeps every reduction in the file uniform).
  std::vector<int64_t> partial(TileCount(a.nrow64()), 0);
  GAEA_RETURN_IF_ERROR(TilePool::Global().ParallelRows(
      "agreement", a.nrow64(), [&](int64_t r0, int64_t r1) {
        std::vector<double> abuf(ncol), bbuf(ncol);
        int64_t agree = 0;
        for (int64_t r = r0; r < r1; ++r) {
          const double* x = RowAsF64(a, r, &abuf);
          const double* y = RowAsF64(b, r, &bbuf);
          for (int64_t c = 0; c < ncol; ++c) {
            if (x[c] == y[c]) ++agree;
          }
        }
        partial[r0 / TilePool::kTileRows] = agree;
        return Status::OK();
      }));
  int64_t agree = 0;
  for (int64_t p : partial) agree += p;
  return static_cast<double>(agree) / static_cast<double>(a.PixelCount());
}

}  // namespace gaea
