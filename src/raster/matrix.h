// The `matrix` and `vector` primitive classes used inside the PCA compound
// operator (paper Figure 4: convert-image-matrix -> compute-covariance ->
// get-eigen-vector -> linear-combination -> convert-matrix-image).
//
// Matrix is a small dense row-major double matrix with just the linear
// algebra the derivation operators need: multiplication, transpose,
// covariance of sample columns, and a cyclic Jacobi eigen solver for
// symmetric matrices (covariance matrices are symmetric PSD).

#ifndef GAEA_RASTER_MATRIX_H_
#define GAEA_RASTER_MATRIX_H_

#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "util/serialize.h"
#include "util/status.h"

namespace gaea {

class Matrix {
 public:
  Matrix() = default;
  // Zero-filled rows x cols.
  Matrix(int rows, int cols);

  static StatusOr<Matrix> FromRows(
      const std::vector<std::vector<double>>& rows);
  static Matrix Identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double operator()(int r, int c) const {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double& operator()(int r, int c) {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  // Raw row-major storage and per-row pointers, for the vectorized kernels
  // in image_ops.cc / matrix.cc (contiguous inner loops).
  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }
  const double* Row(int64_t r) const {
    assert(r >= 0 && r < rows_);
    return data_.data() + static_cast<size_t>(r) * cols_;
  }
  double* Row(int64_t r) {
    assert(r >= 0 && r < rows_);
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  StatusOr<Matrix> Multiply(const Matrix& other) const;
  Matrix Transpose() const;
  StatusOr<Matrix> Add(const Matrix& other) const;
  StatusOr<Matrix> Subtract(const Matrix& other) const;
  Matrix Scale(double factor) const;

  // Column means (length = cols()).
  std::vector<double> ColumnMeans() const;
  // Column standard deviations (population).
  std::vector<double> ColumnStddevs() const;

  // Sample covariance of the columns: treats each row as one observation of
  // `cols()` variables. Result is cols() x cols(), normalized by N (the
  // population convention the remote-sensing literature uses).
  StatusOr<Matrix> Covariance() const;
  // Pearson correlation of the columns (the "standardized" covariance that
  // SPCA diagonalizes).
  StatusOr<Matrix> Correlation() const;

  // Frobenius norm of (this - other); requires same shape.
  StatusOr<double> Distance(const Matrix& other) const;

  bool IsSymmetric(double tol = 1e-9) const;

  struct Eigen;
  // Eigen decomposition of a symmetric matrix by cyclic Jacobi rotations.
  // Eigenvalues sorted descending; eigenvectors returned as the *columns*
  // of `vectors`, matching eigenvalue order, each unit length.
  // `tol` bounds the sum of squared off-diagonal entries at convergence
  // (Jacobi converges quadratically, so the tight default is cheap).
  StatusOr<Eigen> SymmetricEigen(int max_sweeps = 64, double tol = 1e-22) const;

  bool AlmostEquals(const Matrix& other, double tol = 1e-9) const;
  bool operator==(const Matrix& other) const = default;

  std::string ToString() const;

  void Serialize(BinaryWriter* w) const;
  static StatusOr<Matrix> Deserialize(BinaryReader* r);

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

// Result of Matrix::SymmetricEigen.
struct Matrix::Eigen {
  std::vector<double> values;
  Matrix vectors;
};

using MatrixPtr = std::shared_ptr<const Matrix>;

}  // namespace gaea

#endif  // GAEA_RASTER_MATRIX_H_
