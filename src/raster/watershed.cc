#include "raster/watershed.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>
#include <vector>

namespace gaea {

namespace {
constexpr int kUnlabeled = -1;

struct Px {
  int r, c;
};
}  // namespace

StatusOr<WatershedResult> Watershed(const Image& elevation, int levels) {
  if (elevation.empty()) {
    return Status::InvalidArgument("watershed of empty image");
  }
  if (levels < 2) {
    return Status::InvalidArgument("watershed needs >= 2 grey levels");
  }
  int nrow = elevation.nrow();
  int ncol = elevation.ncol();
  size_t npix = elevation.PixelCount();

  Image::Stats stats = elevation.ComputeStats();
  double lo = stats.min, hi = stats.max;
  double scale = hi > lo ? (levels - 1) / (hi - lo) : 0.0;

  // Quantized level per pixel and pixel list sorted by level.
  std::vector<int> level(npix);
  std::vector<int> order(npix);
  for (int r = 0; r < nrow; ++r) {
    for (int c = 0; c < ncol; ++c) {
      size_t idx = static_cast<size_t>(r) * ncol + c;
      level[idx] = static_cast<int>((elevation.Get(r, c) - lo) * scale);
    }
  }
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&level](int a, int b) { return level[a] < level[b]; });

  std::vector<int> label(npix, kUnlabeled);
  int next_basin = 1;

  const int dr[] = {-1, 1, 0, 0};
  const int dc[] = {0, 0, -1, 1};

  size_t pos = 0;
  while (pos < npix) {
    // All pixels of the current grey level.
    int current = level[order[pos]];
    size_t begin = pos;
    while (pos < npix && level[order[pos]] == current) ++pos;

    // Phase 1: grow existing basins into this level by BFS from pixels
    // adjacent to labeled neighbours; pixels reached from two different
    // basins become ridges.
    std::deque<int> frontier;
    for (size_t i = begin; i < pos; ++i) {
      int idx = order[i];
      int r = idx / ncol, c = idx % ncol;
      for (int k = 0; k < 4; ++k) {
        int rr = r + dr[k], cc = c + dc[k];
        if (rr < 0 || rr >= nrow || cc < 0 || cc >= ncol) continue;
        int nidx = rr * ncol + cc;
        if (label[nidx] > 0 || label[nidx] == kWatershedRidge) {
          frontier.push_back(idx);
          break;
        }
      }
    }
    while (!frontier.empty()) {
      int idx = frontier.front();
      frontier.pop_front();
      if (label[idx] != kUnlabeled) continue;
      int r = idx / ncol, c = idx % ncol;
      int basin = kUnlabeled;
      bool ridge = false;
      for (int k = 0; k < 4; ++k) {
        int rr = r + dr[k], cc = c + dc[k];
        if (rr < 0 || rr >= nrow || cc < 0 || cc >= ncol) continue;
        int neighbor = label[rr * ncol + cc];
        if (neighbor > 0) {
          if (basin == kUnlabeled) {
            basin = neighbor;
          } else if (basin != neighbor) {
            ridge = true;
          }
        }
      }
      if (ridge) {
        label[idx] = kWatershedRidge;
      } else if (basin != kUnlabeled) {
        label[idx] = basin;
        // Newly labeled pixel may unlock same-level neighbours.
        for (int k = 0; k < 4; ++k) {
          int rr = r + dr[k], cc = c + dc[k];
          if (rr < 0 || rr >= nrow || cc < 0 || cc >= ncol) continue;
          int nidx = rr * ncol + cc;
          if (label[nidx] == kUnlabeled && level[nidx] == current) {
            frontier.push_back(nidx);
          }
        }
      }
    }

    // Phase 2: remaining unlabeled pixels at this level are new regional
    // minima; flood-fill each connected component as a fresh basin.
    for (size_t i = begin; i < pos; ++i) {
      int seed = order[i];
      if (label[seed] != kUnlabeled) continue;
      int basin = next_basin++;
      std::deque<int> fill{seed};
      label[seed] = basin;
      while (!fill.empty()) {
        int idx = fill.front();
        fill.pop_front();
        int r = idx / ncol, c = idx % ncol;
        for (int k = 0; k < 4; ++k) {
          int rr = r + dr[k], cc = c + dc[k];
          if (rr < 0 || rr >= nrow || cc < 0 || cc >= ncol) continue;
          int nidx = rr * ncol + cc;
          if (label[nidx] == kUnlabeled && level[nidx] == current) {
            label[nidx] = basin;
            fill.push_back(nidx);
          }
        }
      }
    }
  }

  WatershedResult result;
  GAEA_ASSIGN_OR_RETURN(result.labels,
                        Image::Create(nrow, ncol, PixelType::kInt32));
  for (int r = 0; r < nrow; ++r) {
    for (int c = 0; c < ncol; ++c) {
      result.labels.Set(r, c, label[static_cast<size_t>(r) * ncol + c]);
    }
  }
  result.n_basins = next_basin - 1;
  return result;
}

}  // namespace gaea
