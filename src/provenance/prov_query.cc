#include "provenance/prov_query.h"

#include <algorithm>
#include <deque>
#include <set>
#include <sstream>

#include "core/expr.h"
#include "core/process.h"
#include "replication/shipper.h"

namespace gaea {
namespace provenance {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

template <typename T>
std::string JsonArray(const std::vector<T>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(values[i]);
  }
  out += ']';
  return out;
}

std::string JsonWitnesses(
    const std::vector<std::pair<std::string, std::vector<Oid>>>& witnesses) {
  std::string out = "{";
  for (size_t i = 0; i < witnesses.size(); ++i) {
    if (i > 0) out += ',';
    out += '"' + JsonEscape(witnesses[i].first) + "\":" +
           JsonArray(witnesses[i].second);
  }
  out += '}';
  return out;
}

// Argument names a mapping expression reads, first-use order, deduplicated.
void CollectArgs(const Expr& expr, std::vector<std::string>* args) {
  if (expr.kind() == Expr::Kind::kAttrRef ||
      expr.kind() == Expr::Kind::kCard) {
    if (std::find(args->begin(), args->end(), expr.name()) == args->end()) {
      args->push_back(expr.name());
    }
  }
  for (const ExprPtr& child : expr.children()) CollectArgs(*child, args);
}

}  // namespace

// ---------------------------------------------------------------------------
// DbTaskSource
// ---------------------------------------------------------------------------

StatusOr<Task> DbTaskSource::Fetch(TaskId id) const {
  if (id == kInvalidTaskId) {
    return Status::NotFound("invalid task id");
  }
  if (prefer_resident_) {
    StatusOr<const Task*> resident = log_->Get(id);
    if (resident.ok()) return **resident;
    if (resident.status().code() != StatusCode::kNotFound) {
      return resident.status();
    }
  }
  // A task's journal LSN is its id - 1. Read the live journal; when a
  // checkpoint's TruncatePrefix already moved that prefix out, fall through
  // to the archive-segment chain — provenance must reach records the live
  // tail no longer holds.
  std::vector<std::string> records;
  uint64_t next = 0;
  Status live = log_->ReadJournalRange(id - 1, /*max_records=*/1,
                                       /*max_bytes=*/1u << 20, &records, &next);
  if (live.code() == StatusCode::kOutOfRange) {
    archive_fetches_.fetch_add(1, std::memory_order_acq_rel);
    GAEA_RETURN_IF_ERROR(replication::ReadFromArchives(
        env_, db_dir_, "tasks", id - 1, /*max_records=*/1,
        /*max_bytes=*/1u << 20, &records, &next));
  } else {
    GAEA_RETURN_IF_ERROR(live);
  }
  if (records.empty()) {
    return Status::NotFound("no task with id " + std::to_string(id));
  }
  BinaryReader r(records[0]);
  GAEA_ASSIGN_OR_RETURN(Task task, Task::Deserialize(&r));
  if (task.id != id) {
    return Status::Corruption("task journal LSN " + std::to_string(id - 1) +
                              " holds task id " + std::to_string(task.id));
  }
  return task;
}

// ---------------------------------------------------------------------------
// ProvenanceEngine
// ---------------------------------------------------------------------------

StatusOr<Task> ProvenanceEngine::ProducerOf(Oid oid, uint64_t* lookups) const {
  GAEA_ASSIGN_OR_RETURN(std::vector<TaskId> producers,
                        index_->TasksByOutput(oid));
  if (lookups != nullptr) ++*lookups;
  uint64_t max_id = source_->MaxTaskId();
  for (TaskId id : producers) {
    if (id > max_id) continue;  // index ahead of a crash-shortened log
    return source_->Fetch(id);
  }
  return Status::NotFound("object " + std::to_string(oid) +
                          " has no producing task (base data)");
}

StatusOr<ClosureResult> ProvenanceEngine::Closure(Oid root, bool ancestors,
                                                  const Limits& limits) const {
  ClosureResult result;
  result.root = root;
  result.ancestors = ancestors;
  std::set<Oid> seen_oids;
  std::set<TaskId> seen_tasks;
  // BFS over (oid, task-depth). The visited sets are the cycle guard: a
  // well-formed log is acyclic (a task's inputs precede its outputs), but
  // the walk must terminate even over a damaged index.
  std::deque<std::pair<Oid, int>> frontier;
  frontier.emplace_back(root, 0);
  seen_oids.insert(root);
  uint64_t max_id = source_->MaxTaskId();
  size_t visits = 0;
  while (!frontier.empty()) {
    auto [oid, depth] = frontier.front();
    frontier.pop_front();
    if (limits.max_depth > 0 && depth >= limits.max_depth) {
      result.truncated = true;
      continue;
    }
    if (++visits > limits.max_visits) {
      result.truncated = true;
      break;
    }
    GAEA_ASSIGN_OR_RETURN(std::vector<TaskId> task_ids,
                          ancestors ? index_->TasksByOutput(oid)
                                    : index_->TasksByInput(oid));
    ++result.index_lookups;
    for (TaskId id : task_ids) {
      if (id == kInvalidTaskId || id > max_id) continue;
      if (!seen_tasks.insert(id).second) continue;
      GAEA_ASSIGN_OR_RETURN(Task task, source_->Fetch(id));
      result.depth = std::max(result.depth, depth + 1);
      const std::vector<Oid> next_oids =
          ancestors ? task.AllInputs() : task.outputs;
      for (Oid next : next_oids) {
        if (seen_oids.insert(next).second) {
          frontier.emplace_back(next, depth + 1);
        }
      }
    }
  }
  seen_oids.erase(root);
  result.oids.assign(seen_oids.begin(), seen_oids.end());
  result.tasks.assign(seen_tasks.begin(), seen_tasks.end());
  return result;
}

StatusOr<ClosureResult> ProvenanceEngine::Ancestors(
    Oid oid, const Limits& limits) const {
  return Closure(oid, /*ancestors=*/true, limits);
}

StatusOr<ClosureResult> ProvenanceEngine::Descendants(
    Oid oid, const Limits& limits) const {
  return Closure(oid, /*ancestors=*/false, limits);
}

StatusOr<WhyResult> ProvenanceEngine::Why(Oid oid) const {
  WhyResult result;
  result.output = oid;
  GAEA_ASSIGN_OR_RETURN(Task task, ProducerOf(oid, nullptr));
  result.task = task.id;
  result.process = task.process_name;
  result.version = task.process_version;
  for (const auto& [arg, oids] : task.inputs) {
    result.witnesses.emplace_back(arg, oids);
  }
  // The base witness: every underived object the output transitively rests
  // on — the part of the witness that survives any amount of re-derivation.
  GAEA_ASSIGN_OR_RETURN(ClosureResult closure, Ancestors(oid));
  for (Oid ancestor : closure.oids) {
    GAEA_ASSIGN_OR_RETURN(std::vector<TaskId> producers,
                          index_->TasksByOutput(ancestor));
    uint64_t max_id = source_->MaxTaskId();
    bool base = true;
    for (TaskId id : producers) {
      if (id != kInvalidTaskId && id <= max_id) {
        base = false;
        break;
      }
    }
    if (base) result.base_witnesses.push_back(ancestor);
  }
  return result;
}

StatusOr<WhereResult> ProvenanceEngine::Where(Oid oid) const {
  WhereResult result;
  result.output = oid;
  GAEA_ASSIGN_OR_RETURN(Task task, ProducerOf(oid, nullptr));
  result.task = task.id;
  result.process = task.process_name;
  result.version = task.process_version;
  if (task.process_version < 1) {
    // External procedures (v-1) and interpolation (v0) carry no MAPPINGS;
    // where-provenance degrades to the whole witness per output.
    result.note = task.process_version == 0
                      ? "interpolation task: no mapping template"
                      : "external procedure: no mapping template";
    return result;
  }
  if (processes_ == nullptr) {
    return Status::FailedPrecondition(
        "where-provenance needs a process registry");
  }
  GAEA_ASSIGN_OR_RETURN(const ProcessDef* def,
                        processes_->Version(task.process_name,
                                            task.process_version));
  for (const ProcessMapping& mapping : def->mappings()) {
    WhereEntry entry;
    entry.attr = mapping.attr;
    entry.mapping = mapping.expr->ToString();
    std::vector<std::string> args;
    CollectArgs(*mapping.expr, &args);
    for (const std::string& arg : args) {
      auto it = task.inputs.find(arg);
      if (it == task.inputs.end()) continue;
      entry.contributors.emplace_back(arg, it->second);
    }
    result.entries.push_back(std::move(entry));
  }
  return result;
}

StatusOr<DiffResult> ProvenanceEngine::Diff(Oid a, Oid b) const {
  DiffResult result;
  result.a = a;
  result.b = b;
  GAEA_ASSIGN_OR_RETURN(Task task_a, ProducerOf(a, nullptr));
  GAEA_ASSIGN_OR_RETURN(Task task_b, ProducerOf(b, nullptr));
  result.process_a = task_a.process_name;
  result.process_b = task_b.process_name;
  result.version_a = task_a.process_version;
  result.version_b = task_b.process_version;
  if (task_a.process_name != task_b.process_name) {
    result.differences.push_back("process: " + task_a.process_name + " vs " +
                                 task_b.process_name);
  }
  if (task_a.process_version < 1 || task_b.process_version < 1) {
    // At least one side has no replayable template to compare.
    if (task_a.process_name == task_b.process_name &&
        task_a.process_version == task_b.process_version) {
      result.same_procedure = true;
    } else {
      result.differences.push_back(
          "no comparable templates (external or interpolation task)");
    }
    return result;
  }
  if (processes_ == nullptr) {
    return Status::FailedPrecondition(
        "process-version diff needs a process registry");
  }
  GAEA_ASSIGN_OR_RETURN(const ProcessDef* def_a,
                        processes_->Version(task_a.process_name,
                                            task_a.process_version));
  GAEA_ASSIGN_OR_RETURN(const ProcessDef* def_b,
                        processes_->Version(task_b.process_name,
                                            task_b.process_version));
  result.same_procedure = task_a.process_name == task_b.process_name &&
                          def_a->StructurallyEquals(*def_b);
  if (result.same_procedure) return result;

  // Arguments, by binding name.
  for (const ProcessArg& arg : def_a->args()) {
    auto found = def_b->FindArg(arg.name);
    if (!found.ok()) {
      result.differences.push_back("argument " + arg.name + ": only in " +
                                   def_a->name() + " v" +
                                   std::to_string(def_a->version()));
      continue;
    }
    const ProcessArg& other = **found;
    if (arg.class_name != other.class_name || arg.setof != other.setof ||
        arg.min_card != other.min_card) {
      result.differences.push_back(
          "argument " + arg.name + ": " + arg.class_name +
          (arg.setof ? " setof min " + std::to_string(arg.min_card) : "") +
          " vs " + other.class_name +
          (other.setof ? " setof min " + std::to_string(other.min_card) : ""));
    }
  }
  for (const ProcessArg& arg : def_b->args()) {
    if (!def_a->FindArg(arg.name).ok()) {
      result.differences.push_back("argument " + arg.name + ": only in " +
                                   def_b->name() + " v" +
                                   std::to_string(def_b->version()));
    }
  }

  // Parameters ("the same derivation method with different parameters
  // represents different processes" — the diff names exactly which ones).
  for (const auto& [name, value] : def_a->params()) {
    auto it = def_b->params().find(name);
    if (it == def_b->params().end()) {
      result.differences.push_back("param " + name + ": only in v" +
                                   std::to_string(def_a->version()));
    } else if (value.ToString() != it->second.ToString()) {
      result.differences.push_back("param " + name + ": " + value.ToString() +
                                   " vs " + it->second.ToString());
    }
  }
  for (const auto& [name, value] : def_b->params()) {
    if (def_a->params().find(name) == def_a->params().end()) {
      result.differences.push_back("param " + name + ": only in v" +
                                   std::to_string(def_b->version()));
    }
  }

  // Assertions, by rendered form (order-insensitive).
  std::set<std::string> asserts_a, asserts_b;
  for (const ExprPtr& e : def_a->assertions()) asserts_a.insert(e->ToString());
  for (const ExprPtr& e : def_b->assertions()) asserts_b.insert(e->ToString());
  for (const std::string& s : asserts_a) {
    if (asserts_b.find(s) == asserts_b.end()) {
      result.differences.push_back("assertion only in v" +
                                   std::to_string(def_a->version()) + ": " + s);
    }
  }
  for (const std::string& s : asserts_b) {
    if (asserts_a.find(s) == asserts_a.end()) {
      result.differences.push_back("assertion only in v" +
                                   std::to_string(def_b->version()) + ": " + s);
    }
  }

  // Mappings, by output attribute — the heart of a version diff: which
  // transfer function changed between the two procedures.
  for (const ProcessMapping& m : def_a->mappings()) {
    const ProcessMapping* other = nullptr;
    for (const ProcessMapping& n : def_b->mappings()) {
      if (n.attr == m.attr) {
        other = &n;
        break;
      }
    }
    if (other == nullptr) {
      result.differences.push_back("mapping " + m.attr + ": only in v" +
                                   std::to_string(def_a->version()));
    } else if (!m.expr->StructurallyEquals(*other->expr)) {
      result.differences.push_back("mapping " + m.attr + ": " +
                                   m.expr->ToString() + " vs " +
                                   other->expr->ToString());
    }
  }
  for (const ProcessMapping& m : def_b->mappings()) {
    bool found = false;
    for (const ProcessMapping& n : def_a->mappings()) {
      if (n.attr == m.attr) {
        found = true;
        break;
      }
    }
    if (!found) {
      result.differences.push_back("mapping " + m.attr + ": only in v" +
                                   std::to_string(def_b->version()));
    }
  }
  if (result.differences.empty()) {
    // Structures differ in a way the itemized walk cannot name (e.g. output
    // class); keep the report honest rather than silently empty.
    result.differences.push_back("procedures differ structurally");
  }
  return result;
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

std::string ClosureResult::ToJson() const {
  std::string json = "{\"query\":\"";
  json += ancestors ? "ancestors" : "descendants";
  json += "\",\"root\":" + std::to_string(root);
  json += ",\"oids\":" + JsonArray(oids);
  json += ",\"tasks\":" + JsonArray(tasks);
  json += ",\"depth\":" + std::to_string(depth);
  json += ",\"truncated\":";
  json += truncated ? "true" : "false";
  json += ",\"index_lookups\":" + std::to_string(index_lookups);
  json += '}';
  return json;
}

std::string ClosureResult::ToText() const {
  std::ostringstream os;
  os << (ancestors ? "ancestors" : "descendants") << " of oid " << root
     << ": " << oids.size() << " object(s) across " << tasks.size()
     << " task(s), depth " << depth << (truncated ? " (truncated)" : "")
     << "\n";
  os << "  oids:";
  for (Oid oid : oids) os << " " << oid;
  os << "\n  tasks:";
  for (TaskId id : tasks) os << " #" << id;
  os << "\n";
  return os.str();
}

std::string WhyResult::ToJson() const {
  std::string json = "{\"query\":\"why\",\"output\":" + std::to_string(output);
  json += ",\"task\":" + std::to_string(task);
  json += ",\"process\":\"" + JsonEscape(process) + "\"";
  json += ",\"version\":" + std::to_string(version);
  json += ",\"witnesses\":" + JsonWitnesses(witnesses);
  json += ",\"base_witnesses\":" + JsonArray(base_witnesses);
  json += '}';
  return json;
}

std::string WhyResult::ToText() const {
  std::ostringstream os;
  os << "why oid " << output << ": task #" << task << " " << process << " v"
     << version << "\n";
  for (const auto& [arg, oids] : witnesses) {
    os << "  " << arg << " =";
    for (Oid oid : oids) os << " " << oid;
    os << "\n";
  }
  os << "  base witness:";
  for (Oid oid : base_witnesses) os << " " << oid;
  os << "\n";
  return os.str();
}

std::string WhereResult::ToJson() const {
  std::string json =
      "{\"query\":\"where\",\"output\":" + std::to_string(output);
  json += ",\"task\":" + std::to_string(task);
  json += ",\"process\":\"" + JsonEscape(process) + "\"";
  json += ",\"version\":" + std::to_string(version);
  if (!note.empty()) json += ",\"note\":\"" + JsonEscape(note) + "\"";
  json += ",\"mappings\":[";
  for (size_t i = 0; i < entries.size(); ++i) {
    const WhereEntry& e = entries[i];
    if (i > 0) json += ',';
    json += "{\"attr\":\"" + JsonEscape(e.attr) + "\"";
    json += ",\"expr\":\"" + JsonEscape(e.mapping) + "\"";
    json += ",\"contributors\":" + JsonWitnesses(e.contributors);
    json += '}';
  }
  json += "]}";
  return json;
}

std::string WhereResult::ToText() const {
  std::ostringstream os;
  os << "where oid " << output << ": task #" << task << " " << process << " v"
     << version << "\n";
  if (!note.empty()) os << "  " << note << "\n";
  for (const WhereEntry& e : entries) {
    os << "  " << e.attr << " = " << e.mapping << "\n";
    for (const auto& [arg, oids] : e.contributors) {
      os << "    via " << arg << ":";
      for (Oid oid : oids) os << " " << oid;
      os << "\n";
    }
  }
  return os.str();
}

std::string DiffResult::ToJson() const {
  std::string json = "{\"query\":\"diff\",\"a\":" + std::to_string(a);
  json += ",\"b\":" + std::to_string(b);
  json += ",\"process_a\":\"" + JsonEscape(process_a) + "\"";
  json += ",\"version_a\":" + std::to_string(version_a);
  json += ",\"process_b\":\"" + JsonEscape(process_b) + "\"";
  json += ",\"version_b\":" + std::to_string(version_b);
  json += ",\"same_procedure\":";
  json += same_procedure ? "true" : "false";
  json += ",\"differences\":[";
  for (size_t i = 0; i < differences.size(); ++i) {
    if (i > 0) json += ',';
    json += '"' + JsonEscape(differences[i]) + '"';
  }
  json += "]}";
  return json;
}

std::string DiffResult::ToText() const {
  std::ostringstream os;
  os << "diff oid " << a << " (" << process_a << " v" << version_a
     << ") vs oid " << b << " (" << process_b << " v" << version_b << "): "
     << (same_procedure ? "same procedure" : "procedures differ") << "\n";
  for (const std::string& line : differences) os << "  " << line << "\n";
  return os.str();
}

}  // namespace provenance
}  // namespace gaea
