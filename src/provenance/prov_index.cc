#include "provenance/prov_index.h"

#include <algorithm>

namespace gaea {
namespace provenance {

namespace {
constexpr char kMetaMagic[] = "gaea-prov-meta v1\n";
}  // namespace

StatusOr<std::unique_ptr<ProvenanceIndex>> ProvenanceIndex::Open(
    const std::string& dir, Env* env) {
  std::unique_ptr<ProvenanceIndex> index(new ProvenanceIndex(dir, env));
  GAEA_RETURN_IF_ERROR(index->OpenTrees());
  GAEA_RETURN_IF_ERROR(index->LoadMeta());
  return index;
}

Status ProvenanceIndex::OpenTrees() {
  GAEA_ASSIGN_OR_RETURN(by_input_,
                        BTree::Open(InPath(), /*pool_capacity=*/256, env_));
  GAEA_ASSIGN_OR_RETURN(by_output_,
                        BTree::Open(OutPath(), /*pool_capacity=*/256, env_));
  torn_on_open_ = by_input_->repaired_on_open() ||
                  by_output_->repaired_on_open();
  return Status::OK();
}

Status ProvenanceIndex::LoadMeta() {
  indexed_through_.store(0, std::memory_order_release);
  if (!env_->FileExists(MetaPath())) {
    // No watermark: either a fresh database or a crash before the first
    // Flush. Non-empty trees then force a conservative full re-pass, which
    // the idempotent inserts turn into a verification walk.
    return Status::OK();
  }
  GAEA_ASSIGN_OR_RETURN(std::unique_ptr<SequentialFile> file,
                        env_->NewSequentialFile(MetaPath()));
  char buf[64];
  GAEA_ASSIGN_OR_RETURN(size_t n, file->Read(sizeof(buf) - 1, buf));
  buf[n] = '\0';
  std::string contents(buf, n);
  size_t magic_len = sizeof(kMetaMagic) - 1;
  if (contents.size() < magic_len ||
      contents.compare(0, magic_len, kMetaMagic) != 0) {
    // Unreadable watermark — treat as absent; CatchUp re-passes the log.
    torn_on_open_ = true;
    return Status::OK();
  }
  uint64_t through = 0;
  for (size_t i = magic_len; i < contents.size(); ++i) {
    char c = contents[i];
    if (c == '\n') break;
    if (c < '0' || c > '9') {
      torn_on_open_ = true;
      return Status::OK();
    }
    through = through * 10 + static_cast<uint64_t>(c - '0');
  }
  indexed_through_.store(through, std::memory_order_release);
  return Status::OK();
}

Status ProvenanceIndex::StoreMeta() {
  std::string tmp = MetaPath() + ".tmp";
  GAEA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                        env_->NewWritableFile(tmp));
  std::string contents = std::string(kMetaMagic) +
                         std::to_string(indexed_through()) + "\n";
  GAEA_RETURN_IF_ERROR(file->Append(contents));
  GAEA_RETURN_IF_ERROR(file->Sync());
  return env_->RenameFile(tmp, MetaPath());
}

Status ProvenanceIndex::Reset() {
  by_input_.reset();
  by_output_.reset();
  GAEA_RETURN_IF_ERROR(env_->RemoveFile(InPath()));
  GAEA_RETURN_IF_ERROR(env_->RemoveFile(OutPath()));
  GAEA_RETURN_IF_ERROR(env_->RemoveFile(MetaPath()));
  indexed_through_.store(0, std::memory_order_release);
  rebuilds_.fetch_add(1, std::memory_order_acq_rel);
  GAEA_RETURN_IF_ERROR(OpenTrees());
  torn_on_open_ = false;
  return Status::OK();
}

Status ProvenanceIndex::InsertEntry(BTree* tree, Oid oid, TaskId id) {
  Status s = tree->Insert(static_cast<int64_t>(oid), id);
  if (s.code() == StatusCode::kAlreadyExists) return Status::OK();
  return s;
}

Status ProvenanceIndex::IndexTask(const Task& task) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (Oid oid : task.outputs) {
    GAEA_RETURN_IF_ERROR(InsertEntry(by_output_.get(), oid, task.id));
  }
  for (Oid oid : task.AllInputs()) {
    GAEA_RETURN_IF_ERROR(InsertEntry(by_input_.get(), oid, task.id));
  }
  uint64_t through = indexed_through_.load(std::memory_order_acquire);
  if (task.id > through) {
    indexed_through_.store(task.id, std::memory_order_release);
  }
  return Status::OK();
}

StatusOr<std::vector<TaskId>> ProvenanceIndex::TasksByOutput(Oid oid) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  GAEA_ASSIGN_OR_RETURN(std::vector<uint64_t> values,
                        by_output_->Lookup(static_cast<int64_t>(oid)));
  return std::vector<TaskId>(values.begin(), values.end());
}

StatusOr<std::vector<TaskId>> ProvenanceIndex::TasksByInput(Oid oid) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  GAEA_ASSIGN_OR_RETURN(std::vector<uint64_t> values,
                        by_input_->Lookup(static_cast<int64_t>(oid)));
  return std::vector<TaskId>(values.begin(), values.end());
}

Status ProvenanceIndex::CatchUp(const TaskLog& log) {
  uint64_t total = log.size();
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    bool ahead = indexed_through_.load(std::memory_order_acquire) > total;
    bool stale_trees =
        total == 0 && (by_input_->Count() > 0 || by_output_->Count() > 0);
    if (torn_on_open_ || ahead || stale_trees) {
      // The trees saw history the recovered log does not hold (or came up
      // torn): the journal chain is the source of truth, rebuild from it.
      GAEA_RETURN_IF_ERROR(Reset());
    }
  }
  uint64_t from = indexed_through();
  for (TaskId id = from + 1; id <= total; ++id) {
    GAEA_ASSIGN_OR_RETURN(const Task* task, log.Get(id));
    GAEA_RETURN_IF_ERROR(IndexTask(*task));
  }
  return Status::OK();
}

int64_t ProvenanceIndex::entry_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return by_input_->Count() + by_output_->Count();
}

Status ProvenanceIndex::Flush() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  GAEA_RETURN_IF_ERROR(by_input_->Flush());
  GAEA_RETURN_IF_ERROR(by_output_->Flush());
  return StoreMeta();
}

}  // namespace provenance
}  // namespace gaea
