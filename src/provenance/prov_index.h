// Secondary lineage index over the task log (docs/PROVENANCE.md).
//
// The task log is the durable record of how every derived object came to be,
// but on its own a lineage question ("what produced OID 42? what consumed
// it?") costs a scan of the whole history. This module maintains two disk
// B+trees beside the journals so lineage queries never scan:
//
//   prov_out.idx : output OID -> task id   (at most one task per OID —
//                                           derivations are immutable)
//   prov_in.idx  : input OID  -> task id   (every task that consumed it)
//
// Entries are added incrementally at commit time (TaskLog's commit hook
// fires inside the log mutex, so the index never lags a committed task
// within a session) and caught up from the recovered log on open. The trees
// are *derived state*: the journal chain is the source of truth, and any
// torn or inconsistent tree is simply rebuilt from it — like the object
// store rebuilding its OID index from heap records.
//
// Concurrency: one reader/writer lock covers both trees, and IndexTask
// inserts every entry of a task under the exclusive side. A concurrent
// query therefore sees a task either not at all or fully indexed — never a
// half-indexed task (asserted by tests/provenance_stress_test.cc).

#ifndef GAEA_PROVENANCE_PROV_INDEX_H_
#define GAEA_PROVENANCE_PROV_INDEX_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/task.h"
#include "storage/btree.h"
#include "util/env.h"
#include "util/status.h"

namespace gaea {
namespace provenance {

class ProvenanceIndex {
 public:
  // Opens (creating if needed) the index trees under `dir` (the database
  // directory). A torn tree — or a watermark ahead of what the caller's log
  // can justify — is detected here or in CatchUp and rebuilt from the log.
  static StatusOr<std::unique_ptr<ProvenanceIndex>> Open(
      const std::string& dir, Env* env = Env::Default());

  ProvenanceIndex(const ProvenanceIndex&) = delete;
  ProvenanceIndex& operator=(const ProvenanceIndex&) = delete;

  // Indexes one committed task: every output and input OID, atomically with
  // respect to queries. Idempotent — re-indexing an already-indexed task
  // (journal catch-up after a crash that lost the watermark) is a no-op,
  // entry by entry, so the tree bytes match a single clean build.
  Status IndexTask(const Task& task);

  // Task ids that produced `oid`, ascending (at most one in a well-formed
  // log). Empty for base data.
  StatusOr<std::vector<TaskId>> TasksByOutput(Oid oid) const;

  // Task ids that consumed `oid` as an input, ascending.
  StatusOr<std::vector<TaskId>> TasksByInput(Oid oid) const;

  // Brings the index up to date with the recovered `log`: rebuilds from
  // scratch when a tree came up torn or the watermark overshoots the log
  // (a crash lost journal records the index already saw), otherwise indexes
  // the tail past the watermark. Call once at open, before queries.
  Status CatchUp(const TaskLog& log);

  // Highest task id the index covers.
  uint64_t indexed_through() const {
    return indexed_through_.load(std::memory_order_acquire);
  }

  // Total entries across both trees (metrics).
  int64_t entry_count() const;

  // Full rebuilds performed (0 in a clean lifetime; metrics).
  uint64_t rebuilds() const {
    return rebuilds_.load(std::memory_order_acquire);
  }

  // Flushes both trees and persists the watermark sidecar. The watermark is
  // advisory: a stale-low value after a crash only costs an idempotent
  // re-pass over the tail.
  Status Flush();

 private:
  ProvenanceIndex(std::string dir, Env* env) : dir_(std::move(dir)), env_(env) {}

  std::string InPath() const { return dir_ + "/prov_in.idx"; }
  std::string OutPath() const { return dir_ + "/prov_out.idx"; }
  std::string MetaPath() const { return dir_ + "/prov.meta"; }

  Status OpenTrees();
  // Drops both trees and the watermark; the caller re-indexes from the log.
  Status Reset();
  // Inserts one (oid, task) entry, tolerating kAlreadyExists. Caller holds
  // the exclusive lock.
  Status InsertEntry(BTree* tree, Oid oid, TaskId id);
  Status LoadMeta();
  Status StoreMeta();

  const std::string dir_;
  Env* const env_;
  mutable std::shared_mutex mu_;
  std::unique_ptr<BTree> by_input_;
  std::unique_ptr<BTree> by_output_;
  std::atomic<uint64_t> indexed_through_{0};
  std::atomic<uint64_t> rebuilds_{0};
  bool torn_on_open_ = false;
};

}  // namespace provenance
}  // namespace gaea

#endif  // GAEA_PROVENANCE_PROV_INDEX_H_
