// Provenance query engine over the lineage index (docs/PROVENANCE.md).
//
// Queries follow the semantics of Cheney, Chiticariu & Tan, "Provenance in
// Databases: Why, How, and Where" (Foundations and Trends in Databases,
// 2009), specialized to Gaea's derivation model:
//
//   * ancestry / descendant closure — the transitive inputs (resp. outputs)
//     of an object through the task log, resolved entirely through the
//     B+tree index with cycle and depth guards;
//   * why-provenance — the witness set of an output: the exact input OIDs,
//     per process argument, whose presence justified the derivation, plus
//     the base (underived) objects the witness ultimately rests on;
//   * where-provenance — which input *contributed a value* to which output
//     attribute: each MAPPING of the producing process version names the
//     arguments its expression reads, and those arguments bind the
//     contributing OIDs;
//   * process-version diff — how the procedures behind two objects differ
//     (ProvDB-style workflow-version queries: Miao et al., CIDR 2017),
//     leveraging the immutable versioned process registry.
//
// Task records are resolved through a TaskSource, not the in-memory log
// alone: after a checkpoint's Journal::TruncatePrefix the live task journal
// no longer holds the oldest records, and the source transparently falls
// through to the archive-segment chain — so provenance reaches across
// checkpoint/truncation boundaries (tests/provenance_truncation_test.cc).

#ifndef GAEA_PROVENANCE_PROV_QUERY_H_
#define GAEA_PROVENANCE_PROV_QUERY_H_

#include <atomic>
#include <string>
#include <utility>
#include <vector>

#include "core/process_registry.h"
#include "core/task.h"
#include "provenance/prov_index.h"
#include "util/env.h"
#include "util/status.h"

namespace gaea {
namespace provenance {

// Where the engine reads task records from. Implementations must be safe
// for concurrent Fetch calls.
class TaskSource {
 public:
  virtual ~TaskSource() = default;
  // The task with `id`; kNotFound when the log never recorded it.
  virtual StatusOr<Task> Fetch(TaskId id) const = 0;
  // Highest committed task id (index entries above it are ignored).
  virtual uint64_t MaxTaskId() const = 0;
};

// Task records resolved from a database directory: the resident log first,
// then the live journal, then the archive chain a checkpoint truncated the
// prefix into. `log` may be in-memory (no journal) — the resident path then
// answers everything. With `prefer_resident` false the resident log is
// skipped, forcing every fetch through the durable chain (used by the
// truncation regression test; production keeps the fast path).
class DbTaskSource : public TaskSource {
 public:
  DbTaskSource(Env* env, std::string db_dir, const TaskLog* log,
               bool prefer_resident = true)
      : env_(env), db_dir_(std::move(db_dir)), log_(log),
        prefer_resident_(prefer_resident) {}

  StatusOr<Task> Fetch(TaskId id) const override;
  uint64_t MaxTaskId() const override { return log_->size(); }

  // Fetches that had to cross into the archive chain (metrics, tests).
  uint64_t archive_fetches() const {
    return archive_fetches_.load(std::memory_order_acquire);
  }

 private:
  Env* const env_;
  const std::string db_dir_;
  const TaskLog* const log_;
  const bool prefer_resident_;
  mutable std::atomic<uint64_t> archive_fetches_{0};
};

// ---- query results ----

// Transitive closure (ancestors or descendants) of one object.
struct ClosureResult {
  Oid root = kInvalidOid;
  bool ancestors = true;          // direction of the traversal
  std::vector<Oid> oids;          // closure members, ascending, root excluded
  std::vector<TaskId> tasks;      // tasks crossed, ascending
  int depth = 0;                  // deepest task level reached
  bool truncated = false;         // a guard (depth/visit cap) cut the walk
  uint64_t index_lookups = 0;     // B+tree probes the answer cost

  std::string ToJson() const;
  std::string ToText() const;
};

// Why-provenance: the witness set of one derived object.
struct WhyResult {
  Oid output = kInvalidOid;
  TaskId task = kInvalidTaskId;
  std::string process;
  int version = 0;
  // The witness proper: input OIDs per process argument, argument order.
  std::vector<std::pair<std::string, std::vector<Oid>>> witnesses;
  // Base (underived) objects the witness transitively rests on.
  std::vector<Oid> base_witnesses;

  std::string ToJson() const;
  std::string ToText() const;
};

// Where-provenance: one entry per MAPPING of the producing process.
struct WhereEntry {
  std::string attr;       // output attribute the mapping derives
  std::string mapping;    // the transfer expression, source form
  // Arguments the expression reads -> the input OIDs bound to them.
  std::vector<std::pair<std::string, std::vector<Oid>>> contributors;
};

struct WhereResult {
  Oid output = kInvalidOid;
  TaskId task = kInvalidTaskId;
  std::string process;
  int version = 0;
  std::string note;  // set when no template exists (external/interpolation)
  std::vector<WhereEntry> entries;

  std::string ToJson() const;
  std::string ToText() const;
};

// Process-version diff between the procedures that produced two objects.
struct DiffResult {
  Oid a = kInvalidOid;
  Oid b = kInvalidOid;
  std::string process_a, process_b;
  int version_a = 0, version_b = 0;
  bool same_procedure = false;
  // Human-readable difference lines (empty when same_procedure).
  std::vector<std::string> differences;

  std::string ToJson() const;
  std::string ToText() const;
};

// ---- the engine ----

// Traversal guards for closure queries.
struct QueryLimits {
  int max_depth = 0;             // 0 = unbounded
  size_t max_visits = 1u << 20;  // closure-size guard (cycles, runaways)
};

class ProvenanceEngine {
 public:
  using Limits = QueryLimits;

  // `processes` may be null; Where/Diff then fail kFailedPrecondition.
  ProvenanceEngine(const ProvenanceIndex* index, const TaskSource* source,
                   const ProcessRegistry* processes = nullptr)
      : index_(index), source_(source), processes_(processes) {}

  StatusOr<ClosureResult> Ancestors(Oid oid,
                                    const Limits& limits = Limits()) const;
  StatusOr<ClosureResult> Descendants(Oid oid,
                                      const Limits& limits = Limits()) const;
  StatusOr<WhyResult> Why(Oid oid) const;
  StatusOr<WhereResult> Where(Oid oid) const;
  StatusOr<DiffResult> Diff(Oid a, Oid b) const;

 private:
  // The producing task of `oid`, kNotFound for base data.
  StatusOr<Task> ProducerOf(Oid oid, uint64_t* lookups) const;
  StatusOr<ClosureResult> Closure(Oid oid, bool ancestors,
                                  const Limits& limits) const;

  const ProvenanceIndex* const index_;
  const TaskSource* const source_;
  const ProcessRegistry* const processes_;
};

}  // namespace provenance
}  // namespace gaea

#endif  // GAEA_PROVENANCE_PROV_QUERY_H_
