// Diagnostics emitted by the static analyzer (src/analysis/).
//
// Every finding carries a stable code ("GA001"...), a severity, a source
// location (DDL file/line when known, otherwise the construct path, e.g.
// "process unsupervised-classification / mapping landcover.data"), and a
// human-readable message. Codes are grouped by pass family:
//
//   GA0xx  type/arity checking of process templates against the catalog
//          and the operator registry
//   GA1xx  graph checks: class/process cross-references, compound-process
//          networks, concept ISA structure
//   GA2xx  Petri-net structural analysis of the derivation net
//   GA3xx  assertion lint (trivially false/true, contradictions)
//   GA4xx  dataflow: abstract interpretation of mapping expressions over
//          interval/shape domains, propagated interprocedurally through
//          the derivation graph
//   GA5xx  cost/parallelism: static work/span estimation, dead derivations,
//          DerivationCache key hygiene
//
// The full code table lives in AllDiagnosticCodes(); docs/ANALYSIS.md is the
// user-facing rendering of it.

#ifndef GAEA_ANALYSIS_DIAGNOSTIC_H_
#define GAEA_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <vector>

namespace gaea {

enum class Severity : uint8_t {
  kWarning = 0,  // suspicious but loadable (warn-on-load)
  kError = 1,    // definition rejected at registration time
};

const char* SeverityName(Severity s);

struct Diagnostic {
  std::string code;      // "GA001"
  Severity severity = Severity::kError;
  std::string file;      // DDL file the finding is anchored to, if any
  int line = 0;          // 1-based line of the enclosing construct; 0 unknown
  std::string location;  // construct path, e.g. "process p / mapping c.a"
  std::string message;

  // "error GA001 [schema.ddl:12: process compute-ndvi]: output class 'x'
  // is not defined" (file/line prefix only when known).
  std::string ToString() const;
};

// One entry of the stable code table.
struct DiagnosticCodeInfo {
  const char* code;
  Severity severity;
  const char* family;   // "type", "graph", "petri", "assertion",
                        // "dataflow", "cost"
  const char* summary;  // one-line description
};

// All codes the analyzer can emit, ascending.
const std::vector<DiagnosticCodeInfo>& AllDiagnosticCodes();

// Lookup in AllDiagnosticCodes(); nullptr when unknown.
const DiagnosticCodeInfo* FindDiagnosticCode(const std::string& code);

// Convenience helpers over a diagnostic list.
bool HasErrors(const std::vector<Diagnostic>& diags);
size_t CountErrors(const std::vector<Diagnostic>& diags);
// All diagnostics rendered one per line.
std::string FormatDiagnostics(const std::vector<Diagnostic>& diags);
// True if any diagnostic carries `code`.
bool HasCode(const std::vector<Diagnostic>& diags, const std::string& code);

// Appends a diagnostic with the severity registered for `code`.
void Emit(std::vector<Diagnostic>* out, const std::string& code,
          std::string location, std::string message);

// Sorts by (file, line, code, location, message) and drops exact duplicates,
// so output is stable, diffable, and golden-testable even when a finding is
// reported by both a per-process and a whole-catalog pass.
void NormalizeDiagnostics(std::vector<Diagnostic>* diags);

}  // namespace gaea

#endif  // GAEA_ANALYSIS_DIAGNOSTIC_H_
