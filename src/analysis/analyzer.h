// Static analysis over Gaea's metadata constructs (the tentpole of the
// derivation-network lint subsystem).
//
// The paper's invariant — "object classes which do not represent base data
// are solely defined by their derivation process" — is only as trustworthy
// as the process network itself. These passes validate the network ahead of
// time, instead of at Task instantiation:
//
//   * AnalyzeProcess        type/arity checking of TEMPLATE assertions and
//                           mappings against the catalog and the operator
//                           registry, plus assertion lint (GA0xx, GA3xx)
//   * AnalyzeCatalogGraph   class <-> process cross-reference checks (GA1xx)
//   * AnalyzeCompoundProcess  wiring, class compatibility and cycle checks
//                           on compound-process stage networks (GA1xx)
//   * AnalyzePetriNet       structural analysis of the derivation Petri net:
//                           unreachable transitions, dead places, unbounded
//                           token growth (GA2xx)
//   * AnalyzeAll            every pass applicable to a registry snapshot
//
// All passes append to a diagnostic list and never fail: a broken network
// yields findings, not an error status. Callers decide the policy —
// GaeaKernel::DefineProcess rejects on error-severity findings, DDL loading
// surfaces the rest as warnings (see docs/ANALYSIS.md).

#ifndef GAEA_ANALYSIS_ANALYZER_H_
#define GAEA_ANALYSIS_ANALYZER_H_

#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "catalog/class_def.h"
#include "core/compound_process.h"
#include "core/expr.h"
#include "core/process.h"
#include "core/process_registry.h"
#include "types/op_registry.h"

namespace gaea {

// Result of statically analyzing one expression tree.
struct ExprAnalysis {
  bool failed = false;              // a diagnostic was emitted below this node
  TypeId type = TypeId::kNull;      // inferred result type (valid when !failed)
  TypeId list_element = TypeId::kNull;  // element type when type == kList
};

// Walks an expression, verifying every argument/attribute/parameter/operator
// reference against `ctx`. Unknown attribute references are reported as
// GA303 inside assertions and GA010 inside mappings. Best-effort: keeps
// descending after a finding where possible, so one pass collects many
// diagnostics.
ExprAnalysis AnalyzeExpr(const Expr& expr, const TypeContext& ctx,
                         const std::string& location, bool in_assertion,
                         std::vector<Diagnostic>* out);

// Type/arity checks a process template against the catalog and operator
// registry (GA001-GA012) and lints its assertions (GA301-GA304).
void AnalyzeProcess(const ProcessDef& def, const ClassRegistry& classes,
                    const OperatorRegistry& ops, std::vector<Diagnostic>* out);

// Cross-reference checks between classes and processes: dangling DERIVED BY
// (GA101), output-class mismatch (GA102), base class with a producer (GA103).
void AnalyzeCatalogGraph(const ClassRegistry& classes,
                         const ProcessRegistry& processes,
                         std::vector<Diagnostic>* out);

// Wiring, class-compatibility and cycle checks on a compound-process stage
// network (GA104-GA107, plus the GA505 serial-chain cost check). Unlike
// CompoundProcessDef::Expand, reports every defect instead of failing on
// the first.
void AnalyzeCompoundProcess(const CompoundProcessDef& def,
                            const ClassRegistry& classes,
                            const ProcessRegistry& processes,
                            std::vector<Diagnostic>* out);

// Petri-net structural analysis of the derivation net built from the latest
// version of every process (GA201-GA203). Processes referencing unknown
// classes are excluded (they are reported by AnalyzeProcess instead).
void AnalyzePetriNet(const ClassRegistry& classes,
                     const ProcessRegistry& processes,
                     std::vector<Diagnostic>* out);

// Runs every registry-level pass: AnalyzeProcess + per-process cost checks
// on the latest version of each process, AnalyzeCatalogGraph,
// AnalyzePetriNet, the GA4xx interprocedural dataflow pass, and — when
// `concept_covered` (class names covered by a concept) is provided — the
// GA502 dead-derivation check. The result is normalized (sorted, deduped).
std::vector<Diagnostic> AnalyzeAll(
    const ClassRegistry& classes, const ProcessRegistry& processes,
    const OperatorRegistry& ops,
    const std::set<std::string>* concept_covered = nullptr);

}  // namespace gaea

#endif  // GAEA_ANALYSIS_ANALYZER_H_
