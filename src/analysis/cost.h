// GA5xx static cost / parallelism analysis (docs/ANALYSIS.md, docs/PERF.md).
//
// Each builtin operator gets a static unit cost (scalar ops are cheap,
// pixel-wise image ops moderate, the Figure 4 matrix stages expensive). A
// process template's *work* is the total cost over its mapping trees —
// counting repeats, because the deriver evaluates trees, not DAGs — and its
// *span* is the heaviest root-to-leaf chain of *serial* operator cost:
// row-band-tiled operators (src/core/tile_pool.h) contribute cost divided
// by the assumed tile fan-out, matching the >= 3x cpu_bound speedup
// bench_parallel_derivation measures at 4 threads. work/span bounds the
// speedup any intra-derivation parallelism could achieve; a long chain of
// genuinely serial operators (watershed, the Jacobi eigen solve) with
// work/span near 1 stays inherently serial.
//
// Checks:
//   GA501  serial critical path: >= 4 expensive non-tileable operators
//          chained and work/span below 1.5x — names the chain and the
//          speedup bound
//   GA502  dead-end derivation: the output class is consumed by no process
//          and covered by no concept (whole-catalog scope)
//   GA503  declared parameter never referenced: params are part of the
//          DerivationCache key (name#version#crc(params)#args), so an
//          unused one splits otherwise-identical cache entries
//   GA504  expensive subexpression repeated inside one template: tree
//          evaluation recomputes it on every occurrence
//   GA505  compound stage network is a pure serial chain: no two stages
//          can ever run in parallel

#ifndef GAEA_ANALYSIS_COST_H_
#define GAEA_ANALYSIS_COST_H_

#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "catalog/class_def.h"
#include "core/compound_process.h"
#include "core/process.h"
#include "core/process_registry.h"

namespace gaea {

// Static cost estimate of one process template's mappings.
struct CostEstimate {
  double work = 0;  // total operator cost, trees evaluated as trees
  double span = 0;  // heaviest root-to-leaf operator chain
  // Operator names along the critical path, in execution (leaf-first) order.
  std::vector<std::string> critical_path;
};

// Unit cost of one operator (2 when unknown).
double OperatorCost(const std::string& op);

// True when the operator's kernel executes as row-band tiles on the
// TilePool (src/core/tile_pool.h): its span contribution shrinks by the
// assumed tile fan-out, so it no longer counts toward GA501's serial chain.
bool OperatorTileable(const std::string& op);

CostEstimate EstimateProcessCost(const ProcessDef& def);

// Per-process checks: GA501, GA503, GA504.
void AnalyzeProcessCost(const ProcessDef& def, std::vector<Diagnostic>* out);

// Whole-catalog check: GA502. `concept_covered` holds class names covered
// by at least one concept; pass nullptr when concept data is unavailable,
// which disables the check rather than flooding it.
void AnalyzeCatalogCost(const ClassRegistry& classes,
                        const ProcessRegistry& processes,
                        const std::set<std::string>* concept_covered,
                        std::vector<Diagnostic>* out);

// Compound-network check: GA505.
void AnalyzeCompoundCost(const CompoundProcessDef& def,
                         std::vector<Diagnostic>* out);

}  // namespace gaea

#endif  // GAEA_ANALYSIS_COST_H_
