// Abstract domains for the GA4xx dataflow passes (docs/ANALYSIS.md).
//
// Mapping expressions are interpreted abstractly over intervals: a scalar is
// tracked by its provable value range, an image by its pixel range and shape
// (rows x cols), a matrix by its dimensions, and a SETOF list by its length
// plus per-element facts. A TransferRegistry mirrors the operator registry:
// each builtin operator gets a transfer function computing the output
// abstraction from the input abstractions (e.g. ndvi() always lands in
// [-1, 1]; convert_matrix_image(m, r, c) yields r x c images). Operators
// without a registered transfer fall back to "top of the declared type".
//
// Everything here is deliberately conservative: facts are only recorded when
// provable from literals, parameters (compile-time constants, §2.1.2) and
// upstream assertions, so GA4xx errors mean the derivation can never work.

#ifndef GAEA_ANALYSIS_ABSTRACT_VALUE_H_
#define GAEA_ANALYSIS_ABSTRACT_VALUE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "types/value.h"
#include "util/status.h"

namespace gaea {

// A closed-by-default interval over doubles. Only assertion refinement
// introduces open bounds (gt/lt); arithmetic keeps results closed, which is
// conservative. lo > hi encodes the empty interval (contradictory facts).
struct Interval {
  double lo;
  double hi;
  bool lo_open = false;
  bool hi_open = false;

  Interval();  // (-inf, +inf)
  static Interval Top();
  static Interval Point(double v);
  static Interval Range(double lo, double hi);
  static Interval AtLeast(double v, bool open = false);
  static Interval AtMost(double v, bool open = false);

  bool IsTop() const;
  bool IsEmpty() const;
  bool IsPoint() const;
  bool Contains(double v) const;

  Interval Intersect(const Interval& o) const;
  Interval Join(const Interval& o) const;
  bool Equals(const Interval& o) const;

  // True when x < y (resp. x <= y) for every x in *this and y in `o`.
  bool AlwaysLess(const Interval& o) const;
  bool AlwaysLessEq(const Interval& o) const;
  bool Disjoint(const Interval& o) const;

  // "[-1, 1]", "[2, +inf)", "(-inf, +inf)", "{3}".
  std::string ToString() const;
};

Interval IntervalAdd(const Interval& a, const Interval& b);
Interval IntervalSub(const Interval& a, const Interval& b);
Interval IntervalMul(const Interval& a, const Interval& b);
// Top when b's range contains zero (the caller reports GA402/GA403).
Interval IntervalDiv(const Interval& a, const Interval& b);

// Three-valued truth for abstract comparisons.
enum class TriBool : uint8_t { kFalse = 0, kTrue = 1, kUnknown = 2 };

// Abstract value of one expression. Field meaning depends on `type`:
//   scalars  range = provable value interval
//   kImage   range = pixel-value interval, rows/cols = shape, bands unused
//   kMatrix  rows/cols = dimensions
//   kList    length = element count, elem = element type, and range/rows/
//            cols describe every element (lists here are homogeneous)
struct AbstractValue {
  TypeId type = TypeId::kNull;  // kNull: type unknown
  TypeId elem = TypeId::kNull;  // element type for kList
  Interval range;
  Interval rows;
  Interval cols;
  Interval length;
  bool maybe_null = true;

  static AbstractValue Top();
  static AbstractValue OfType(TypeId t);
  // Abstraction of a concrete constant (literal or parameter).
  static AbstractValue Constant(const Value& v);
  static AbstractValue Bool(TriBool t);

  TriBool AsTriBool() const;
  AbstractValue Join(const AbstractValue& o) const;
  bool Equals(const AbstractValue& o) const;
  std::string ToString() const;
};

// Transfer function: abstract output from abstract inputs.
using TransferFn =
    std::function<AbstractValue(const std::vector<AbstractValue>&)>;

class TransferRegistry {
 public:
  TransferRegistry() = default;
  TransferRegistry(const TransferRegistry&) = delete;
  TransferRegistry& operator=(const TransferRegistry&) = delete;

  Status Register(const std::string& op, TransferFn fn);
  // nullptr when no transfer is registered for `op`.
  const TransferFn* Find(const std::string& op) const;

 private:
  std::map<std::string, TransferFn> fns_;
};

// Transfer functions for every builtin operator with a useful abstraction
// (src/types/builtin_ops.cc). The shared registry used by the dataflow pass.
const TransferRegistry& BuiltinTransferFunctions();

// Abstract comparison `a cmp b` for cmp in lt/le/gt/ge/eq/ne.
TriBool CompareIntervals(const std::string& cmp, const Interval& a,
                         const Interval& b);

}  // namespace gaea

#endif  // GAEA_ANALYSIS_ABSTRACT_VALUE_H_
