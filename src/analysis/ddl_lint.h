// Standalone DDL lint: parse a Gaea definition script and run every static
// analysis pass over it, without touching any database directory.
//
// This is the engine behind the `gaea-lint` CLI and the analysis test
// fixtures. It assembles ephemeral class/process registries from the parsed
// statements (builtin operators only), so a malformed network yields
// diagnostics rather than a failed load. Script-level checks that only make
// sense before registration — duplicate definitions, concept ISA cycles,
// undefined ISA parents, unknown concept members — live here too (GA108-
// GA111 and friends).
//
// A parse failure is returned as an error status (the script cannot be
// analyzed at all); everything else is a diagnostic.

#ifndef GAEA_ANALYSIS_DDL_LINT_H_
#define GAEA_ANALYSIS_DDL_LINT_H_

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "util/status.h"

namespace gaea {

// Lints a DDL script held in memory. Diagnostics are normalized (sorted by
// file/line/code, deduplicated) and anchored to the source line of their
// enclosing construct where known.
StatusOr<std::vector<Diagnostic>> LintDdlScript(const std::string& source);

// Reads and lints a DDL file; diagnostics carry the path in their `file`.
StatusOr<std::vector<Diagnostic>> LintDdlFile(const std::string& path);

}  // namespace gaea

#endif  // GAEA_ANALYSIS_DDL_LINT_H_
