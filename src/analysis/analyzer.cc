#include "analysis/analyzer.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "analysis/assertion_lint.h"
#include "analysis/cost.h"
#include "analysis/dataflow.h"

namespace gaea {

namespace {

// Collects the names of every process argument an expression references
// (attr refs and card()).
void CollectArgRefs(const Expr& expr, std::set<std::string>* refs) {
  switch (expr.kind()) {
    case Expr::Kind::kAttrRef:
    case Expr::Kind::kCard:
      refs->insert(expr.name());
      break;
    default:
      break;
  }
  for (const ExprPtr& child : expr.children()) {
    if (child != nullptr) CollectArgRefs(*child, refs);
  }
}

}  // namespace

ExprAnalysis AnalyzeExpr(const Expr& expr, const TypeContext& ctx,
                         const std::string& location, bool in_assertion,
                         std::vector<Diagnostic>* out) {
  ExprAnalysis result;
  switch (expr.kind()) {
    case Expr::Kind::kLiteral:
      result.type = expr.literal().type();
      return result;

    case Expr::Kind::kParam: {
      if (ctx.params == nullptr || ctx.params->count(expr.name()) == 0) {
        Emit(out, "GA008", location,
             "reference to undeclared parameter $" + expr.name());
        result.failed = true;
        return result;
      }
      result.type = ctx.params->at(expr.name()).type();
      return result;
    }

    case Expr::Kind::kAttrRef: {
      auto it = ctx.args.find(expr.name());
      if (it == ctx.args.end()) {
        Emit(out, "GA009", location,
             "reference to undeclared argument '" + expr.name() + "'");
        result.failed = true;
        return result;
      }
      const ArgSchema& schema = it->second;
      if (schema.class_def == nullptr) {
        // The argument's class failed to resolve; GA002 was already emitted.
        result.failed = true;
        return result;
      }
      auto attr = schema.class_def->FindAttribute(expr.attr());
      if (!attr.ok()) {
        Emit(out, in_assertion ? "GA303" : "GA010", location,
             "class " + schema.class_def->name() + " has no attribute '" +
                 expr.attr() + "' (referenced as " + expr.ToString() + ")");
        result.failed = true;
        return result;
      }
      if (schema.setof) {
        result.type = TypeId::kList;
        result.list_element = (*attr)->type;
      } else {
        result.type = (*attr)->type;
      }
      return result;
    }

    case Expr::Kind::kCard: {
      if (ctx.args.count(expr.name()) == 0) {
        Emit(out, "GA009", location,
             "card() of undeclared argument '" + expr.name() + "'");
        result.failed = true;
        return result;
      }
      result.type = TypeId::kInt;
      return result;
    }

    case Expr::Kind::kAnyOf: {
      if (expr.children().empty() || expr.children()[0] == nullptr) {
        Emit(out, "GA012", location, "ANYOF node has no operand");
        result.failed = true;
        return result;
      }
      ExprAnalysis child = AnalyzeExpr(*expr.children()[0], ctx, location,
                                       in_assertion, out);
      if (child.failed) {
        result.failed = true;
        return result;
      }
      if (child.type != TypeId::kList ||
          child.list_element == TypeId::kNull) {
        Emit(out, "GA012", location,
             "ANYOF needs a SETOF/list operand, got " +
                 std::string(TypeIdName(child.type)) + " in " +
                 expr.ToString());
        result.failed = true;
        return result;
      }
      result.type = child.list_element;
      return result;
    }

    case Expr::Kind::kCommon: {
      if (expr.children().empty()) {
        Emit(out, "GA012", location, "common() has no operands");
        result.failed = true;
        return result;
      }
      bool any_failed = false;
      for (const ExprPtr& child : expr.children()) {
        if (child == nullptr) continue;
        ExprAnalysis c =
            AnalyzeExpr(*child, ctx, location, in_assertion, out);
        any_failed = any_failed || c.failed;
      }
      result.failed = any_failed;
      result.type = TypeId::kBool;
      return result;
    }

    case Expr::Kind::kOpCall: {
      std::vector<TypeId> arg_types;
      arg_types.reserve(expr.children().size());
      bool any_failed = false;
      for (const ExprPtr& child : expr.children()) {
        if (child == nullptr) {
          any_failed = true;
          continue;
        }
        ExprAnalysis c =
            AnalyzeExpr(*child, ctx, location, in_assertion, out);
        any_failed = any_failed || c.failed;
        arg_types.push_back(c.type);
      }
      if (any_failed) {
        // Avoid a cascading GA005 when the real defect is in an operand.
        result.failed = true;
        return result;
      }
      if (ctx.ops == nullptr) {
        result.failed = true;
        return result;
      }
      auto res = ctx.ops->ResultType(expr.name(), arg_types);
      if (!res.ok()) {
        Emit(out, "GA005", location,
             "bad operator call " + expr.ToString() + ": " +
                 res.status().message());
        result.failed = true;
        return result;
      }
      result.type = *res;
      // Mirrors Expr::TypeCheckFull: every built-in list-returning operator
      // yields image elements (composite, pca, ...).
      result.list_element =
          result.type == TypeId::kList ? TypeId::kImage : TypeId::kNull;
      return result;
    }
  }
  result.failed = true;
  return result;
}

void AnalyzeProcess(const ProcessDef& def, const ClassRegistry& classes,
                    const OperatorRegistry& ops,
                    std::vector<Diagnostic>* out) {
  const std::string proc_loc = "process " + def.name();

  const ClassDef* out_class = nullptr;
  if (auto lookup = classes.LookupByName(def.output_class()); lookup.ok()) {
    out_class = *lookup;
  } else {
    Emit(out, "GA001", proc_loc,
         "OUTPUT class '" + def.output_class() + "' is not defined");
  }

  TypeContext ctx;
  ctx.ops = &ops;
  ctx.params = &def.params();
  for (const ProcessArg& arg : def.args()) {
    ArgSchema schema;
    schema.setof = arg.setof;
    if (auto lookup = classes.LookupByName(arg.class_name); lookup.ok()) {
      schema.class_def = *lookup;
    } else {
      Emit(out, "GA002", proc_loc + " / argument " + arg.name,
           "ARGUMENT class '" + arg.class_name + "' is not defined");
    }
    // Register the argument even when its class is unknown, so references
    // to it report the missing class (once) rather than GA009 noise.
    ctx.args[arg.name] = schema;
  }

  std::set<std::string> used_args;

  size_t assertion_index = 0;
  for (const ExprPtr& assertion : def.assertions()) {
    ++assertion_index;
    if (assertion == nullptr) continue;
    CollectArgRefs(*assertion, &used_args);
    const std::string loc =
        proc_loc + " / assertion " + std::to_string(assertion_index);
    ExprAnalysis a = AnalyzeExpr(*assertion, ctx, loc, /*in_assertion=*/true,
                                 out);
    if (!a.failed && a.type != TypeId::kBool) {
      Emit(out, "GA007", loc,
           "assertion '" + assertion->ToString() + "' has type " +
               TypeIdName(a.type) + ", must be bool");
    }
  }

  std::set<std::string> mapped;
  for (const ProcessMapping& m : def.mappings()) {
    if (m.expr == nullptr) continue;
    CollectArgRefs(*m.expr, &used_args);
    const std::string loc =
        proc_loc + " / mapping " + def.output_class() + "." + m.attr;
    const AttributeDef* target = nullptr;
    if (out_class != nullptr) {
      if (auto attr = out_class->FindAttribute(m.attr); attr.ok()) {
        target = *attr;
      } else {
        Emit(out, "GA003", loc,
             "output class " + def.output_class() + " has no attribute '" +
                 m.attr + "'");
      }
    }
    ExprAnalysis a =
        AnalyzeExpr(*m.expr, ctx, loc, /*in_assertion=*/false, out);
    if (!a.failed && target != nullptr && a.type != target->type &&
        !(target->type == TypeId::kDouble && a.type == TypeId::kInt)) {
      Emit(out, "GA004", loc,
           "mapping expression " + m.expr->ToString() + " has type " +
               TypeIdName(a.type) + ", attribute is " +
               TypeIdName(target->type));
    }
    mapped.insert(m.attr);
  }

  if (out_class != nullptr) {
    for (const AttributeDef& attr : out_class->attributes()) {
      if (mapped.count(attr.name) == 0) {
        Emit(out, "GA006", proc_loc,
             "no mapping for output attribute " + def.output_class() + "." +
                 attr.name);
      }
    }
  }

  for (const ProcessArg& arg : def.args()) {
    if (used_args.count(arg.name) == 0) {
      Emit(out, "GA011", proc_loc + " / argument " + arg.name,
           "argument '" + arg.name +
               "' is never referenced by an assertion or mapping");
    }
  }

  LintAssertions(def, ctx, out);
}

void AnalyzeCatalogGraph(const ClassRegistry& classes,
                         const ProcessRegistry& processes,
                         std::vector<Diagnostic>* out) {
  for (const ClassDef* def : classes.List()) {
    const std::string loc = "class " + def->name();
    if (def->kind() == ClassKind::kDerived) {
      auto proc = processes.Latest(def->derived_by());
      if (!proc.ok()) {
        Emit(out, "GA101", loc,
             "DERIVED BY process '" + def->derived_by() +
                 "' is not defined");
      } else if ((*proc)->output_class() != def->name()) {
        Emit(out, "GA102", loc,
             "DERIVED BY process '" + def->derived_by() +
                 "' outputs class '" + (*proc)->output_class() +
                 "', not '" + def->name() + "'");
      }
    }
  }
  for (const ProcessDef* proc : processes.ListLatest()) {
    auto cls = classes.LookupByName(proc->output_class());
    if (cls.ok() && (*cls)->kind() == ClassKind::kBase) {
      Emit(out, "GA103", "process " + proc->name(),
           "outputs class '" + proc->output_class() +
               "', which is declared as base data (missing DERIVED BY?)");
    }
  }
}

void AnalyzeCompoundProcess(const CompoundProcessDef& def,
                            const ClassRegistry& classes,
                            const ProcessRegistry& processes,
                            std::vector<Diagnostic>* out) {
  const std::string comp_loc = "compound " + def.name();

  for (const auto& [binding, class_name] : def.external_inputs()) {
    if (!classes.Contains(class_name)) {
      Emit(out, "GA002", comp_loc + " / input " + binding,
           "external input class '" + class_name + "' is not defined");
    }
  }

  std::map<std::string, const CompoundStage*> by_name;
  for (const CompoundStage& stage : def.stages()) {
    by_name[stage.name] = &stage;
  }
  if (def.stages().empty()) {
    Emit(out, "GA104", comp_loc, "compound process has no stages");
  } else if (by_name.count(def.output_stage()) == 0) {
    Emit(out, "GA104", comp_loc,
         "output stage '" + def.output_stage() + "' is not defined");
  }

  // Stage -> stage dependency edges, for the cycle check below.
  std::map<std::string, std::set<std::string>> deps;

  for (const CompoundStage& stage : def.stages()) {
    const std::string loc = comp_loc + " / stage " + stage.name;
    const ProcessDef* proc = nullptr;
    if (auto lookup = processes.Latest(stage.process_name); lookup.ok()) {
      proc = *lookup;
    } else {
      Emit(out, "GA106", loc,
           "invokes unknown process '" + stage.process_name + "'");
    }

    for (const auto& [arg_name, input] : stage.bindings) {
      std::string bound_class;
      if (input.source == StageInput::Source::kExternal) {
        auto ext = def.external_inputs().find(input.name);
        if (ext == def.external_inputs().end()) {
          Emit(out, "GA104", loc,
               "argument " + arg_name + " references unknown external input '" +
                   input.name + "'");
          continue;
        }
        bound_class = ext->second;
      } else {
        auto producer = by_name.find(input.name);
        if (producer == by_name.end()) {
          Emit(out, "GA104", loc,
               "argument " + arg_name + " references unknown stage '" +
                   input.name + "'");
          continue;
        }
        deps[stage.name].insert(input.name);
        auto producer_proc = processes.Latest(producer->second->process_name);
        if (!producer_proc.ok()) continue;  // GA106 on the producer stage
        bound_class = (*producer_proc)->output_class();
      }
      if (proc == nullptr) continue;
      auto arg = proc->FindArg(arg_name);
      if (!arg.ok()) {
        Emit(out, "GA104", loc,
             "binds argument '" + arg_name + "', which process " +
                 stage.process_name + " does not declare");
        continue;
      }
      if (bound_class != (*arg)->class_name) {
        Emit(out, "GA107", loc,
             "argument " + arg_name + " expects class " +
                 (*arg)->class_name + ", gets " + bound_class);
      }
    }

    if (proc != nullptr) {
      for (const ProcessArg& arg : proc->args()) {
        if (stage.bindings.count(arg.name) == 0) {
          Emit(out, "GA104", loc,
               "leaves process argument '" + arg.name + "' unbound");
        }
      }
    }
  }

  // Cycle detection over stage edges (DFS with colors).
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::set<std::string> reported;
  std::function<void(const std::string&, std::vector<std::string>*)> visit =
      [&](const std::string& node, std::vector<std::string>* path) {
        color[node] = 1;
        path->push_back(node);
        for (const std::string& dep : deps[node]) {
          if (color[dep] == 1) {
            // Render the cycle from dep's position in the path.
            auto it = std::find(path->begin(), path->end(), dep);
            std::string cycle;
            for (; it != path->end(); ++it) {
              if (!cycle.empty()) cycle += " -> ";
              cycle += *it;
            }
            cycle += " -> " + dep;
            if (reported.insert(cycle).second) {
              Emit(out, "GA105", comp_loc, "stage cycle: " + cycle);
            }
          } else if (color[dep] == 0) {
            visit(dep, path);
          }
        }
        path->pop_back();
        color[node] = 2;
      };
  for (const CompoundStage& stage : def.stages()) {
    if (color[stage.name] == 0) {
      std::vector<std::string> path;
      visit(stage.name, &path);
    }
  }
  AnalyzeCompoundCost(def, out);
}

std::vector<Diagnostic> AnalyzeAll(const ClassRegistry& classes,
                                   const ProcessRegistry& processes,
                                   const OperatorRegistry& ops,
                                   const std::set<std::string>* concept_covered) {
  std::vector<Diagnostic> out;
  for (const ProcessDef* def : processes.ListLatest()) {
    AnalyzeProcess(*def, classes, ops, &out);
    AnalyzeProcessCost(*def, &out);
  }
  AnalyzeCatalogGraph(classes, processes, &out);
  AnalyzePetriNet(classes, processes, &out);
  AnalyzeDataflow(classes, processes, ops, &out);
  AnalyzeCatalogCost(classes, processes, concept_covered, &out);
  NormalizeDiagnostics(&out);
  return out;
}

}  // namespace gaea
