// Incremental re-analysis for the kernel (docs/ANALYSIS.md).
//
// ExecuteDdl re-lints the catalog after every script; without caching that
// re-runs every pass over every process on each DDL statement. The cache
// exploits two immutability facts of the Gaea model: process versions are
// never edited in place ("in no case is the old process overwritten"), and
// class definitions are never redefined. So:
//
//   * per-process results (GA0xx/GA3xx type+assertion lint, GA501/503/504
//     local cost checks) are cached by "name#version" and reused until the
//     class *set* changes (a new class can resolve a previously-missing
//     reference);
//   * whole-catalog passes (graph, Petri, interprocedural dataflow, GA502)
//     are recomputed whenever the catalog version counter moves, and the
//     assembled result is memoized against that counter, so back-to-back
//     lints of an unchanged catalog are free.
//
// Not thread-safe; callers serialize (the kernel runs it under its DDL lock).

#ifndef GAEA_ANALYSIS_ANALYSIS_CACHE_H_
#define GAEA_ANALYSIS_ANALYSIS_CACHE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "catalog/class_def.h"
#include "core/process_registry.h"
#include "types/op_registry.h"

namespace gaea {

class AnalysisCache {
 public:
  struct Stats {
    uint64_t full_runs = 0;           // catalog-version misses
    uint64_t cached_runs = 0;         // whole-result reuses
    uint64_t process_analyses = 0;    // per-process passes actually executed
    uint64_t process_cache_hits = 0;  // per-process results reused
  };

  AnalysisCache() = default;
  AnalysisCache(const AnalysisCache&) = delete;
  AnalysisCache& operator=(const AnalysisCache&) = delete;

  // Full catalog analysis at `catalog_version`, normalized. The returned
  // reference stays valid until the next Analyze call.
  const std::vector<Diagnostic>& Analyze(
      uint64_t catalog_version, const ClassRegistry& classes,
      const ProcessRegistry& processes, const OperatorRegistry& ops,
      const std::set<std::string>* concept_covered);

  const Stats& stats() const { return stats_; }

 private:
  bool valid_ = false;
  uint64_t analyzed_version_ = 0;
  size_t last_class_count_ = 0;
  std::vector<Diagnostic> cached_;
  // "name#version" -> that process's local findings.
  std::map<std::string, std::vector<Diagnostic>> process_cache_;
  Stats stats_;
};

}  // namespace gaea

#endif  // GAEA_ANALYSIS_ANALYSIS_CACHE_H_
