#include "analysis/ddl_lint.h"

#include <algorithm>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "analysis/analyzer.h"
#include "analysis/cost.h"
#include "analysis/dataflow.h"
#include "ddl/parser.h"

namespace gaea {

namespace {

// Concept ISA checks over the parsed statements (before registration, where
// cycles are still representable): GA108 cycles, GA109 undefined parents,
// GA110 unknown member classes.
void LintConcepts(const std::vector<const ConceptStmt*>& stmts,
                  const ClassRegistry& classes,
                  std::vector<Diagnostic>* out) {
  std::set<std::string> defined;
  for (const ConceptStmt* stmt : stmts) defined.insert(stmt->name);

  std::map<std::string, std::set<std::string>> parents;
  for (const ConceptStmt* stmt : stmts) {
    const std::string loc = "concept " + stmt->name;
    for (const std::string& parent : stmt->isa_parents) {
      parents[stmt->name].insert(parent);
      if (defined.count(parent) == 0) {
        Emit(out, "GA109", loc,
             "ISA parent '" + parent +
                 "' is not defined in this script (it will be implicitly "
                 "created as an empty concept)");
      }
    }
    for (const std::string& member : stmt->member_classes) {
      if (!classes.Contains(member)) {
        Emit(out, "GA110", loc,
             "MEMBERS references unknown class '" + member + "'");
      }
    }
  }

  // Cycle detection over the ISA edges (DFS with colors).
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::set<std::string> reported;
  std::function<void(const std::string&, std::vector<std::string>*)> visit =
      [&](const std::string& node, std::vector<std::string>* path) {
        color[node] = 1;
        path->push_back(node);
        for (const std::string& parent : parents[node]) {
          if (color[parent] == 1) {
            auto it = std::find(path->begin(), path->end(), parent);
            std::string cycle;
            for (; it != path->end(); ++it) {
              if (!cycle.empty()) cycle += " ISA ";
              cycle += *it;
            }
            cycle += " ISA " + parent;
            if (reported.insert(cycle).second) {
              Emit(out, "GA108", "concept " + parent,
                   "ISA cycle: " + cycle);
            }
          } else if (color[parent] == 0) {
            visit(parent, path);
          }
        }
        path->pop_back();
        color[node] = 2;
      };
  for (const auto& [name, unused] : parents) {
    (void)unused;
    if (color[name] == 0) {
      std::vector<std::string> path;
      visit(name, &path);
    }
  }
}

}  // namespace

StatusOr<std::vector<Diagnostic>> LintDdlScript(const std::string& source) {
  GAEA_ASSIGN_OR_RETURN(std::vector<LocatedStatement> stmts,
                        ParseScriptLocated(source));

  std::vector<Diagnostic> diags;
  OperatorRegistry ops;
  GAEA_RETURN_IF_ERROR(RegisterBuiltinOperators(&ops));

  // Source line of each construct header ("class x", "process p", ...);
  // diagnostics are anchored to it after all passes run.
  std::map<std::string, int> construct_lines;

  // Assemble ephemeral registries. Classes first: processes and concepts
  // may legally reference a class defined anywhere in the script.
  ClassRegistry classes;
  for (const LocatedStatement& located : stmts) {
    const ClassDef* def = std::get_if<ClassDef>(&located.stmt);
    if (def == nullptr) continue;
    construct_lines.emplace("class " + def->name(), located.line);
    if (classes.Contains(def->name())) {
      Emit(&diags, "GA111", "class " + def->name(),
           "duplicate definition of class '" + def->name() + "'");
      continue;
    }
    auto registered = classes.Register(*def);
    if (!registered.ok()) {
      Emit(&diags, "GA112", "class " + def->name(),
           registered.status().message());
    }
  }

  ProcessRegistry processes;
  std::vector<const ConceptStmt*> concepts;
  for (const LocatedStatement& located : stmts) {
    if (const ProcessDef* def = std::get_if<ProcessDef>(&located.stmt)) {
      construct_lines.emplace("process " + def->name(), located.line);
      AnalyzeProcess(*def, classes, ops, &diags);
      AnalyzeProcessCost(*def, &diags);
      auto registered = processes.Register(*def);
      if (!registered.ok() &&
          registered.status().code() == StatusCode::kAlreadyExists) {
        Emit(&diags, "GA113", "process " + def->name(),
             registered.status().message());
      }
    } else if (const ConceptStmt* concept_stmt =
                   std::get_if<ConceptStmt>(&located.stmt)) {
      construct_lines.emplace("concept " + concept_stmt->name, located.line);
      concepts.push_back(concept_stmt);
    }
  }

  LintConcepts(concepts, classes, &diags);
  AnalyzeCatalogGraph(classes, processes, &diags);
  AnalyzePetriNet(classes, processes, &diags);
  AnalyzeDataflow(classes, processes, ops, &diags);
  std::set<std::string> concept_covered;
  for (const ConceptStmt* stmt : concepts) {
    for (const std::string& member : stmt->member_classes) {
      concept_covered.insert(member);
    }
  }
  AnalyzeCatalogCost(classes, processes, &concept_covered, &diags);

  for (Diagnostic& d : diags) {
    std::string head = d.location.substr(0, d.location.find(" / "));
    auto it = construct_lines.find(head);
    if (it != construct_lines.end()) d.line = it->second;
  }
  NormalizeDiagnostics(&diags);
  return diags;
}

StatusOr<std::vector<Diagnostic>> LintDdlFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot read DDL file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  GAEA_ASSIGN_OR_RETURN(std::vector<Diagnostic> diags,
                        LintDdlScript(buffer.str()));
  for (Diagnostic& d : diags) d.file = path;
  return diags;
}

}  // namespace gaea
