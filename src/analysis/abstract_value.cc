#include "analysis/abstract_value.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace gaea {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Endpoint product with the interval-arithmetic convention 0 * inf = 0.
double SafeMul(double a, double b) {
  if (a == 0.0 || b == 0.0) return 0.0;
  return a * b;
}

}  // namespace

Interval::Interval() : lo(-kInf), hi(kInf) {}

Interval Interval::Top() { return Interval(); }

Interval Interval::Point(double v) {
  Interval i;
  i.lo = v;
  i.hi = v;
  return i;
}

Interval Interval::Range(double lo, double hi) {
  Interval i;
  i.lo = lo;
  i.hi = hi;
  return i;
}

Interval Interval::AtLeast(double v, bool open) {
  Interval i;
  i.lo = v;
  i.lo_open = open;
  return i;
}

Interval Interval::AtMost(double v, bool open) {
  Interval i;
  i.hi = v;
  i.hi_open = open;
  return i;
}

bool Interval::IsTop() const {
  return lo == -kInf && hi == kInf;
}

bool Interval::IsEmpty() const {
  if (lo > hi) return true;
  return lo == hi && (lo_open || hi_open);
}

bool Interval::IsPoint() const {
  return lo == hi && !lo_open && !hi_open;
}

bool Interval::Contains(double v) const {
  if (IsEmpty()) return false;
  if (v < lo || (v == lo && lo_open)) return false;
  if (v > hi || (v == hi && hi_open)) return false;
  return true;
}

Interval Interval::Intersect(const Interval& o) const {
  Interval r;
  if (lo > o.lo || (lo == o.lo && lo_open)) {
    r.lo = lo;
    r.lo_open = lo_open;
  } else {
    r.lo = o.lo;
    r.lo_open = o.lo_open;
  }
  if (hi < o.hi || (hi == o.hi && hi_open)) {
    r.hi = hi;
    r.hi_open = hi_open;
  } else {
    r.hi = o.hi;
    r.hi_open = o.hi_open;
  }
  return r;
}

Interval Interval::Join(const Interval& o) const {
  if (IsEmpty()) return o;
  if (o.IsEmpty()) return *this;
  Interval r;
  if (lo < o.lo || (lo == o.lo && !lo_open)) {
    r.lo = lo;
    r.lo_open = lo_open;
  } else {
    r.lo = o.lo;
    r.lo_open = o.lo_open;
  }
  if (hi > o.hi || (hi == o.hi && !hi_open)) {
    r.hi = hi;
    r.hi_open = hi_open;
  } else {
    r.hi = o.hi;
    r.hi_open = o.hi_open;
  }
  return r;
}

bool Interval::Equals(const Interval& o) const {
  return lo == o.lo && hi == o.hi && lo_open == o.lo_open &&
         hi_open == o.hi_open;
}

bool Interval::AlwaysLess(const Interval& o) const {
  if (IsEmpty() || o.IsEmpty()) return true;
  return hi < o.lo || (hi == o.lo && (hi_open || o.lo_open));
}

bool Interval::AlwaysLessEq(const Interval& o) const {
  if (IsEmpty() || o.IsEmpty()) return true;
  return hi <= o.lo;
}

bool Interval::Disjoint(const Interval& o) const {
  return AlwaysLess(o) || o.AlwaysLess(*this);
}

std::string Interval::ToString() const {
  if (IsEmpty()) return "{}";
  if (IsPoint()) {
    std::ostringstream os;
    os << "{" << lo << "}";
    return os.str();
  }
  std::ostringstream os;
  os << (lo == -kInf || lo_open ? "(" : "[");
  if (lo == -kInf) {
    os << "-inf";
  } else {
    os << lo;
  }
  os << ", ";
  if (hi == kInf) {
    os << "+inf";
  } else {
    os << hi;
  }
  os << (hi == kInf || hi_open ? ")" : "]");
  return os.str();
}

Interval IntervalAdd(const Interval& a, const Interval& b) {
  if (a.IsEmpty() || b.IsEmpty()) return a.IsEmpty() ? a : b;
  return Interval::Range(a.lo + b.lo, a.hi + b.hi);
}

Interval IntervalSub(const Interval& a, const Interval& b) {
  if (a.IsEmpty() || b.IsEmpty()) return a.IsEmpty() ? a : b;
  return Interval::Range(a.lo - b.hi, a.hi - b.lo);
}

Interval IntervalMul(const Interval& a, const Interval& b) {
  if (a.IsEmpty() || b.IsEmpty()) return a.IsEmpty() ? a : b;
  const double c[] = {SafeMul(a.lo, b.lo), SafeMul(a.lo, b.hi),
                      SafeMul(a.hi, b.lo), SafeMul(a.hi, b.hi)};
  return Interval::Range(*std::min_element(c, c + 4),
                         *std::max_element(c, c + 4));
}

Interval IntervalDiv(const Interval& a, const Interval& b) {
  if (a.IsEmpty() || b.IsEmpty()) return a.IsEmpty() ? a : b;
  if (b.Contains(0.0)) return Interval::Top();
  const double c[] = {a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi};
  return Interval::Range(*std::min_element(c, c + 4),
                         *std::max_element(c, c + 4));
}

AbstractValue AbstractValue::Top() { return AbstractValue(); }

AbstractValue AbstractValue::OfType(TypeId t) {
  AbstractValue v;
  v.type = t;
  if (t == TypeId::kBool) v.range = Interval::Range(0, 1);
  if (t == TypeId::kImage || t == TypeId::kMatrix || t == TypeId::kList) {
    v.rows = Interval::AtLeast(0);
    v.cols = Interval::AtLeast(0);
  }
  if (t == TypeId::kList) v.length = Interval::AtLeast(0);
  return v;
}

AbstractValue AbstractValue::Constant(const Value& v) {
  AbstractValue av = OfType(v.type());
  av.maybe_null = v.is_null();
  switch (v.type()) {
    case TypeId::kBool: {
      auto b = v.AsBool();
      if (b.ok()) av.range = Interval::Point(*b ? 1 : 0);
      break;
    }
    case TypeId::kInt:
    case TypeId::kDouble: {
      auto d = v.AsDouble();
      if (d.ok()) {
        av.range = Interval::Point(*d);
        av.maybe_null = false;
      }
      break;
    }
    default:
      break;
  }
  return av;
}

AbstractValue AbstractValue::Bool(TriBool t) {
  AbstractValue v = OfType(TypeId::kBool);
  v.maybe_null = false;
  if (t == TriBool::kTrue) v.range = Interval::Point(1);
  if (t == TriBool::kFalse) v.range = Interval::Point(0);
  return v;
}

TriBool AbstractValue::AsTriBool() const {
  if (type != TypeId::kBool) return TriBool::kUnknown;
  if (range.IsPoint()) {
    return range.lo != 0.0 ? TriBool::kTrue : TriBool::kFalse;
  }
  return TriBool::kUnknown;
}

AbstractValue AbstractValue::Join(const AbstractValue& o) const {
  AbstractValue r;
  r.type = type == o.type ? type : TypeId::kNull;
  r.elem = elem == o.elem ? elem : TypeId::kNull;
  r.range = range.Join(o.range);
  r.rows = rows.Join(o.rows);
  r.cols = cols.Join(o.cols);
  r.length = length.Join(o.length);
  r.maybe_null = maybe_null || o.maybe_null;
  return r;
}

bool AbstractValue::Equals(const AbstractValue& o) const {
  return type == o.type && elem == o.elem && range.Equals(o.range) &&
         rows.Equals(o.rows) && cols.Equals(o.cols) &&
         length.Equals(o.length) && maybe_null == o.maybe_null;
}

std::string AbstractValue::ToString() const {
  std::ostringstream os;
  os << "AV(type=" << static_cast<int>(type) << " range=" << range.ToString();
  if (!rows.IsTop() || !cols.IsTop()) {
    os << " shape=" << rows.ToString() << "x" << cols.ToString();
  }
  if (!length.IsTop()) os << " len=" << length.ToString();
  os << ")";
  return os.str();
}

Status TransferRegistry::Register(const std::string& op, TransferFn fn) {
  if (fns_.count(op) != 0) {
    return Status::AlreadyExists("transfer function for '" + op + "'");
  }
  fns_[op] = std::move(fn);
  return Status::OK();
}

const TransferFn* TransferRegistry::Find(const std::string& op) const {
  auto it = fns_.find(op);
  return it == fns_.end() ? nullptr : &it->second;
}

TriBool CompareIntervals(const std::string& cmp, const Interval& a,
                         const Interval& b) {
  if (a.IsEmpty() || b.IsEmpty()) return TriBool::kUnknown;
  if (cmp == "lt") {
    if (a.AlwaysLess(b)) return TriBool::kTrue;
    if (b.AlwaysLessEq(a)) return TriBool::kFalse;
  } else if (cmp == "le") {
    if (a.AlwaysLessEq(b)) return TriBool::kTrue;
    if (b.AlwaysLess(a)) return TriBool::kFalse;
  } else if (cmp == "gt") {
    if (b.AlwaysLess(a)) return TriBool::kTrue;
    if (a.AlwaysLessEq(b)) return TriBool::kFalse;
  } else if (cmp == "ge") {
    if (b.AlwaysLessEq(a)) return TriBool::kTrue;
    if (a.AlwaysLess(b)) return TriBool::kFalse;
  } else if (cmp == "eq") {
    if (a.IsPoint() && b.IsPoint() && a.lo == b.lo) return TriBool::kTrue;
    if (a.Disjoint(b)) return TriBool::kFalse;
  } else if (cmp == "ne") {
    if (a.Disjoint(b)) return TriBool::kTrue;
    if (a.IsPoint() && b.IsPoint() && a.lo == b.lo) return TriBool::kFalse;
  }
  return TriBool::kUnknown;
}

namespace {

AbstractValue ImageResult(const Interval& range, const Interval& rows,
                          const Interval& cols) {
  AbstractValue v = AbstractValue::OfType(TypeId::kImage);
  v.range = range;
  v.rows = rows;
  v.cols = cols;
  v.maybe_null = false;
  return v;
}

AbstractValue ScalarResult(TypeId t, const Interval& range) {
  AbstractValue v = AbstractValue::OfType(t);
  v.range = range;
  v.maybe_null = false;
  return v;
}

const AbstractValue& Arg(const std::vector<AbstractValue>& args, size_t i) {
  static const AbstractValue kTop;
  return i < args.size() ? args[i] : kTop;
}

Status RegisterBuiltins(TransferRegistry* reg) {
  using Args = std::vector<AbstractValue>;
  // Scalar arithmetic.
  GAEA_RETURN_IF_ERROR(reg->Register("add", [](const Args& a) {
    return ScalarResult(TypeId::kDouble,
                        IntervalAdd(Arg(a, 0).range, Arg(a, 1).range));
  }));
  GAEA_RETURN_IF_ERROR(reg->Register("sub", [](const Args& a) {
    return ScalarResult(TypeId::kDouble,
                        IntervalSub(Arg(a, 0).range, Arg(a, 1).range));
  }));
  GAEA_RETURN_IF_ERROR(reg->Register("mul", [](const Args& a) {
    return ScalarResult(TypeId::kDouble,
                        IntervalMul(Arg(a, 0).range, Arg(a, 1).range));
  }));
  GAEA_RETURN_IF_ERROR(reg->Register("div", [](const Args& a) {
    return ScalarResult(TypeId::kDouble,
                        IntervalDiv(Arg(a, 0).range, Arg(a, 1).range));
  }));
  // Scalar comparisons.
  for (const char* cmp : {"lt", "le", "gt", "ge", "eq", "ne"}) {
    std::string name = cmp;
    GAEA_RETURN_IF_ERROR(reg->Register(name, [name](const Args& a) {
      return AbstractValue::Bool(
          CompareIntervals(name, Arg(a, 0).range, Arg(a, 1).range));
    }));
  }
  // Image accessors.
  GAEA_RETURN_IF_ERROR(reg->Register("img_nrow", [](const Args& a) {
    return ScalarResult(TypeId::kInt, Arg(a, 0).rows);
  }));
  GAEA_RETURN_IF_ERROR(reg->Register("img_ncol", [](const Args& a) {
    return ScalarResult(TypeId::kInt, Arg(a, 0).cols);
  }));
  GAEA_RETURN_IF_ERROR(reg->Register("img_mean", [](const Args& a) {
    return ScalarResult(TypeId::kDouble, Arg(a, 0).range);
  }));
  GAEA_RETURN_IF_ERROR(reg->Register("img_size_eq", [](const Args& a) {
    const AbstractValue& x = Arg(a, 0);
    const AbstractValue& y = Arg(a, 1);
    if (x.rows.Disjoint(y.rows) || x.cols.Disjoint(y.cols)) {
      return AbstractValue::Bool(TriBool::kFalse);
    }
    if (x.rows.IsPoint() && y.rows.IsPoint() && x.rows.lo == y.rows.lo &&
        x.cols.IsPoint() && y.cols.IsPoint() && x.cols.lo == y.cols.lo) {
      return AbstractValue::Bool(TriBool::kTrue);
    }
    return AbstractValue::Bool(TriBool::kUnknown);
  }));
  // Pixel-wise image math: shapes must agree, so the output shape is the
  // intersection of the operand shapes.
  GAEA_RETURN_IF_ERROR(reg->Register("img_add", [](const Args& a) {
    return ImageResult(IntervalAdd(Arg(a, 0).range, Arg(a, 1).range),
                       Arg(a, 0).rows.Intersect(Arg(a, 1).rows),
                       Arg(a, 0).cols.Intersect(Arg(a, 1).cols));
  }));
  GAEA_RETURN_IF_ERROR(reg->Register("img_sub", [](const Args& a) {
    return ImageResult(IntervalSub(Arg(a, 0).range, Arg(a, 1).range),
                       Arg(a, 0).rows.Intersect(Arg(a, 1).rows),
                       Arg(a, 0).cols.Intersect(Arg(a, 1).cols));
  }));
  GAEA_RETURN_IF_ERROR(reg->Register("img_mul", [](const Args& a) {
    return ImageResult(IntervalMul(Arg(a, 0).range, Arg(a, 1).range),
                       Arg(a, 0).rows.Intersect(Arg(a, 1).rows),
                       Arg(a, 0).cols.Intersect(Arg(a, 1).cols));
  }));
  GAEA_RETURN_IF_ERROR(reg->Register("img_div", [](const Args& a) {
    // ImgDivide maps 0-denominator pixels to 0, so the range is unbounded
    // but the shape logic still applies.
    return ImageResult(Interval::Top(),
                       Arg(a, 0).rows.Intersect(Arg(a, 1).rows),
                       Arg(a, 0).cols.Intersect(Arg(a, 1).cols));
  }));
  GAEA_RETURN_IF_ERROR(reg->Register("ndvi", [](const Args& a) {
    return ImageResult(Interval::Range(-1, 1),
                       Arg(a, 0).rows.Intersect(Arg(a, 1).rows),
                       Arg(a, 0).cols.Intersect(Arg(a, 1).cols));
  }));
  GAEA_RETURN_IF_ERROR(reg->Register("img_scale", [](const Args& a) {
    return ImageResult(IntervalMul(Arg(a, 0).range, Arg(a, 1).range),
                       Arg(a, 0).rows, Arg(a, 0).cols);
  }));
  GAEA_RETURN_IF_ERROR(reg->Register("img_threshold", [](const Args& a) {
    return ImageResult(Interval::Range(0, 1), Arg(a, 0).rows, Arg(a, 0).cols);
  }));
  GAEA_RETURN_IF_ERROR(reg->Register("img_blend", [](const Args& a) {
    Interval unit = Interval::Range(0, 1);
    Interval range = Interval::Top();
    const Interval& w = Arg(a, 2).range;
    if (!w.IsTop() && unit.Intersect(w).Equals(w)) {
      range = Arg(a, 0).range.Join(Arg(a, 1).range);
    }
    return ImageResult(range, Arg(a, 0).rows.Intersect(Arg(a, 1).rows),
                       Arg(a, 0).cols.Intersect(Arg(a, 1).cols));
  }));
  // Classification / analysis operators.
  GAEA_RETURN_IF_ERROR(reg->Register("composite", [](const Args& a) {
    AbstractValue v = Arg(a, 0);
    v.type = TypeId::kList;
    v.elem = TypeId::kImage;
    return v;
  }));
  GAEA_RETURN_IF_ERROR(reg->Register("unsuperclassify", [](const Args& a) {
    const Interval& k = Arg(a, 1).range;
    Interval labels = k.IsPoint() ? Interval::Range(0, k.lo - 1)
                                  : Interval::AtLeast(0);
    return ImageResult(labels, Arg(a, 0).rows, Arg(a, 0).cols);
  }));
  GAEA_RETURN_IF_ERROR(reg->Register("maxlike", [](const Args& a) {
    return ImageResult(Interval::AtLeast(0), Arg(a, 0).rows, Arg(a, 0).cols);
  }));
  GAEA_RETURN_IF_ERROR(reg->Register("changemap", [](const Args& a) {
    const Interval& k = Arg(a, 2).range;
    Interval labels = k.IsPoint() ? Interval::Range(0, k.lo * k.lo - 1)
                                  : Interval::AtLeast(0);
    return ImageResult(labels, Arg(a, 0).rows.Intersect(Arg(a, 1).rows),
                       Arg(a, 0).cols.Intersect(Arg(a, 1).cols));
  }));
  GAEA_RETURN_IF_ERROR(reg->Register("watershed", [](const Args& a) {
    return ImageResult(Interval::AtLeast(0), Arg(a, 0).rows, Arg(a, 0).cols);
  }));
  for (const char* name : {"pca", "spca"}) {
    GAEA_RETURN_IF_ERROR(reg->Register(name, [](const Args& a) {
      AbstractValue v = AbstractValue::OfType(TypeId::kList);
      v.elem = TypeId::kImage;
      v.rows = Arg(a, 0).rows;
      v.cols = Arg(a, 0).cols;
      const Interval& n = Arg(a, 1).range;
      if (n.IsPoint()) v.length = n;
      v.maybe_null = false;
      return v;
    }));
  }
  // Figure 4 matrix pipeline. Matrix rows/cols: convert_image_matrix stacks
  // each band's pixels into a column, so rows = nrow*ncol, cols = #bands.
  GAEA_RETURN_IF_ERROR(reg->Register("convert_image_matrix", [](const Args& a) {
    AbstractValue v = AbstractValue::OfType(TypeId::kMatrix);
    v.rows = IntervalMul(Arg(a, 0).rows, Arg(a, 0).cols);
    v.cols = Arg(a, 0).length;
    v.maybe_null = false;
    return v;
  }));
  GAEA_RETURN_IF_ERROR(reg->Register("compute_covariance", [](const Args& a) {
    AbstractValue v = AbstractValue::OfType(TypeId::kMatrix);
    v.rows = Arg(a, 0).cols;
    v.cols = Arg(a, 0).cols;
    v.maybe_null = false;
    return v;
  }));
  GAEA_RETURN_IF_ERROR(reg->Register("get_eigen_vector", [](const Args& a) {
    AbstractValue v = AbstractValue::OfType(TypeId::kMatrix);
    v.rows = Arg(a, 0).rows;
    v.cols = Arg(a, 0).cols;
    v.maybe_null = false;
    return v;
  }));
  GAEA_RETURN_IF_ERROR(reg->Register("linear_combination", [](const Args& a) {
    AbstractValue v = AbstractValue::OfType(TypeId::kMatrix);
    v.rows = Arg(a, 0).rows;
    v.cols = Arg(a, 1).cols;
    v.maybe_null = false;
    return v;
  }));
  GAEA_RETURN_IF_ERROR(reg->Register("convert_matrix_image", [](const Args& a) {
    AbstractValue v = AbstractValue::OfType(TypeId::kList);
    v.elem = TypeId::kImage;
    v.rows = Arg(a, 1).range;
    v.cols = Arg(a, 2).range;
    v.length = Arg(a, 0).cols;
    v.maybe_null = false;
    return v;
  }));
  GAEA_RETURN_IF_ERROR(reg->Register("time_diff", [](const Args& a) {
    (void)a;
    return AbstractValue::OfType(TypeId::kInt);
  }));
  return Status::OK();
}

}  // namespace

const TransferRegistry& BuiltinTransferFunctions() {
  static const TransferRegistry* kRegistry = [] {
    auto* reg = new TransferRegistry();
    Status s = RegisterBuiltins(reg);
    (void)s;  // registration of a fixed table cannot fail
    return reg;
  }();
  return *kRegistry;
}

}  // namespace gaea
