#include "analysis/analysis_cache.h"

#include "analysis/analyzer.h"
#include "analysis/cost.h"
#include "analysis/dataflow.h"

namespace gaea {

const std::vector<Diagnostic>& AnalysisCache::Analyze(
    uint64_t catalog_version, const ClassRegistry& classes,
    const ProcessRegistry& processes, const OperatorRegistry& ops,
    const std::set<std::string>* concept_covered) {
  if (valid_ && catalog_version == analyzed_version_) {
    ++stats_.cached_runs;
    return cached_;
  }
  ++stats_.full_runs;
  if (classes.size() != last_class_count_) {
    // New classes can resolve previously-missing references (GA001/GA002),
    // so cached per-process results are stale.
    process_cache_.clear();
    last_class_count_ = classes.size();
  }
  std::vector<Diagnostic> diags;
  for (const ProcessDef* def : processes.ListLatest()) {
    std::string key = def->name() + "#" + std::to_string(def->version());
    auto it = process_cache_.find(key);
    if (it == process_cache_.end()) {
      ++stats_.process_analyses;
      std::vector<Diagnostic> local;
      AnalyzeProcess(*def, classes, ops, &local);
      AnalyzeProcessCost(*def, &local);
      it = process_cache_.emplace(key, std::move(local)).first;
    } else {
      ++stats_.process_cache_hits;
    }
    diags.insert(diags.end(), it->second.begin(), it->second.end());
  }
  AnalyzeCatalogGraph(classes, processes, &diags);
  AnalyzePetriNet(classes, processes, &diags);
  AnalyzeDataflow(classes, processes, ops, &diags);
  AnalyzeCatalogCost(classes, processes, concept_covered, &diags);
  NormalizeDiagnostics(&diags);
  cached_ = std::move(diags);
  analyzed_version_ = catalog_version;
  valid_ = true;
  return cached_;
}

}  // namespace gaea
