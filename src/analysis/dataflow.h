// GA4xx interprocedural dataflow analysis (docs/ANALYSIS.md).
//
// Mapping expressions are abstractly interpreted over the interval/shape
// domains of analysis/abstract_value.h. Facts flow *through* the derivation
// graph: every derived class gets a per-attribute summary computed from the
// mappings of the processes producing it (with that process's assertions
// assumed to hold), and those summaries feed the analysis of downstream
// processes. A bounded fixpoint (derivation cycles exist — GA203) makes the
// summaries stable before any checking happens.
//
// Checks, all conservative (they only fire on provable facts):
//   GA401  image operand shapes provably mismatched (e.g. an 8x8 product
//          fed to img_add together with a 16x16 one, across processes)
//   GA402  divisor interval contains zero (possible division by zero)
//   GA403  divisor provably zero — the mapping can never evaluate
//   GA404  threshold provably outside the input's value range (e.g.
//          img_threshold at 5.0 on an ndvi output, which lives in [-1, 1])
//   GA405  assertion entailed by prior assertions + upstream summaries
//          (vacuous). The declared MIN is deliberately *excluded* from the
//          entailment environment so the idiomatic restating assertion
//          `card(bands) >= MIN` stays clean.
//   GA406  assertion contradicted by the same facts — it can never hold
//
// Constant-only assertions are GA301/GA304's domain (assertion_lint) and
// are skipped here.

#ifndef GAEA_ANALYSIS_DATAFLOW_H_
#define GAEA_ANALYSIS_DATAFLOW_H_

#include <map>
#include <string>
#include <vector>

#include "analysis/abstract_value.h"
#include "analysis/diagnostic.h"
#include "catalog/class_def.h"
#include "core/process.h"
#include "core/process_registry.h"
#include "types/op_registry.h"

namespace gaea {

// class name -> attribute name -> abstract value.
using ClassSummaries =
    std::map<std::string, std::map<std::string, AbstractValue>>;

// Computes per-class attribute summaries by iterating the derivation graph
// to a bounded fixpoint. Base classes stay at "top of the attribute type";
// derived classes get the join over all producing processes' abstract
// mapping results.
ClassSummaries ComputeClassSummaries(const ClassRegistry& classes,
                                     const ProcessRegistry& processes,
                                     const OperatorRegistry& ops);

// Runs the GA401-GA406 checks on one process, reading upstream facts from
// `summaries`. Skips processes that do not type-check (GA0xx territory).
void AnalyzeProcessDataflow(const ProcessDef& def, const ClassRegistry& classes,
                            const OperatorRegistry& ops,
                            const ClassSummaries& summaries,
                            std::vector<Diagnostic>* out);

// Whole-catalog pass: summaries + AnalyzeProcessDataflow on the latest
// version of every process.
void AnalyzeDataflow(const ClassRegistry& classes,
                     const ProcessRegistry& processes,
                     const OperatorRegistry& ops,
                     std::vector<Diagnostic>* out);

}  // namespace gaea

#endif  // GAEA_ANALYSIS_DATAFLOW_H_
