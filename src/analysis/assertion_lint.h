// Assertion lint (pass 4 of the static analyzer, codes GA301/GA302/GA304).
//
// TEMPLATE assertions are the guard rules of the derivation Petri net: a
// process whose assertions can never hold is a transition that can never
// fire, no matter what data arrives. Two techniques:
//
//   * constant folding — parameters are compile-time constants ("the same
//     derivation method with different parameters represents different
//     processes"), so any assertion over literals and $params alone folds to
//     a boolean: false => GA301 (error), true => GA304 (vacuous, warning);
//   * cardinality intervals — the conjunction of every `card(arg) <op> k`
//     constraint, seeded with the argument's declared MIN, is intersected
//     into one integer interval per argument; an empty interval (e.g.
//     card(x) = 3 and card(x) = 4) is unsatisfiable => GA302 (error).

#ifndef GAEA_ANALYSIS_ASSERTION_LINT_H_
#define GAEA_ANALYSIS_ASSERTION_LINT_H_

#include <optional>
#include <vector>

#include "analysis/diagnostic.h"
#include "core/expr.h"
#include "core/process.h"

namespace gaea {

// Folds an expression to a constant when it depends only on literals,
// process parameters, and operators over those. Returns nullopt when the
// expression references runtime data (arguments) or folding fails.
std::optional<Value> FoldConstant(const Expr& expr,
                                  const std::map<std::string, Value>& params,
                                  const OperatorRegistry& ops);

// Lints `def`'s assertions; `ctx` is the type context AnalyzeProcess built
// (used for the operator registry and parameter values).
void LintAssertions(const ProcessDef& def, const TypeContext& ctx,
                    std::vector<Diagnostic>* out);

}  // namespace gaea

#endif  // GAEA_ANALYSIS_ASSERTION_LINT_H_
