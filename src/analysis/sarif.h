// Machine-readable renderings of analyzer diagnostics.
//
// DiagnosticsToJson emits a small stable JSON shape consumed by gaea_shell's
// `lint --json` and scripts; DiagnosticsToSarif emits SARIF 2.1.0 (the
// static-analysis interchange format GitHub code scanning ingests), with one
// reportingDescriptor per distinct code and one result per finding.

#ifndef GAEA_ANALYSIS_SARIF_H_
#define GAEA_ANALYSIS_SARIF_H_

#include <string>
#include <vector>

#include "analysis/diagnostic.h"

namespace gaea {

// {"diagnostics":[{"code":...,"severity":...,"file":...,"line":...,
//   "location":...,"message":...}, ...]}
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diags);

// SARIF 2.1.0 log with a single run of the "gaea-lint" driver.
std::string DiagnosticsToSarif(const std::vector<Diagnostic>& diags);

}  // namespace gaea

#endif  // GAEA_ANALYSIS_SARIF_H_
