#include "analysis/sarif.h"

#include <cstdio>
#include <set>
#include <sstream>

namespace gaea {

namespace {

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* SarifLevel(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

}  // namespace

std::string DiagnosticsToJson(const std::vector<Diagnostic>& diags) {
  std::ostringstream os;
  os << "{\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic& d : diags) {
    if (!first) os << ",";
    first = false;
    os << "{\"code\":\"" << JsonEscape(d.code) << "\""
       << ",\"severity\":\"" << SeverityName(d.severity) << "\""
       << ",\"file\":\"" << JsonEscape(d.file) << "\""
       << ",\"line\":" << d.line << ",\"location\":\""
       << JsonEscape(d.location) << "\",\"message\":\""
       << JsonEscape(d.message) << "\"}";
  }
  os << "]}";
  return os.str();
}

std::string DiagnosticsToSarif(const std::vector<Diagnostic>& diags) {
  // Rules: one reportingDescriptor per distinct code seen, in table order.
  std::set<std::string> used;
  for (const Diagnostic& d : diags) used.insert(d.code);
  std::ostringstream os;
  os << "{\"version\":\"2.1.0\",\"$schema\":"
        "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
        "Schemata/sarif-schema-2.1.0.json\",\"runs\":[{\"tool\":{\"driver\":"
        "{\"name\":\"gaea-lint\",\"informationUri\":"
        "\"https://example.invalid/gaea/docs/ANALYSIS.md\",\"rules\":[";
  bool first = true;
  for (const DiagnosticCodeInfo& info : AllDiagnosticCodes()) {
    if (used.count(info.code) == 0) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"id\":\"" << info.code << "\",\"shortDescription\":{\"text\":\""
       << JsonEscape(info.summary) << "\"},\"defaultConfiguration\":"
       << "{\"level\":\"" << SarifLevel(info.severity) << "\"},"
       << "\"properties\":{\"family\":\"" << info.family << "\"}}";
  }
  os << "]}},\"results\":[";
  first = true;
  for (const Diagnostic& d : diags) {
    if (!first) os << ",";
    first = false;
    std::string text = d.message;
    if (!d.location.empty()) text = d.location + ": " + text;
    os << "{\"ruleId\":\"" << JsonEscape(d.code) << "\",\"level\":\""
       << SarifLevel(d.severity) << "\",\"message\":{\"text\":\""
       << JsonEscape(text) << "\"}";
    if (!d.file.empty()) {
      os << ",\"locations\":[{\"physicalLocation\":{\"artifactLocation\":"
         << "{\"uri\":\"" << JsonEscape(d.file) << "\"}";
      if (d.line > 0) {
        os << ",\"region\":{\"startLine\":" << d.line << "}";
      }
      os << "}}]";
    }
    os << "}";
  }
  os << "]}]}";
  return os.str();
}

}  // namespace gaea
