#include "analysis/cost.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace gaea {

namespace {

// An operator at or above this cost counts as "expensive" for GA501/GA504.
constexpr double kHeavyCost = 8;
// GA501 fires when at least this many expensive *serial* operators chain...
constexpr int kSerialChainMin = 4;
// ...and the work/span speedup bound is below this.
constexpr double kSpeedupBoundMax = 1.5;
// Row-band-tiled operators (src/core/tile_pool.h) divide their span
// contribution by the assumed tile fan-out. Matches the >= 3x measured by
// bench_parallel_derivation's cpu_bound workload at 4 threads.
constexpr double kTileSpanFactor = 4;

struct ExprCost {
  double work = 0;
  double span = 0;
  std::vector<std::string> path;  // leaf-first operator names
};

ExprCost EstimateExpr(const Expr& e) {
  ExprCost best_child;
  double children_work = 0;
  for (const ExprPtr& c : e.children()) {
    ExprCost child = EstimateExpr(*c);
    children_work += child.work;
    if (child.span > best_child.span) best_child = std::move(child);
  }
  double cost = e.kind() == Expr::Kind::kOpCall ? OperatorCost(e.name()) : 0;
  // Work counts the full cost; span only the serial share — a tileable
  // operator's rows execute concurrently on the TilePool.
  double span_cost = cost;
  if (cost > 0 && OperatorTileable(e.name())) span_cost = cost / kTileSpanFactor;
  ExprCost out;
  out.work = children_work + cost;
  out.span = best_child.span + span_cost;
  out.path = std::move(best_child.path);
  if (e.kind() == Expr::Kind::kOpCall) out.path.push_back(e.name());
  return out;
}

std::string JoinPath(const std::vector<std::string>& path) {
  std::string out;
  for (const std::string& op : path) {
    if (!out.empty()) out += " -> ";
    out += op;
  }
  return out;
}

void CollectParamRefs(const Expr& e, std::set<std::string>* out) {
  if (e.kind() == Expr::Kind::kParam) out->insert(e.name());
  for (const ExprPtr& c : e.children()) CollectParamRefs(*c, out);
}

// Fingerprints every op-call subtree (by source rendering, which is a
// faithful structural key) together with its tree-evaluation work.
void CollectSubtrees(const Expr& e,
                     std::map<std::string, std::pair<int, double>>* out) {
  if (e.kind() == Expr::Kind::kOpCall) {
    auto& entry = (*out)[e.ToString()];
    entry.first += 1;
    entry.second = EstimateExpr(e).work;
  }
  for (const ExprPtr& c : e.children()) CollectSubtrees(*c, out);
}

std::string FormatBound(double bound) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", bound);
  return buf;
}

}  // namespace

double OperatorCost(const std::string& op) {
  // Scalar arithmetic / comparisons and extent predicates.
  static const std::set<std::string> kCheap = {
      "add", "sub", "mul", "div", "lt", "le", "gt", "ge", "eq", "ne",
      "box_overlaps", "box_union", "box_intersect", "box_area", "time_diff"};
  // Whole-image accessors and pixel-wise or per-pixel classification ops.
  static const std::set<std::string> kImage = {
      "img_nrow", "img_ncol", "img_type", "img_size_eq", "img_mean",
      "img_add", "img_sub", "img_mul", "img_div", "ndvi", "img_scale",
      "img_threshold", "img_blend", "composite", "unsuperclassify",
      "maxlike", "changemap"};
  // Matrix-shaped stages (Figure 4) and iterative segmentation.
  static const std::set<std::string> kHeavy = {
      "convert_image_matrix", "compute_covariance", "get_eigen_vector",
      "linear_combination", "convert_matrix_image", "pca", "spca",
      "watershed"};
  if (kCheap.count(op) != 0) return 1;
  if (kImage.count(op) != 0) return 4;
  if (kHeavy.count(op) != 0) return kHeavyCost;
  return 2;  // unknown operator: assume moderate
}

bool OperatorTileable(const std::string& op) {
  // Operators whose kernels run as row-band tiles on the TilePool
  // (src/raster/): pixel-wise arithmetic, classification, and the matrix
  // stages of Figure 4. pca/spca count as tileable because their cost is
  // dominated by the tiled conversion/covariance/combination stages; the
  // eigen solve runs on a tiny nbands x nbands matrix. watershed and
  // get_eigen_vector stay serial (level-ordered flood fill / Jacobi sweeps).
  static const std::set<std::string> kTileable = {
      "img_add", "img_sub", "img_mul", "img_div", "ndvi", "img_scale",
      "img_threshold", "img_blend", "composite", "unsuperclassify",
      "maxlike", "changemap", "convert_image_matrix", "compute_covariance",
      "linear_combination", "convert_matrix_image", "pca", "spca"};
  return kTileable.count(op) != 0;
}

CostEstimate EstimateProcessCost(const ProcessDef& def) {
  CostEstimate out;
  for (const ProcessMapping& m : def.mappings()) {
    ExprCost c = EstimateExpr(*m.expr);
    out.work += c.work;
    if (c.span > out.span) {
      out.span = c.span;
      out.critical_path = std::move(c.path);
    }
  }
  return out;
}

void AnalyzeProcessCost(const ProcessDef& def, std::vector<Diagnostic>* out) {
  const std::string proc_loc = "process " + def.name();
  // GA501: serial critical path.
  CostEstimate cost = EstimateProcessCost(def);
  if (cost.span > 0) {
    // Only genuinely serial expensive operators count toward the chain:
    // a tileable stage spreads over the TilePool and no longer gates the
    // derivation.
    int heavy_on_path = 0;
    for (const std::string& op : cost.critical_path) {
      if (OperatorCost(op) >= kHeavyCost && !OperatorTileable(op)) {
        ++heavy_on_path;
      }
    }
    double bound = cost.work / cost.span;
    if (heavy_on_path >= kSerialChainMin && bound < kSpeedupBoundMax) {
      Emit(out, "GA501", proc_loc,
           "serial critical path " + JoinPath(cost.critical_path) +
               " accounts for " + FormatBound(cost.span) + " of " +
               FormatBound(cost.work) +
               " work units; parallel speedup is bounded by " +
               FormatBound(bound) + "x");
    }
  }
  // GA503: unused parameters fragment the DerivationCache key space.
  if (!def.params().empty()) {
    std::set<std::string> used;
    for (const ExprPtr& a : def.assertions()) CollectParamRefs(*a, &used);
    for (const ProcessMapping& m : def.mappings()) {
      CollectParamRefs(*m.expr, &used);
    }
    for (const auto& [name, value] : def.params()) {
      if (used.count(name) == 0) {
        Emit(out, "GA503", proc_loc,
             "parameter '" + name +
                 "' is never referenced; it still keys the DerivationCache, "
                 "so versions differing only in it never share entries");
      }
    }
  }
  // GA504: repeated expensive subexpressions.
  std::map<std::string, std::pair<int, double>> subtrees;
  for (const ExprPtr& a : def.assertions()) CollectSubtrees(*a, &subtrees);
  for (const ProcessMapping& m : def.mappings()) {
    CollectSubtrees(*m.expr, &subtrees);
  }
  std::vector<std::pair<std::string, std::pair<int, double>>> repeated;
  for (const auto& entry : subtrees) {
    if (entry.second.first >= 2 && entry.second.second >= kHeavyCost) {
      repeated.push_back(entry);
    }
  }
  // Report only maximal repeats: a duplicated subtree of a duplicated tree
  // renders as a substring of it.
  std::sort(repeated.begin(), repeated.end(),
            [](const auto& a, const auto& b) {
              return a.second.second > b.second.second;
            });
  std::vector<std::string> reported;
  for (const auto& [text, stats] : repeated) {
    bool nested = false;
    for (const std::string& outer : reported) {
      if (outer.find(text) != std::string::npos) nested = true;
    }
    if (nested) continue;
    reported.push_back(text);
    Emit(out, "GA504", proc_loc,
         "expensive subexpression '" + text + "' appears " +
             std::to_string(stats.first) +
             " times; tree evaluation recomputes it on every occurrence");
  }
}

void AnalyzeCatalogCost(const ClassRegistry& classes,
                        const ProcessRegistry& processes,
                        const std::set<std::string>* concept_covered,
                        std::vector<Diagnostic>* out) {
  if (concept_covered == nullptr) return;
  std::set<std::string> consumed;
  for (const ProcessDef* def : processes.ListLatest()) {
    for (const ProcessArg& arg : def->args()) consumed.insert(arg.class_name);
  }
  for (const ProcessDef* def : processes.ListLatest()) {
    auto cls = classes.LookupByName(def->output_class());
    if (!cls.ok() || (*cls)->kind() != ClassKind::kDerived) continue;
    if (consumed.count(def->output_class()) != 0) continue;
    if (concept_covered->count(def->output_class()) != 0) continue;
    Emit(out, "GA502", "process " + def->name(),
         "derived class '" + def->output_class() +
             "' is consumed by no process and covered by no concept; the "
             "derivation is a dead end");
  }
}

void AnalyzeCompoundCost(const CompoundProcessDef& def,
                         std::vector<Diagnostic>* out) {
  const std::vector<CompoundStage>& stages = def.stages();
  if (stages.size() < 3) return;
  // Build stage precedence degrees from stage-to-stage bindings.
  std::map<std::string, int> in_degree;
  std::map<std::string, std::set<std::string>> successors;
  for (const CompoundStage& stage : stages) in_degree[stage.name] = 0;
  for (const CompoundStage& stage : stages) {
    for (const auto& [binding, input] : stage.bindings) {
      if (input.source != StageInput::Source::kStage) continue;
      if (successors[input.name].insert(stage.name).second) {
        ++in_degree[stage.name];
      }
    }
  }
  // A pure serial chain: every stage has at most one predecessor and one
  // successor, exactly one root, and the chain covers every stage.
  int roots = 0;
  for (const CompoundStage& stage : stages) {
    if (in_degree[stage.name] == 0) ++roots;
    if (in_degree[stage.name] > 1 || successors[stage.name].size() > 1) {
      return;
    }
  }
  if (roots != 1) return;
  Emit(out, "GA505", "compound " + def.name(),
       "stage network of " + std::to_string(stages.size()) +
           " stages is a pure serial chain; no two stages can ever run in "
           "parallel");
}

}  // namespace gaea
