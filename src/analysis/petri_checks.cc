// Petri-net structural analysis (pass 3 of the static analyzer, GA2xx).
//
// The derivation net of paper §2.1.6 is non-consuming: firing never removes
// tokens, so markings grow monotonically and "can this transition ever
// fire?" is decidable by a saturation fixpoint under the optimistic
// assumption of unlimited base data. On top of that:
//
//   * GA201 — a transition no firing sequence can ever enable (one of its
//     input places can never reach the required threshold);
//   * GA202 — a dead place: a class declared DERIVED whose place can never
//     receive a token (no producer, or only unreachable producers);
//   * GA203 — a derivation cycle (a class transitively derives itself):
//     legal — interpolation is C -> C — but each trip around the cycle adds
//     tokens forever, so the net is unbounded there and plans must rely on
//     the planner's cycle guard.

#include <map>
#include <set>
#include <vector>

#include "analysis/analyzer.h"
#include "core/petri.h"

namespace gaea {

void AnalyzePetriNet(const ClassRegistry& classes,
                     const ProcessRegistry& processes,
                     std::vector<Diagnostic>* out) {
  // Exclude processes whose classes do not resolve — those are GA001/GA002
  // findings, and DerivationNet::Build would refuse the whole net.
  ProcessRegistry usable;
  for (const ProcessDef* def : processes.ListLatest()) {
    bool resolvable = classes.Contains(def->output_class());
    for (const ProcessArg& arg : def->args()) {
      resolvable = resolvable && classes.Contains(arg.class_name);
    }
    if (resolvable) {
      // Registration renumbers versions; analysis only needs structure.
      (void)usable.Register(*def);
    }
  }
  auto net_or = DerivationNet::Build(classes, usable);
  if (!net_or.ok()) return;  // defensive; usable was filtered to resolve
  const DerivationNet& net = *net_or;

  auto class_name = [&classes](ClassId id) {
    auto def = classes.LookupById(id);
    return def.ok() ? (*def)->name() : std::to_string(id);
  };

  // Producers per place and the largest threshold any consumer demands.
  std::map<ClassId, std::vector<const DerivationNet::Transition*>> producers;
  std::map<ClassId, int64_t> need;
  for (const DerivationNet::Transition& t : net.transitions()) {
    producers[t.output].push_back(&t);
    for (const auto& [class_id, threshold] : t.inputs) {
      int64_t& n = need[class_id];
      n = std::max<int64_t>(n, threshold);
    }
  }

  // Optimistic marking: unlimited tokens on every place whose class is
  // *declared* base data, zero elsewhere; saturate to fixpoint. Declared
  // kind, not "has no producer", is the seed: a derived class without a
  // producing transition must stay empty — that is the dead-place defect,
  // not a token source.
  constexpr int64_t kPlenty = int64_t{1} << 40;
  DerivationNet::Marking marking;
  for (ClassId place : net.places()) {
    auto def = classes.LookupById(place);
    if (def.ok() && (*def)->kind() == ClassKind::kBase) {
      marking[place] = kPlenty;
    }
  }
  std::vector<bool> fireable(net.transitions().size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < net.transitions().size(); ++i) {
      if (fireable[i]) continue;
      const DerivationNet::Transition& t = net.transitions()[i];
      if (DerivationNet::Enabled(t, marking)) {
        fireable[i] = true;
        // Non-consuming: a fireable transition can fire repeatedly, so its
        // output saturates at the largest threshold any consumer needs.
        auto need_it = need.find(t.output);
        int64_t target =
            std::max<int64_t>(1, need_it == need.end() ? 0 : need_it->second);
        int64_t& tokens = marking[t.output];
        tokens = std::max(tokens, target);
        changed = true;
      }
    }
  }

  for (size_t i = 0; i < net.transitions().size(); ++i) {
    if (fireable[i]) continue;
    const DerivationNet::Transition& t = net.transitions()[i];
    // Name the first starved input for the message.
    std::string starved;
    for (const auto& [class_id, threshold] : t.inputs) {
      auto it = marking.find(class_id);
      int64_t tokens = it == marking.end() ? 0 : it->second;
      if (tokens < threshold) {
        starved = "input class '" + class_name(class_id) +
                  "' can never hold " + std::to_string(threshold) +
                  " object(s)";
        break;
      }
    }
    Emit(out, "GA201", "process " + t.process_name,
         "transition can never fire, even with unlimited base data: " +
             starved);
  }

  for (ClassId place : net.places()) {
    auto def = classes.LookupById(place);
    if (!def.ok() || (*def)->kind() != ClassKind::kDerived) continue;
    auto it = marking.find(place);
    if (it == marking.end() || it->second == 0) {
      Emit(out, "GA202", "class " + (*def)->name(),
           "dead place: no reachable process ever produces an object of "
           "this derived class");
    }
  }

  // Derivation cycles: class-level edges input -> output per transition;
  // a process is on a cycle when its output reaches one of its inputs.
  std::map<ClassId, std::set<ClassId>> edges;
  for (const DerivationNet::Transition& t : net.transitions()) {
    for (const auto& [class_id, threshold] : t.inputs) {
      edges[class_id].insert(t.output);
    }
  }
  auto reaches = [&edges](ClassId from, ClassId to) {
    std::set<ClassId> seen;
    std::vector<ClassId> stack{from};
    while (!stack.empty()) {
      ClassId cur = stack.back();
      stack.pop_back();
      if (cur == to) return true;
      if (!seen.insert(cur).second) continue;
      auto it = edges.find(cur);
      if (it == edges.end()) continue;
      stack.insert(stack.end(), it->second.begin(), it->second.end());
    }
    return false;
  };
  for (const DerivationNet::Transition& t : net.transitions()) {
    for (const auto& [class_id, threshold] : t.inputs) {
      if (reaches(t.output, class_id)) {
        Emit(out, "GA203", "process " + t.process_name,
             "derivation cycle through class '" + class_name(class_id) +
                 "': token counts can grow without bound (plans rely on "
                 "the planner's cycle guard)");
        break;  // one finding per transition
      }
    }
  }
}

}  // namespace gaea
