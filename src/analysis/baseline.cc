#include "analysis/baseline.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace gaea {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

std::vector<BaselineEntry> ParseBaseline(const std::string& text) {
  std::vector<BaselineEntry> entries;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    line = Trim(line);
    if (line.empty() || line[0] == '#') continue;
    BaselineEntry entry;
    size_t space = line.find_first_of(" \t");
    if (space == std::string::npos) {
      entry.code = line;
      entry.pattern = "*";
    } else {
      entry.code = line.substr(0, space);
      entry.pattern = Trim(line.substr(space + 1));
      if (entry.pattern.empty()) entry.pattern = "*";
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

StatusOr<std::vector<BaselineEntry>> LoadBaselineFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return Status::NotFound("cannot read baseline file '" + path + "'");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseBaseline(buffer.str());
}

bool BaselineMatches(const BaselineEntry& entry, const Diagnostic& diag) {
  if (entry.code != "*" && entry.code != diag.code) return false;
  if (entry.pattern == "*") return true;
  return diag.file.find(entry.pattern) != std::string::npos ||
         diag.location.find(entry.pattern) != std::string::npos;
}

size_t ApplyBaseline(const std::vector<BaselineEntry>& baseline,
                     std::vector<Diagnostic>* diags) {
  size_t before = diags->size();
  diags->erase(std::remove_if(diags->begin(), diags->end(),
                              [&baseline](const Diagnostic& d) {
                                for (const BaselineEntry& entry : baseline) {
                                  if (BaselineMatches(entry, d)) return true;
                                }
                                return false;
                              }),
               diags->end());
  return before - diags->size();
}

}  // namespace gaea
