// Baseline suppression files for gaea_lint.
//
// A baseline lets CI lint a tree with known findings (e.g. the deliberately
// broken fixtures under tests/fixtures/) without going red, while still
// catching anything new. Format: one suppression per line,
//
//   # comment
//   GA202 bad_schema.ddl      suppress GA202 anywhere matching the pattern
//   *     bad_dataflow.ddl    suppress every code matching the pattern
//
// The pattern matches as a substring of the diagnostic's file or location;
// "*" matches everything.

#ifndef GAEA_ANALYSIS_BASELINE_H_
#define GAEA_ANALYSIS_BASELINE_H_

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "util/status.h"

namespace gaea {

struct BaselineEntry {
  std::string code;     // diagnostic code, or "*"
  std::string pattern;  // substring of file/location, or "*"
};

// Parses baseline text; blank lines and '#' comments are skipped.
std::vector<BaselineEntry> ParseBaseline(const std::string& text);

StatusOr<std::vector<BaselineEntry>> LoadBaselineFile(const std::string& path);

bool BaselineMatches(const BaselineEntry& entry, const Diagnostic& diag);

// Removes suppressed diagnostics in place; returns how many were removed.
size_t ApplyBaseline(const std::vector<BaselineEntry>& baseline,
                     std::vector<Diagnostic>* diags);

}  // namespace gaea

#endif  // GAEA_ANALYSIS_BASELINE_H_
