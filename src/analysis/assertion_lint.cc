#include "analysis/assertion_lint.h"

#include <limits>
#include <map>
#include <string>

namespace gaea {

namespace {

// Feasible integer interval for card(arg), [lo, hi] with hi possibly +inf.
struct CardInterval {
  int64_t lo = 1;
  int64_t hi = std::numeric_limits<int64_t>::max();
  std::vector<std::string> constraints;  // rendered, for the message

  bool empty() const { return lo > hi; }
};

// If `expr` is `cmp(card(a), k)` or `cmp(k, card(a))` with k a foldable
// integer, applies the constraint to the argument's interval.
void ApplyCardConstraint(const Expr& expr,
                         const std::map<std::string, Value>& params,
                         const OperatorRegistry& ops,
                         std::map<std::string, CardInterval>* intervals) {
  if (expr.kind() != Expr::Kind::kOpCall || expr.children().size() != 2) {
    return;
  }
  const std::string& op = expr.name();
  if (op != "eq" && op != "ne" && op != "lt" && op != "le" && op != "gt" &&
      op != "ge") {
    return;
  }
  const ExprPtr& lhs = expr.children()[0];
  const ExprPtr& rhs = expr.children()[1];
  if (lhs == nullptr || rhs == nullptr) return;

  const Expr* card = nullptr;
  const Expr* constant = nullptr;
  bool flipped = false;  // constraint reads `k <op> card(a)`
  if (lhs->kind() == Expr::Kind::kCard) {
    card = lhs.get();
    constant = rhs.get();
  } else if (rhs->kind() == Expr::Kind::kCard) {
    card = rhs.get();
    constant = lhs.get();
    flipped = true;
  } else {
    return;
  }
  std::optional<Value> folded = FoldConstant(*constant, params, ops);
  if (!folded.has_value()) return;
  auto as_int = folded->AsInt();
  if (!as_int.ok()) return;
  int64_t k = *as_int;

  // Normalize a flipped comparison: k < card(a) means card(a) > k.
  std::string norm = op;
  if (flipped) {
    if (op == "lt") norm = "gt";
    else if (op == "le") norm = "ge";
    else if (op == "gt") norm = "lt";
    else if (op == "ge") norm = "le";
  }

  auto it = intervals->find(card->name());
  if (it == intervals->end()) return;  // undeclared arg: GA009 already fired
  CardInterval& iv = it->second;
  if (norm == "eq") {
    iv.lo = std::max(iv.lo, k);
    iv.hi = std::min(iv.hi, k);
  } else if (norm == "ge") {
    iv.lo = std::max(iv.lo, k);
  } else if (norm == "gt") {
    iv.lo = std::max(iv.lo, k + 1);
  } else if (norm == "le") {
    iv.hi = std::min(iv.hi, k);
  } else if (norm == "lt") {
    iv.hi = std::min(iv.hi, k - 1);
  } else if (norm == "ne") {
    // Only prunes when the interval is the single excluded point.
    if (iv.lo == k && iv.hi == k) iv.hi = iv.lo - 1;
  }
  iv.constraints.push_back(expr.ToString());
}

}  // namespace

std::optional<Value> FoldConstant(const Expr& expr,
                                  const std::map<std::string, Value>& params,
                                  const OperatorRegistry& ops) {
  switch (expr.kind()) {
    case Expr::Kind::kLiteral:
      return expr.literal();
    case Expr::Kind::kParam: {
      auto it = params.find(expr.name());
      if (it == params.end()) return std::nullopt;
      return it->second;
    }
    case Expr::Kind::kOpCall: {
      ValueList args;
      args.reserve(expr.children().size());
      for (const ExprPtr& child : expr.children()) {
        if (child == nullptr) return std::nullopt;
        std::optional<Value> folded = FoldConstant(*child, params, ops);
        if (!folded.has_value()) return std::nullopt;
        args.push_back(std::move(*folded));
      }
      // Built-in operators are pure, so invoking one on folded constants is
      // exactly the runtime semantics; any failure just means "not foldable".
      auto result = ops.Invoke(expr.name(), args);
      if (!result.ok()) return std::nullopt;
      return std::move(*result);
    }
    default:
      // card / attr refs / ANYOF / common depend on bound objects.
      return std::nullopt;
  }
}

void LintAssertions(const ProcessDef& def, const TypeContext& ctx,
                    std::vector<Diagnostic>* out) {
  if (ctx.ops == nullptr) return;
  const OperatorRegistry& ops = *ctx.ops;
  const std::string proc_loc = "process " + def.name();

  // Seed each argument's interval with its declared MIN (the Petri-net
  // firing threshold): the planner never binds fewer objects than that.
  std::map<std::string, CardInterval> intervals;
  for (const ProcessArg& arg : def.args()) {
    CardInterval iv;
    iv.lo = arg.min_card;
    if (!arg.setof) iv.hi = 1;  // scalar arguments bind exactly one object
    iv.constraints.push_back("declared MIN " + std::to_string(arg.min_card));
    intervals[arg.name] = std::move(iv);
  }

  size_t index = 0;
  for (const ExprPtr& assertion : def.assertions()) {
    ++index;
    if (assertion == nullptr) continue;
    const std::string loc =
        proc_loc + " / assertion " + std::to_string(index);

    std::optional<Value> folded =
        FoldConstant(*assertion, def.params(), ops);
    if (folded.has_value()) {
      auto as_bool = folded->AsBool();
      if (as_bool.ok()) {
        if (*as_bool) {
          Emit(out, "GA304", loc,
               "assertion '" + assertion->ToString() +
                   "' is trivially true and guards nothing");
        } else {
          Emit(out, "GA301", loc,
               "assertion '" + assertion->ToString() +
                   "' is trivially false; the process can never fire");
        }
      }
      // Non-bool constants are reported as GA007 by the type pass.
      continue;
    }

    ApplyCardConstraint(*assertion, def.params(), ops, &intervals);
  }

  for (const auto& [arg_name, iv] : intervals) {
    // Only flag arguments an assertion actually constrained (beyond the
    // declared-MIN seed), so unconstrained arguments stay silent.
    if (iv.constraints.size() <= 1) continue;
    if (!iv.empty()) continue;
    std::string rendered;
    for (const std::string& c : iv.constraints) {
      if (!rendered.empty()) rendered += ", ";
      rendered += c;
    }
    Emit(out, "GA302", proc_loc + " / argument " + arg_name,
         "cardinality constraints on '" + arg_name +
             "' are unsatisfiable: " + rendered);
  }
}

}  // namespace gaea
