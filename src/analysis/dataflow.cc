#include "analysis/dataflow.h"

#include <optional>
#include <sstream>

#include "analysis/assertion_lint.h"

namespace gaea {

namespace {

// How many fixpoint passes over the derivation graph before giving up on
// convergence. Derivation cycles (GA203) would otherwise iterate forever;
// after the cap any still-changing summary simply stays conservative.
constexpr int kMaxFixpointPasses = 4;

// Facts about one bound process argument during abstract interpretation.
struct ArgFacts {
  const ClassDef* class_def = nullptr;
  bool setof = false;
  Interval card;  // number of bound objects
  // Attribute facts refined by assertions, overriding the class summary.
  std::map<std::string, AbstractValue> refined;
};

struct AbstractEnv {
  std::map<std::string, ArgFacts> args;
  const std::map<std::string, Value>* params = nullptr;
  const OperatorRegistry* ops = nullptr;
  const ClassSummaries* summaries = nullptr;
};

std::string ShapeString(const AbstractValue& v) {
  return v.rows.ToString() + "x" + v.cols.ToString();
}

// The class-summary (or refined) abstraction of arg.attr.
AbstractValue AttrFacts(const AbstractEnv& env, const ArgFacts& arg,
                        const std::string& attr) {
  auto refined = arg.refined.find(attr);
  if (refined != arg.refined.end()) return refined->second;
  if (arg.class_def == nullptr) return AbstractValue::Top();
  if (env.summaries != nullptr) {
    auto cls = env.summaries->find(arg.class_def->name());
    if (cls != env.summaries->end()) {
      auto it = cls->second.find(attr);
      if (it != cls->second.end()) return it->second;
    }
  }
  auto def = arg.class_def->FindAttribute(attr);
  return def.ok() ? AbstractValue::OfType((*def)->type) : AbstractValue::Top();
}

// Abstract interpreter over one expression tree. When `out` is non-null the
// per-node GA401-GA404 checks are emitted against `location`.
class AbstractEvaluator {
 public:
  AbstractEvaluator(const AbstractEnv& env, std::string location,
                    std::vector<Diagnostic>* out)
      : env_(env), location_(std::move(location)), out_(out) {}

  AbstractValue Eval(const Expr& e) {
    switch (e.kind()) {
      case Expr::Kind::kLiteral:
        return AbstractValue::Constant(e.literal());
      case Expr::Kind::kParam: {
        if (env_.params != nullptr) {
          auto it = env_.params->find(e.name());
          if (it != env_.params->end()) {
            return AbstractValue::Constant(it->second);
          }
        }
        return AbstractValue::Top();
      }
      case Expr::Kind::kAttrRef: {
        auto arg = env_.args.find(e.name());
        if (arg == env_.args.end()) return AbstractValue::Top();
        AbstractValue attr = AttrFacts(env_, arg->second, e.attr());
        if (!arg->second.setof) return attr;
        AbstractValue list = AbstractValue::OfType(TypeId::kList);
        list.elem = attr.type;
        list.range = attr.range;
        list.rows = attr.rows;
        list.cols = attr.cols;
        list.length = arg->second.card;
        list.maybe_null = attr.maybe_null;
        return list;
      }
      case Expr::Kind::kCard: {
        auto arg = env_.args.find(e.name());
        AbstractValue v = AbstractValue::OfType(TypeId::kInt);
        if (arg != env_.args.end()) v.range = arg->second.card;
        v.maybe_null = false;
        return v;
      }
      case Expr::Kind::kAnyOf: {
        if (e.children().empty()) return AbstractValue::Top();
        AbstractValue list = Eval(*e.children()[0]);
        AbstractValue v;
        v.type = list.type == TypeId::kList ? list.elem : list.type;
        v.range = list.range;
        v.rows = list.rows;
        v.cols = list.cols;
        v.maybe_null = list.maybe_null;
        return v;
      }
      case Expr::Kind::kCommon: {
        for (const ExprPtr& c : e.children()) Eval(*c);
        return AbstractValue::Bool(TriBool::kUnknown);
      }
      case Expr::Kind::kOpCall: {
        std::vector<AbstractValue> args;
        args.reserve(e.children().size());
        for (const ExprPtr& c : e.children()) args.push_back(Eval(*c));
        CheckOpCall(e, args);
        const TransferFn* fn = BuiltinTransferFunctions().Find(e.name());
        if (fn != nullptr) return (*fn)(args);
        return AbstractValue::Top();
      }
    }
    return AbstractValue::Top();
  }

 private:
  void Report(const std::string& code, const std::string& message) {
    if (out_ != nullptr) Emit(out_, code, location_, message);
  }

  void CheckOpCall(const Expr& e, const std::vector<AbstractValue>& args) {
    const std::string& op = e.name();
    if (op == "div" && args.size() == 2) {
      const Interval& d = args[1].range;
      if (d.IsPoint() && d.lo == 0.0) {
        Report("GA403", "divisor of '" + e.ToString() +
                            "' is provably zero; the expression can never "
                            "evaluate");
      } else if (!d.IsTop() && !d.IsEmpty() && d.Contains(0.0)) {
        Report("GA402", "divisor of '" + e.ToString() +
                            "' has provable range " + d.ToString() +
                            ", which includes zero");
      }
      return;
    }
    // Pixel-wise binary image operators require identical shapes.
    static const char* kShapeOps[] = {"img_add",   "img_sub", "img_mul",
                                      "img_div",   "ndvi",    "img_blend",
                                      "changemap"};
    for (const char* shape_op : kShapeOps) {
      if (op == shape_op && args.size() >= 2) {
        const AbstractValue& a = args[0];
        const AbstractValue& b = args[1];
        if (a.rows.Disjoint(b.rows) || a.cols.Disjoint(b.cols)) {
          Report("GA401", "operand shapes of '" + op +
                              "' are provably mismatched: " + ShapeString(a) +
                              " vs " + ShapeString(b));
        }
        return;
      }
    }
    if (op == "img_threshold" && args.size() == 2) {
      const Interval& pixels = args[0].range;
      const Interval& t = args[1].range;
      if (!pixels.IsTop() && !t.IsTop() && pixels.Disjoint(t)) {
        Report("GA404", "threshold " + t.ToString() +
                            " lies outside the input's provable pixel range " +
                            pixels.ToString() +
                            "; the result is a constant image");
      }
      return;
    }
    if (op == "convert_matrix_image" && args.size() == 3) {
      Interval pixels = IntervalMul(args[1].range, args[2].range);
      if (args[0].rows.IsPoint() && pixels.IsPoint() &&
          args[0].rows.lo != pixels.lo) {
        Report("GA401", "matrix with " + args[0].rows.ToString() +
                            " rows cannot unstack into " +
                            args[1].range.ToString() + "x" +
                            args[2].range.ToString() + " images");
      }
    }
  }

  const AbstractEnv& env_;
  std::string location_;
  std::vector<Diagnostic>* out_;
};

// Interval a comparison constrains its left-hand side to.
Interval ConstraintInterval(const std::string& cmp, double k) {
  if (cmp == "lt") return Interval::AtMost(k, /*open=*/true);
  if (cmp == "le") return Interval::AtMost(k);
  if (cmp == "gt") return Interval::AtLeast(k, /*open=*/true);
  if (cmp == "ge") return Interval::AtLeast(k);
  if (cmp == "eq") return Interval::Point(k);
  return Interval::Top();  // ne refines nothing representable
}

std::string MirrorCmp(const std::string& cmp) {
  if (cmp == "lt") return "gt";
  if (cmp == "le") return "ge";
  if (cmp == "gt") return "lt";
  if (cmp == "ge") return "le";
  return cmp;  // eq / ne are symmetric
}

bool IsComparison(const std::string& op) {
  return op == "lt" || op == "le" || op == "gt" || op == "ge" || op == "eq" ||
         op == "ne";
}

// Narrows the facts for `target cmp k` where target is card(arg), a scalar
// arg's attribute, or img_nrow/img_ncol of such an attribute.
void RefineTarget(const Expr& target, const std::string& cmp, double k,
                  AbstractEnv* env) {
  Interval constraint = ConstraintInterval(cmp, k);
  if (target.kind() == Expr::Kind::kCard) {
    auto arg = env->args.find(target.name());
    if (arg != env->args.end()) {
      arg->second.card = arg->second.card.Intersect(constraint);
    }
    return;
  }
  if (target.kind() == Expr::Kind::kAttrRef) {
    auto arg = env->args.find(target.name());
    if (arg == env->args.end() || arg->second.setof) return;
    AbstractValue facts = AttrFacts(*env, arg->second, target.attr());
    facts.range = facts.range.Intersect(constraint);
    arg->second.refined[target.attr()] = facts;
    return;
  }
  if (target.kind() == Expr::Kind::kOpCall &&
      (target.name() == "img_nrow" || target.name() == "img_ncol") &&
      target.children().size() == 1 &&
      target.children()[0]->kind() == Expr::Kind::kAttrRef) {
    const Expr& ref = *target.children()[0];
    auto arg = env->args.find(ref.name());
    if (arg == env->args.end() || arg->second.setof) return;
    AbstractValue facts = AttrFacts(*env, arg->second, ref.attr());
    if (target.name() == "img_nrow") {
      facts.rows = facts.rows.Intersect(constraint);
    } else {
      facts.cols = facts.cols.Intersect(constraint);
    }
    arg->second.refined[ref.attr()] = facts;
  }
}

// Assumes `assertion` holds and narrows `env` accordingly (best effort:
// only `x cmp k` patterns over card/attr/shape are representable).
void RefineEnv(const Expr& assertion, AbstractEnv* env) {
  if (assertion.kind() != Expr::Kind::kOpCall ||
      !IsComparison(assertion.name()) || assertion.children().size() != 2) {
    return;
  }
  const Expr& lhs = *assertion.children()[0];
  const Expr& rhs = *assertion.children()[1];
  std::optional<Value> k;
  if (env->ops != nullptr && env->params != nullptr) {
    if ((k = FoldConstant(rhs, *env->params, *env->ops))) {
      auto d = k->AsDouble();
      if (d.ok()) RefineTarget(lhs, assertion.name(), *d, env);
      return;
    }
    if ((k = FoldConstant(lhs, *env->params, *env->ops))) {
      auto d = k->AsDouble();
      if (d.ok()) RefineTarget(rhs, MirrorCmp(assertion.name()), *d, env);
    }
  }
}

// Builds the abstract environment for `def`. `include_min` seeds SETOF
// cardinalities with the declared MIN (true when deriving — the scheduler
// enforces it — false while judging whether assertions are vacuous).
AbstractEnv BuildEnv(const ProcessDef& def, const ClassRegistry& classes,
                     const OperatorRegistry& ops,
                     const ClassSummaries& summaries, bool include_min) {
  AbstractEnv env;
  env.params = &def.params();
  env.ops = &ops;
  env.summaries = &summaries;
  for (const ProcessArg& arg : def.args()) {
    ArgFacts facts;
    auto cls = classes.LookupByName(arg.class_name);
    facts.class_def = cls.ok() ? *cls : nullptr;
    facts.setof = arg.setof;
    if (!arg.setof) {
      facts.card = Interval::Point(1);
    } else if (include_min) {
      facts.card = Interval::AtLeast(arg.min_card);
    } else {
      facts.card = Interval::AtLeast(0);
    }
    env.args[arg.name] = std::move(facts);
  }
  return env;
}

bool SummariesEqual(const ClassSummaries& a, const ClassSummaries& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [cls, attrs] : a) {
    auto it = b.find(cls);
    if (it == b.end() || it->second.size() != attrs.size()) return false;
    for (const auto& [attr, av] : attrs) {
      auto jt = it->second.find(attr);
      if (jt == it->second.end() || !jt->second.Equals(av)) return false;
    }
  }
  return true;
}

ClassSummaries InitialSummaries(const ClassRegistry& classes) {
  ClassSummaries summaries;
  for (const ClassDef* cls : classes.List()) {
    auto& attrs = summaries[cls->name()];
    for (const AttributeDef& attr : cls->attributes()) {
      attrs[attr.name] = AbstractValue::OfType(attr.type);
    }
  }
  return summaries;
}

}  // namespace

ClassSummaries ComputeClassSummaries(const ClassRegistry& classes,
                                     const ProcessRegistry& processes,
                                     const OperatorRegistry& ops) {
  ClassSummaries summaries = InitialSummaries(classes);
  for (int pass = 0; pass < kMaxFixpointPasses; ++pass) {
    ClassSummaries next = InitialSummaries(classes);
    // attrs of derived classes already written by some producer this pass.
    std::map<std::string, std::map<std::string, bool>> written;
    for (const ProcessDef* def : processes.ListLatest()) {
      if (!def->Validate(classes, ops).ok()) continue;
      auto out_cls = classes.LookupByName(def->output_class());
      if (!out_cls.ok() || (*out_cls)->kind() != ClassKind::kDerived) continue;
      AbstractEnv env =
          BuildEnv(*def, classes, ops, summaries, /*include_min=*/true);
      for (const ExprPtr& assertion : def->assertions()) {
        RefineEnv(*assertion, &env);
      }
      AbstractEvaluator eval(env, /*location=*/"", /*out=*/nullptr);
      for (const ProcessMapping& m : def->mappings()) {
        AbstractValue av = eval.Eval(*m.expr);
        auto& slot = next[def->output_class()][m.attr];
        bool& seen = written[def->output_class()][m.attr];
        slot = seen ? slot.Join(av) : av;
        seen = true;
      }
    }
    if (SummariesEqual(next, summaries)) break;
    summaries = std::move(next);
  }
  return summaries;
}

void AnalyzeProcessDataflow(const ProcessDef& def, const ClassRegistry& classes,
                            const OperatorRegistry& ops,
                            const ClassSummaries& summaries,
                            std::vector<Diagnostic>* out) {
  if (!def.Validate(classes, ops).ok()) return;  // GA0xx territory
  // Phase 1: assertions, judged against prior assertions + upstream
  // summaries only (no declared MIN), refined as they are assumed.
  AbstractEnv env =
      BuildEnv(def, classes, ops, summaries, /*include_min=*/false);
  int index = 0;
  for (const ExprPtr& assertion : def.assertions()) {
    ++index;
    std::string location =
        "process " + def.name() + " / assertion " + std::to_string(index);
    AbstractEvaluator eval(env, location, out);
    AbstractValue av = eval.Eval(*assertion);
    // Constant-only assertions are GA301/GA304's domain (assertion_lint).
    if (!FoldConstant(*assertion, def.params(), ops).has_value()) {
      TriBool truth = av.AsTriBool();
      if (truth == TriBool::kTrue) {
        Emit(out, "GA405",
             location, "assertion '" + assertion->ToString() +
                           "' is already entailed by prior assertions and "
                           "upstream facts; it guards nothing");
      } else if (truth == TriBool::kFalse) {
        Emit(out, "GA406",
             location, "assertion '" + assertion->ToString() +
                           "' is contradicted by prior assertions and "
                           "upstream facts; the process can never fire");
      }
    }
    RefineEnv(*assertion, &env);
  }
  // Phase 2: mappings run only once the assertions and the declared MIN
  // cardinalities hold.
  for (auto& [name, facts] : env.args) {
    auto arg = def.FindArg(name);
    if (arg.ok() && (*arg)->setof) {
      facts.card = facts.card.Intersect(Interval::AtLeast((*arg)->min_card));
    }
  }
  for (const ProcessMapping& m : def.mappings()) {
    std::string location = "process " + def.name() + " / mapping " +
                           def.output_class() + "." + m.attr;
    AbstractEvaluator eval(env, location, out);
    eval.Eval(*m.expr);
  }
}

void AnalyzeDataflow(const ClassRegistry& classes,
                     const ProcessRegistry& processes,
                     const OperatorRegistry& ops,
                     std::vector<Diagnostic>* out) {
  ClassSummaries summaries = ComputeClassSummaries(classes, processes, ops);
  for (const ProcessDef* def : processes.ListLatest()) {
    AnalyzeProcessDataflow(*def, classes, ops, summaries, out);
  }
}

}  // namespace gaea
