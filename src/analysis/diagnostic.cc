#include "analysis/diagnostic.h"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace gaea {

const char* SeverityName(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  os << SeverityName(severity) << " " << code;
  std::string where;
  if (!file.empty()) {
    where = file;
    if (line > 0) where += ":" + std::to_string(line);
  }
  if (!location.empty()) {
    if (!where.empty()) where += ": ";
    where += location;
  }
  if (!where.empty()) os << " [" << where << "]";
  os << ": " << message;
  return os.str();
}

const std::vector<DiagnosticCodeInfo>& AllDiagnosticCodes() {
  static const std::vector<DiagnosticCodeInfo> kCodes = {
      // ---- GA0xx: type/arity checking ----
      {"GA001", Severity::kError, "type",
       "process OUTPUT names a class that is not defined"},
      {"GA002", Severity::kError, "type",
       "process ARGUMENT names a class that is not defined"},
      {"GA003", Severity::kError, "type",
       "mapping targets an attribute absent from the output class"},
      {"GA004", Severity::kError, "type",
       "mapping expression type does not match the output attribute type"},
      {"GA005", Severity::kError, "type",
       "unknown operator or no overload matching the argument types"},
      {"GA006", Severity::kError, "type",
       "output attribute is not covered by any mapping"},
      {"GA007", Severity::kError, "type",
       "assertion expression does not type-check to bool"},
      {"GA008", Severity::kError, "type",
       "expression references an undeclared process parameter"},
      {"GA009", Severity::kError, "type",
       "expression references an undeclared process argument"},
      {"GA010", Severity::kError, "type",
       "expression references an attribute absent from the argument's class"},
      {"GA011", Severity::kWarning, "type",
       "declared process argument is never referenced by the template"},
      {"GA012", Severity::kError, "type",
       "malformed expression structure (ANYOF of a scalar, empty common())"},
      // ---- GA1xx: graph checks ----
      {"GA101", Severity::kError, "graph",
       "derived class is DERIVED BY an unknown process"},
      {"GA102", Severity::kError, "graph",
       "class's DERIVED BY process outputs a different class"},
      {"GA103", Severity::kWarning, "graph",
       "base class is produced by a process but not marked DERIVED BY"},
      {"GA104", Severity::kError, "graph",
       "compound stage references an unknown stage or external binding"},
      {"GA105", Severity::kError, "graph",
       "compound-process stage network contains a cycle"},
      {"GA106", Severity::kError, "graph",
       "compound stage invokes an unknown process"},
      {"GA107", Severity::kError, "graph",
       "compound stage binding class does not match the argument class"},
      {"GA108", Severity::kError, "graph",
       "concept ISA hierarchy contains a cycle"},
      {"GA109", Severity::kWarning, "graph",
       "concept ISA parent is not defined (will be implicitly created)"},
      {"GA110", Severity::kError, "graph",
       "concept MEMBERS references an unknown class"},
      {"GA111", Severity::kError, "graph",
       "duplicate definition of the same name in one script"},
      {"GA112", Severity::kError, "graph",
       "class definition rejected by the catalog"},
      {"GA113", Severity::kWarning, "graph",
       "process re-defined with a structure identical to its latest version"},
      // ---- GA2xx: Petri-net structural analysis ----
      {"GA201", Severity::kWarning, "petri",
       "transition can never fire, even with unlimited base data"},
      {"GA202", Severity::kWarning, "petri",
       "dead place: derived class can never receive a token"},
      {"GA203", Severity::kWarning, "petri",
       "derivation cycle: token counts can grow without bound"},
      // ---- GA3xx: assertion lint ----
      {"GA301", Severity::kError, "assertion",
       "assertion is trivially false; the process can never fire"},
      {"GA302", Severity::kError, "assertion",
       "contradictory cardinality constraints on a process argument"},
      {"GA303", Severity::kError, "assertion",
       "assertion references an attribute absent from the input classes"},
      {"GA304", Severity::kWarning, "assertion",
       "assertion is trivially true and guards nothing"},
      // ---- GA4xx: interprocedural dataflow (abstract interpretation) ----
      {"GA401", Severity::kError, "dataflow",
       "image/matrix operand shapes are provably mismatched"},
      {"GA402", Severity::kWarning, "dataflow",
       "divisor's provable value range contains zero"},
      {"GA403", Severity::kError, "dataflow",
       "divisor is provably zero; the mapping can never evaluate"},
      {"GA404", Severity::kError, "dataflow",
       "threshold lies outside the input's provable value range"},
      {"GA405", Severity::kWarning, "dataflow",
       "assertion is entailed by upstream facts and guards nothing"},
      {"GA406", Severity::kError, "dataflow",
       "assertion is contradicted by upstream facts; it can never hold"},
      // ---- GA5xx: cost / parallelism analysis ----
      {"GA501", Severity::kWarning, "cost",
       "serial non-tileable critical path dominates; little speedup from "
       "parallelism"},
      {"GA502", Severity::kWarning, "cost",
       "dead-end derivation: output consumed by no process or concept"},
      {"GA503", Severity::kWarning, "cost",
       "declared parameter never referenced; fragments DerivationCache keys"},
      {"GA504", Severity::kWarning, "cost",
       "expensive subexpression repeated; tree evaluation recomputes it"},
      {"GA505", Severity::kWarning, "cost",
       "compound stage network is a pure serial chain"},
  };
  return kCodes;
}

const DiagnosticCodeInfo* FindDiagnosticCode(const std::string& code) {
  for (const DiagnosticCodeInfo& info : AllDiagnosticCodes()) {
    if (code == info.code) return &info;
  }
  return nullptr;
}

bool HasErrors(const std::vector<Diagnostic>& diags) {
  return CountErrors(diags) > 0;
}

size_t CountErrors(const std::vector<Diagnostic>& diags) {
  size_t n = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

std::string FormatDiagnostics(const std::vector<Diagnostic>& diags) {
  std::ostringstream os;
  for (const Diagnostic& d : diags) os << d.ToString() << "\n";
  return os.str();
}

bool HasCode(const std::vector<Diagnostic>& diags, const std::string& code) {
  for (const Diagnostic& d : diags) {
    if (d.code == code) return true;
  }
  return false;
}

void Emit(std::vector<Diagnostic>* out, const std::string& code,
          std::string location, std::string message) {
  Diagnostic d;
  d.code = code;
  const DiagnosticCodeInfo* info = FindDiagnosticCode(code);
  d.severity = info != nullptr ? info->severity : Severity::kError;
  d.location = std::move(location);
  d.message = std::move(message);
  out->push_back(std::move(d));
}

void NormalizeDiagnostics(std::vector<Diagnostic>* diags) {
  auto key = [](const Diagnostic& d) {
    return std::tie(d.file, d.line, d.code, d.location, d.message);
  };
  std::stable_sort(diags->begin(), diags->end(),
                   [&key](const Diagnostic& a, const Diagnostic& b) {
                     return key(a) < key(b);
                   });
  diags->erase(std::unique(diags->begin(), diags->end(),
                           [&key](const Diagnostic& a, const Diagnostic& b) {
                             return key(a) == key(b) &&
                                    a.severity == b.severity;
                           }),
               diags->end());
}

}  // namespace gaea
