#include "analysis/diagnostic.h"

#include <sstream>

namespace gaea {

const char* SeverityName(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  os << SeverityName(severity) << " " << code;
  if (!location.empty()) os << " [" << location << "]";
  os << ": " << message;
  return os.str();
}

const std::vector<DiagnosticCodeInfo>& AllDiagnosticCodes() {
  static const std::vector<DiagnosticCodeInfo> kCodes = {
      // ---- GA0xx: type/arity checking ----
      {"GA001", Severity::kError, "type",
       "process OUTPUT names a class that is not defined"},
      {"GA002", Severity::kError, "type",
       "process ARGUMENT names a class that is not defined"},
      {"GA003", Severity::kError, "type",
       "mapping targets an attribute absent from the output class"},
      {"GA004", Severity::kError, "type",
       "mapping expression type does not match the output attribute type"},
      {"GA005", Severity::kError, "type",
       "unknown operator or no overload matching the argument types"},
      {"GA006", Severity::kError, "type",
       "output attribute is not covered by any mapping"},
      {"GA007", Severity::kError, "type",
       "assertion expression does not type-check to bool"},
      {"GA008", Severity::kError, "type",
       "expression references an undeclared process parameter"},
      {"GA009", Severity::kError, "type",
       "expression references an undeclared process argument"},
      {"GA010", Severity::kError, "type",
       "expression references an attribute absent from the argument's class"},
      {"GA011", Severity::kWarning, "type",
       "declared process argument is never referenced by the template"},
      {"GA012", Severity::kError, "type",
       "malformed expression structure (ANYOF of a scalar, empty common())"},
      // ---- GA1xx: graph checks ----
      {"GA101", Severity::kError, "graph",
       "derived class is DERIVED BY an unknown process"},
      {"GA102", Severity::kError, "graph",
       "class's DERIVED BY process outputs a different class"},
      {"GA103", Severity::kWarning, "graph",
       "base class is produced by a process but not marked DERIVED BY"},
      {"GA104", Severity::kError, "graph",
       "compound stage references an unknown stage or external binding"},
      {"GA105", Severity::kError, "graph",
       "compound-process stage network contains a cycle"},
      {"GA106", Severity::kError, "graph",
       "compound stage invokes an unknown process"},
      {"GA107", Severity::kError, "graph",
       "compound stage binding class does not match the argument class"},
      {"GA108", Severity::kError, "graph",
       "concept ISA hierarchy contains a cycle"},
      {"GA109", Severity::kWarning, "graph",
       "concept ISA parent is not defined (will be implicitly created)"},
      {"GA110", Severity::kError, "graph",
       "concept MEMBERS references an unknown class"},
      {"GA111", Severity::kError, "graph",
       "duplicate definition of the same name in one script"},
      {"GA112", Severity::kError, "graph",
       "class definition rejected by the catalog"},
      {"GA113", Severity::kWarning, "graph",
       "process re-defined with a structure identical to its latest version"},
      // ---- GA2xx: Petri-net structural analysis ----
      {"GA201", Severity::kWarning, "petri",
       "transition can never fire, even with unlimited base data"},
      {"GA202", Severity::kWarning, "petri",
       "dead place: derived class can never receive a token"},
      {"GA203", Severity::kWarning, "petri",
       "derivation cycle: token counts can grow without bound"},
      // ---- GA3xx: assertion lint ----
      {"GA301", Severity::kError, "assertion",
       "assertion is trivially false; the process can never fire"},
      {"GA302", Severity::kError, "assertion",
       "contradictory cardinality constraints on a process argument"},
      {"GA303", Severity::kError, "assertion",
       "assertion references an attribute absent from the input classes"},
      {"GA304", Severity::kWarning, "assertion",
       "assertion is trivially true and guards nothing"},
  };
  return kCodes;
}

const DiagnosticCodeInfo* FindDiagnosticCode(const std::string& code) {
  for (const DiagnosticCodeInfo& info : AllDiagnosticCodes()) {
    if (code == info.code) return &info;
  }
  return nullptr;
}

bool HasErrors(const std::vector<Diagnostic>& diags) {
  return CountErrors(diags) > 0;
}

size_t CountErrors(const std::vector<Diagnostic>& diags) {
  size_t n = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

std::string FormatDiagnostics(const std::vector<Diagnostic>& diags) {
  std::ostringstream os;
  for (const Diagnostic& d : diags) os << d.ToString() << "\n";
  return os.str();
}

bool HasCode(const std::vector<Diagnostic>& diags, const std::string& code) {
  for (const Diagnostic& d : diags) {
    if (d.code == code) return true;
  }
  return false;
}

void Emit(std::vector<Diagnostic>* out, const std::string& code,
          std::string location, std::string message) {
  Diagnostic d;
  d.code = code;
  const DiagnosticCodeInfo* info = FindDiagnosticCode(code);
  d.severity = info != nullptr ? info->severity : Severity::kError;
  d.location = std::move(location);
  d.message = std::move(message);
  out->push_back(std::move(d));
}

}  // namespace gaea
