#include "types/op_registry.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace gaea {

namespace {
std::string SignatureString(const std::string& name,
                            const std::vector<TypeId>& types) {
  std::ostringstream os;
  os << name << "(";
  for (size_t i = 0; i < types.size(); ++i) {
    if (i > 0) os << ", ";
    os << TypeIdName(types[i]);
  }
  os << ")";
  return os.str();
}

// Whether an argument of `got` is acceptable for a parameter of `want`.
bool ParamAccepts(TypeId want, TypeId got) {
  if (want == got) return true;
  // Integer arguments widen to double parameters.
  if (want == TypeId::kDouble && got == TypeId::kInt) return true;
  // kNull parameter type means "any".
  if (want == TypeId::kNull) return true;
  return false;
}
}  // namespace

Status OperatorRegistry::Register(const std::string& name,
                                  OperatorSignature sig) {
  if (name.empty()) return Status::InvalidArgument("operator needs a name");
  if (!sig.fn) {
    return Status::InvalidArgument("operator " + name +
                                   " registered without implementation");
  }
  OperatorDef& def = ops_[name];
  def.name = name;
  for (const OperatorSignature& existing : def.overloads) {
    if (existing.params == sig.params && existing.variadic == sig.variadic) {
      return Status::AlreadyExists("duplicate overload for " +
                                   SignatureString(name, sig.params));
    }
  }
  def.overloads.push_back(std::move(sig));
  return Status::OK();
}

bool OperatorRegistry::Contains(const std::string& name) const {
  return ops_.count(name) > 0;
}

StatusOr<const OperatorDef*> OperatorRegistry::Lookup(
    const std::string& name) const {
  auto it = ops_.find(name);
  if (it == ops_.end()) {
    return Status::NotFound("operator not registered: " + name);
  }
  return &it->second;
}

const OperatorSignature* OperatorRegistry::Match(
    const OperatorDef& def, const std::vector<TypeId>& arg_types) const {
  const OperatorSignature* exact = nullptr;
  const OperatorSignature* widened = nullptr;
  for (const OperatorSignature& sig : def.overloads) {
    size_t fixed = sig.params.size();
    if (sig.variadic) {
      if (fixed == 0) continue;  // malformed
      if (arg_types.size() < fixed - 1) continue;
    } else if (arg_types.size() != fixed) {
      continue;
    }
    bool match_exact = true;
    bool match_widened = true;
    for (size_t i = 0; i < arg_types.size(); ++i) {
      TypeId want = (sig.variadic && i >= fixed - 1) ? sig.params[fixed - 1]
                                                     : sig.params[i];
      if (want != arg_types[i]) match_exact = false;
      if (!ParamAccepts(want, arg_types[i])) {
        match_widened = false;
        break;
      }
    }
    if (match_exact && match_widened && exact == nullptr) exact = &sig;
    if (match_widened && widened == nullptr) widened = &sig;
  }
  return exact != nullptr ? exact : widened;
}

StatusOr<Value> OperatorRegistry::Invoke(const std::string& name,
                                         const ValueList& args) const {
  GAEA_ASSIGN_OR_RETURN(const OperatorDef* def, Lookup(name));
  std::vector<TypeId> arg_types;
  arg_types.reserve(args.size());
  for (const Value& v : args) arg_types.push_back(v.type());
  const OperatorSignature* sig = Match(*def, arg_types);
  if (sig == nullptr) {
    return Status::InvalidArgument("no overload of " +
                                   SignatureString(name, arg_types));
  }
  return sig->fn(args);
}

StatusOr<TypeId> OperatorRegistry::ResultType(
    const std::string& name, const std::vector<TypeId>& arg_types) const {
  GAEA_ASSIGN_OR_RETURN(const OperatorDef* def, Lookup(name));
  const OperatorSignature* sig = Match(*def, arg_types);
  if (sig == nullptr) {
    return Status::InvalidArgument("no overload of " +
                                   SignatureString(name, arg_types));
  }
  return sig->result;
}

std::vector<std::string> OperatorRegistry::ListNames() const {
  std::vector<std::string> out;
  out.reserve(ops_.size());
  for (const auto& [name, def] : ops_) out.push_back(name);
  return out;
}

std::vector<std::string> OperatorRegistry::OperatorsForType(TypeId t) const {
  std::vector<std::string> out;
  for (const auto& [name, def] : ops_) {
    bool uses = false;
    for (const OperatorSignature& sig : def.overloads) {
      if (std::find(sig.params.begin(), sig.params.end(), t) !=
              sig.params.end() ||
          (sig.list_element == t &&
           std::find(sig.params.begin(), sig.params.end(), TypeId::kList) !=
               sig.params.end())) {
        uses = true;
        break;
      }
    }
    if (uses) out.push_back(name);
  }
  return out;
}

std::vector<TypeId> OperatorRegistry::TypesForOperator(
    const std::string& name) const {
  std::set<TypeId> types;
  auto it = ops_.find(name);
  if (it != ops_.end()) {
    for (const OperatorSignature& sig : it->second.overloads) {
      for (TypeId t : sig.params) types.insert(t);
    }
  }
  return std::vector<TypeId>(types.begin(), types.end());
}

}  // namespace gaea
