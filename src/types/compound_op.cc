#include "types/compound_op.h"

#include <algorithm>
#include <set>

namespace gaea {

Status CompoundOperator::AddInput(const std::string& port, TypeId type,
                                  TypeId list_element) {
  for (const InputPort& p : inputs_) {
    if (p.name == port) {
      return Status::AlreadyExists("duplicate input port: " + port);
    }
  }
  if (nodes_.count(port) > 0) {
    return Status::AlreadyExists("input port shadows node id: " + port);
  }
  inputs_.push_back(InputPort{port, type, list_element});
  validated_ = false;
  return Status::OK();
}

Status CompoundOperator::AddConstant(const std::string& id, Value value) {
  if (nodes_.count(id) > 0) {
    return Status::AlreadyExists("duplicate node id: " + id);
  }
  Node n;
  n.id = id;
  n.is_constant = true;
  n.constant = std::move(value);
  nodes_.emplace(id, std::move(n));
  validated_ = false;
  return Status::OK();
}

Status CompoundOperator::AddNode(const std::string& id,
                                 const std::string& op_name,
                                 std::vector<PortRef> inputs) {
  if (nodes_.count(id) > 0) {
    return Status::AlreadyExists("duplicate node id: " + id);
  }
  for (const InputPort& p : inputs_) {
    if (p.name == id) {
      return Status::AlreadyExists("node id shadows input port: " + id);
    }
  }
  Node n;
  n.id = id;
  n.op_name = op_name;
  n.inputs = std::move(inputs);
  nodes_.emplace(id, std::move(n));
  validated_ = false;
  return Status::OK();
}

Status CompoundOperator::SetOutput(const std::string& node_id) {
  if (nodes_.count(node_id) == 0) {
    return Status::NotFound("output node not defined: " + node_id);
  }
  output_node_ = node_id;
  validated_ = false;
  return Status::OK();
}

StatusOr<const CompoundOperator::Node*> CompoundOperator::FindNode(
    const std::string& id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return Status::NotFound("node not defined: " + id);
  }
  return &it->second;
}

Status CompoundOperator::Validate(const OperatorRegistry& reg) {
  if (output_node_.empty()) {
    return Status::FailedPrecondition("compound " + name_ +
                                      ": no output node designated");
  }
  // Kahn topological sort over node-to-node edges.
  std::map<std::string, int> in_degree;
  std::map<std::string, std::vector<std::string>> dependents;
  for (const auto& [id, node] : nodes_) {
    in_degree.emplace(id, 0);
  }
  for (const auto& [id, node] : nodes_) {
    for (const PortRef& ref : node.inputs) {
      if (ref.kind == PortRef::Kind::kInput) {
        bool found = false;
        for (const InputPort& p : inputs_) {
          if (p.name == ref.name) {
            found = true;
            break;
          }
        }
        if (!found) {
          return Status::NotFound("compound " + name_ + ": node " + id +
                                  " references unknown input port " + ref.name);
        }
      } else {
        if (nodes_.count(ref.name) == 0) {
          return Status::NotFound("compound " + name_ + ": node " + id +
                                  " references unknown node " + ref.name);
        }
        in_degree[id]++;
        dependents[ref.name].push_back(id);
      }
    }
  }
  std::vector<std::string> ready;
  for (const auto& [id, deg] : in_degree) {
    if (deg == 0) ready.push_back(id);
  }
  std::sort(ready.begin(), ready.end());  // deterministic order
  order_.clear();
  while (!ready.empty()) {
    std::string id = ready.back();
    ready.pop_back();
    order_.push_back(id);
    for (const std::string& dep : dependents[id]) {
      if (--in_degree[dep] == 0) ready.push_back(dep);
    }
  }
  if (order_.size() != nodes_.size()) {
    return Status::InvalidArgument("compound " + name_ +
                                   ": cycle in operator network");
  }

  // Type check in topological order.
  std::map<std::string, TypeId> node_types;
  auto ref_type = [&](const PortRef& ref) -> TypeId {
    if (ref.kind == PortRef::Kind::kInput) {
      for (const InputPort& p : inputs_) {
        if (p.name == ref.name) return p.type;
      }
      return TypeId::kNull;
    }
    return node_types[ref.name];
  };
  for (const std::string& id : order_) {
    const Node& node = nodes_.at(id);
    if (node.is_constant) {
      node_types[id] = node.constant.type();
      continue;
    }
    std::vector<TypeId> arg_types;
    arg_types.reserve(node.inputs.size());
    for (const PortRef& ref : node.inputs) arg_types.push_back(ref_type(ref));
    auto result = reg.ResultType(node.op_name, arg_types);
    if (!result.ok()) {
      return Status::InvalidArgument("compound " + name_ + ": node " + id +
                                     ": " + result.status().message());
    }
    node_types[id] = *result;
  }
  result_type_ = node_types[output_node_];
  validated_ = true;
  return Status::OK();
}

StatusOr<Value> CompoundOperator::Invoke(const OperatorRegistry& reg,
                                         const ValueList& args) const {
  if (!validated_) {
    return Status::FailedPrecondition("compound " + name_ +
                                      " invoked before Validate()");
  }
  if (args.size() != inputs_.size()) {
    return Status::InvalidArgument(
        "compound " + name_ + " expects " + std::to_string(inputs_.size()) +
        " arguments, got " + std::to_string(args.size()));
  }
  std::map<std::string, const Value*> inputs_by_name;
  for (size_t i = 0; i < inputs_.size(); ++i) {
    inputs_by_name[inputs_[i].name] = &args[i];
  }
  std::map<std::string, Value> results;
  for (const std::string& id : order_) {
    const Node& node = nodes_.at(id);
    if (node.is_constant) {
      results[id] = node.constant;
      continue;
    }
    ValueList call_args;
    call_args.reserve(node.inputs.size());
    for (const PortRef& ref : node.inputs) {
      if (ref.kind == PortRef::Kind::kInput) {
        call_args.push_back(*inputs_by_name.at(ref.name));
      } else {
        call_args.push_back(results.at(ref.name));
      }
    }
    auto result = reg.Invoke(node.op_name, call_args);
    if (!result.ok()) {
      return Status(result.status().code(), "compound " + name_ + ": node " +
                                                id + ": " +
                                                result.status().message());
    }
    results[id] = std::move(result).value();
  }
  return results.at(output_node_);
}

Status CompoundOperator::RegisterInto(OperatorRegistry* reg) const {
  if (!validated_) {
    return Status::FailedPrecondition("compound " + name_ +
                                      " must be validated before registration");
  }
  OperatorSignature sig;
  for (const InputPort& p : inputs_) {
    sig.params.push_back(p.type);
    if (p.type == TypeId::kList) sig.list_element = p.list_element;
  }
  sig.result = result_type_;
  sig.doc = "compound operator (" + std::to_string(nodes_.size()) + " nodes)";
  // The closure owns a copy of the network; the captured registry pointer is
  // the registry we register into, which outlives the operator by contract.
  CompoundOperator copy = *this;
  const OperatorRegistry* reg_ptr = reg;
  sig.fn = [copy, reg_ptr](const ValueList& args) -> StatusOr<Value> {
    return copy.Invoke(*reg_ptr, args);
  };
  return reg->Register(name_, std::move(sig));
}

StatusOr<CompoundOperator> BuildFigure4PcaNetwork() {
  CompoundOperator op("pca_network");
  GAEA_RETURN_IF_ERROR(op.AddInput("bands", TypeId::kList, TypeId::kImage));
  GAEA_RETURN_IF_ERROR(op.AddInput("nrow", TypeId::kInt));
  GAEA_RETURN_IF_ERROR(op.AddInput("ncol", TypeId::kInt));
  GAEA_RETURN_IF_ERROR(op.AddNode("to_matrix", "convert_image_matrix",
                                  {PortRef::Input("bands")}));
  GAEA_RETURN_IF_ERROR(op.AddNode("covariance", "compute_covariance",
                                  {PortRef::Node("to_matrix")}));
  GAEA_RETURN_IF_ERROR(op.AddNode("eigen", "get_eigen_vector",
                                  {PortRef::Node("covariance")}));
  GAEA_RETURN_IF_ERROR(
      op.AddNode("project", "linear_combination",
                 {PortRef::Node("to_matrix"), PortRef::Node("eigen")}));
  GAEA_RETURN_IF_ERROR(op.AddNode(
      "to_images", "convert_matrix_image",
      {PortRef::Node("project"), PortRef::Input("nrow"), PortRef::Input("ncol")}));
  GAEA_RETURN_IF_ERROR(op.SetOutput("to_images"));
  return op;
}

}  // namespace gaea
