// Compound operators (paper §2.1.3 & Figure 4): "operators can be combined
// into a self-contained compound operator that can be applied as a primitive
// mapping function between two primitive classes."
//
// A CompoundOperator is a dataflow network: named input ports, constant
// nodes, and operator nodes wired to the outputs of other nodes. Validation
// performs cycle detection and type checking against an OperatorRegistry;
// execution evaluates nodes in topological order. A validated compound
// operator can itself be registered in the OperatorRegistry, making the
// composition transparent to callers — exactly the paper's pca() example.

#ifndef GAEA_TYPES_COMPOUND_OP_H_
#define GAEA_TYPES_COMPOUND_OP_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "types/op_registry.h"
#include "types/value.h"
#include "util/status.h"

namespace gaea {

// Reference to a value flowing through the network: either an input port
// (by name) or the result of another node (by id).
struct PortRef {
  enum class Kind { kInput, kNode };
  Kind kind;
  std::string name;  // input-port name or node id

  static PortRef Input(std::string name) {
    return PortRef{Kind::kInput, std::move(name)};
  }
  static PortRef Node(std::string id) {
    return PortRef{Kind::kNode, std::move(id)};
  }
};

class CompoundOperator {
 public:
  explicit CompoundOperator(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // Declares an input port; call order defines the positional signature.
  Status AddInput(const std::string& port, TypeId type,
                  TypeId list_element = TypeId::kNull);

  // Adds a constant node (e.g. the literal 12 classes of Figure 3).
  Status AddConstant(const std::string& id, Value value);

  // Adds an operator node applying `op_name` to the referenced ports.
  Status AddNode(const std::string& id, const std::string& op_name,
                 std::vector<PortRef> inputs);

  // Designates which node's result is the compound's output.
  Status SetOutput(const std::string& node_id);

  // Topological sort + type check; must be called before Invoke. Fills in
  // the inferred result type. Idempotent.
  Status Validate(const OperatorRegistry& reg);

  // Executes the network on positional arguments.
  StatusOr<Value> Invoke(const OperatorRegistry& reg,
                         const ValueList& args) const;

  // Registers this compound as an operator named name() in `reg`. The
  // network is copied into the registered closure, so the CompoundOperator
  // may be destroyed afterwards.
  Status RegisterInto(OperatorRegistry* reg) const;

  bool validated() const { return validated_; }
  TypeId result_type() const { return result_type_; }
  size_t node_count() const { return nodes_.size(); }
  // Node ids in execution order (valid after Validate).
  const std::vector<std::string>& execution_order() const { return order_; }

 private:
  struct InputPort {
    std::string name;
    TypeId type;
    TypeId list_element;
  };
  struct Node {
    std::string id;
    bool is_constant = false;
    Value constant;
    std::string op_name;
    std::vector<PortRef> inputs;
  };

  StatusOr<const Node*> FindNode(const std::string& id) const;

  std::string name_;
  std::vector<InputPort> inputs_;
  std::map<std::string, Node> nodes_;
  std::string output_node_;
  std::vector<std::string> order_;
  TypeId result_type_ = TypeId::kNull;
  bool validated_ = false;
};

// Builds the exact Figure 4 PCA network: convert_image_matrix ->
// compute_covariance -> get_eigen_vector -> linear_combination ->
// convert_matrix_image. Inputs: (bands: list of image, nrow: int,
// ncol: int); output: list of component images.
StatusOr<CompoundOperator> BuildFigure4PcaNetwork();

}  // namespace gaea

#endif  // GAEA_TYPES_COMPOUND_OP_H_
