// Primitive-class registry: the ADT facility of the system-level semantics
// layer (paper §2.1.3). Primitive classes (int, float, string, bool, box,
// abstime, image, matrix) are registered here along with documentation; the
// registry also supports the browsing queries the paper lists in §4.2:
// "look up appropriate operators for specific primitive classes, or find the
// primitive classes that have a specific operator" (implemented together
// with OperatorRegistry).

#ifndef GAEA_TYPES_PRIMITIVE_CLASS_H_
#define GAEA_TYPES_PRIMITIVE_CLASS_H_

#include <map>
#include <string>
#include <vector>

#include "types/value.h"
#include "util/status.h"

namespace gaea {

// Descriptor of one primitive class.
struct PrimitiveClass {
  std::string name;          // canonical name, e.g. "image"
  TypeId type = TypeId::kNull;
  std::string external_repr; // e.g. "(nrows, ncols, pixtype, filepath)"
  std::string doc;
};

// Registry of primitive classes. Extensible: users may register their own
// names as aliases of canonical type ids (the paper's "users are allowed to
// define new primitive classes").
class PrimitiveClassRegistry {
 public:
  PrimitiveClassRegistry() = default;
  PrimitiveClassRegistry(const PrimitiveClassRegistry&) = delete;
  PrimitiveClassRegistry& operator=(const PrimitiveClassRegistry&) = delete;
  PrimitiveClassRegistry(PrimitiveClassRegistry&&) = default;
  PrimitiveClassRegistry& operator=(PrimitiveClassRegistry&&) = default;

  // Registers the built-in primitive classes (bool, int, float8, char16,
  // box, abstime, image, matrix).
  static PrimitiveClassRegistry WithBuiltins();

  Status Register(PrimitiveClass pc);
  StatusOr<const PrimitiveClass*> Lookup(const std::string& name) const;
  bool Contains(const std::string& name) const;

  // All registered classes, sorted by name (browsing support).
  std::vector<const PrimitiveClass*> List() const;

  // All class names sharing a canonical type id.
  std::vector<std::string> NamesForType(TypeId t) const;

  size_t size() const { return classes_.size(); }

 private:
  std::map<std::string, PrimitiveClass> classes_;
};

}  // namespace gaea

#endif  // GAEA_TYPES_PRIMITIVE_CLASS_H_
