#include "types/primitive_class.h"

namespace gaea {

PrimitiveClassRegistry PrimitiveClassRegistry::WithBuiltins() {
  PrimitiveClassRegistry reg;
  auto add = [&reg](const char* name, TypeId t, const char* repr,
                    const char* doc) {
    // Built-in names never collide; ignore the status.
    (void)reg.Register(PrimitiveClass{name, t, repr, doc});
  };
  add("bool", TypeId::kBool, "(true|false)", "boolean truth value");
  add("int4", TypeId::kInt, "(digits)", "signed integer");
  add("float8", TypeId::kDouble, "(decimal)", "double precision float");
  add("char16", TypeId::kString, "(chars)", "short string (names, units)");
  add("box", TypeId::kBox, "(x_min, y_min, x_max, y_max)",
      "axis-aligned spatial bounding box");
  add("abstime", TypeId::kTime, "(seconds-since-epoch)",
      "absolute timestamp");
  add("image", TypeId::kImage, "(nrows, ncols, pixtype, filepath)",
      "2-D raster with typed pixels");
  add("matrix", TypeId::kMatrix, "(rows, cols, doubles)",
      "dense double matrix (PCA intermediates)");
  return reg;
}

Status PrimitiveClassRegistry::Register(PrimitiveClass pc) {
  if (pc.name.empty()) {
    return Status::InvalidArgument("primitive class needs a name");
  }
  auto [it, inserted] = classes_.emplace(pc.name, std::move(pc));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("primitive class already registered: " +
                                 it->first);
  }
  return Status::OK();
}

StatusOr<const PrimitiveClass*> PrimitiveClassRegistry::Lookup(
    const std::string& name) const {
  auto it = classes_.find(name);
  if (it == classes_.end()) {
    return Status::NotFound("primitive class not registered: " + name);
  }
  return &it->second;
}

bool PrimitiveClassRegistry::Contains(const std::string& name) const {
  return classes_.count(name) > 0;
}

std::vector<const PrimitiveClass*> PrimitiveClassRegistry::List() const {
  std::vector<const PrimitiveClass*> out;
  out.reserve(classes_.size());
  for (const auto& [name, pc] : classes_) out.push_back(&pc);
  return out;
}

std::vector<std::string> PrimitiveClassRegistry::NamesForType(TypeId t) const {
  std::vector<std::string> out;
  for (const auto& [name, pc] : classes_) {
    if (pc.type == t) out.push_back(name);
  }
  return out;
}

}  // namespace gaea
