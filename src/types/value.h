// The value system of Gaea's low-level semantics layer (paper §2.1.3).
//
// Objects of *primitive classes* are value-identified: "changing the value
// of an object in a primitive class will always lead to another object".
// Value is the runtime representation of one such object. Large payloads
// (image, matrix) are held by shared_ptr-to-const so values stay cheap to
// copy while remaining immutable.

#ifndef GAEA_TYPES_VALUE_H_
#define GAEA_TYPES_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "raster/image.h"
#include "raster/matrix.h"
#include "spatial/abstime.h"
#include "spatial/box.h"
#include "util/serialize.h"
#include "util/status.h"

namespace gaea {

// Canonical primitive type ids. The paper's Postgres-era names (char16,
// int4, float4, abstime, box, image) map onto these; see TypeIdFromDdlName.
enum class TypeId : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,       // int2/int4/int8 attributes
  kDouble = 3,    // float4/float8 attributes
  kString = 4,    // char16 and text attributes
  kBox = 5,       // spatial extent
  kTime = 6,      // abstime temporal extent
  kImage = 7,     // raster payloads
  kMatrix = 8,    // linear-algebra intermediates (Figure 4)
  kList = 9,      // SETOF arguments, multi-band inputs
};

const char* TypeIdName(TypeId t);

// Maps DDL type names to canonical ids: bool, int2/int4/int8/int, float4/
// float8/float, char16/string/text, box, abstime/time, image, matrix, list.
StatusOr<TypeId> TypeIdFromDdlName(const std::string& name);

class Value;
using ValueList = std::vector<Value>;

// A dynamically typed immutable value.
class Value {
 public:
  // Null value.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Data(v)); }
  static Value Int(int64_t v) { return Value(Data(v)); }
  static Value Double(double v) { return Value(Data(v)); }
  static Value String(std::string v) { return Value(Data(std::move(v))); }
  static Value OfBox(const gaea::Box& b) { return Value(Data(b)); }
  static Value Time(AbsTime t) { return Value(Data(t)); }
  static Value OfImage(gaea::Image img) {
    return Value(Data(std::make_shared<const gaea::Image>(std::move(img))));
  }
  static Value OfImage(ImagePtr img) { return Value(Data(std::move(img))); }
  static Value OfMatrix(gaea::Matrix m) {
    return Value(Data(std::make_shared<const gaea::Matrix>(std::move(m))));
  }
  static Value OfMatrix(MatrixPtr m) { return Value(Data(std::move(m))); }
  static Value List(ValueList items);

  TypeId type() const;
  bool is_null() const { return type() == TypeId::kNull; }

  // Checked accessors: return kInvalidArgument when the type does not match.
  StatusOr<bool> AsBool() const;
  StatusOr<int64_t> AsInt() const;
  StatusOr<double> AsDouble() const;  // accepts kInt too (widening)
  StatusOr<std::string> AsString() const;
  StatusOr<gaea::Box> AsBox() const;
  StatusOr<AbsTime> AsTime() const;
  StatusOr<ImagePtr> AsImage() const;
  StatusOr<MatrixPtr> AsMatrix() const;
  StatusOr<const ValueList*> AsList() const;

  // Deep structural equality. Image/matrix payloads compare by content.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  // Debug rendering, e.g. `42`, `"africa"`, `image(64x64, float8)`.
  std::string ToString() const;

  void Serialize(BinaryWriter* w) const;
  static StatusOr<Value> Deserialize(BinaryReader* r);

 private:
  using Data = std::variant<std::monostate, bool, int64_t, double, std::string,
                            gaea::Box, AbsTime, ImagePtr, MatrixPtr,
                            std::shared_ptr<const ValueList>>;
  explicit Value(Data data) : data_(std::move(data)) {}

  Data data_;
};

}  // namespace gaea

#endif  // GAEA_TYPES_VALUE_H_
