#include "types/value.h"

#include <sstream>

#include "util/string_util.h"

namespace gaea {

const char* TypeIdName(TypeId t) {
  switch (t) {
    case TypeId::kNull: return "null";
    case TypeId::kBool: return "bool";
    case TypeId::kInt: return "int";
    case TypeId::kDouble: return "double";
    case TypeId::kString: return "string";
    case TypeId::kBox: return "box";
    case TypeId::kTime: return "abstime";
    case TypeId::kImage: return "image";
    case TypeId::kMatrix: return "matrix";
    case TypeId::kList: return "list";
  }
  return "unknown";
}

StatusOr<TypeId> TypeIdFromDdlName(const std::string& name) {
  std::string n = StrToLower(StrTrim(name));
  if (n == "bool" || n == "boolean") return TypeId::kBool;
  if (n == "int" || n == "int2" || n == "int4" || n == "int8" ||
      n == "integer") {
    return TypeId::kInt;
  }
  if (n == "float" || n == "float4" || n == "float8" || n == "double") {
    return TypeId::kDouble;
  }
  if (n == "char16" || n == "string" || n == "text" || n == "char") {
    return TypeId::kString;
  }
  if (n == "box") return TypeId::kBox;
  if (n == "abstime" || n == "time") return TypeId::kTime;
  if (n == "image") return TypeId::kImage;
  if (n == "matrix") return TypeId::kMatrix;
  if (n == "list" || n == "setof") return TypeId::kList;
  return Status::InvalidArgument("unknown DDL type name: " + name);
}

Value Value::List(ValueList items) {
  return Value(Data(std::make_shared<const ValueList>(std::move(items))));
}

TypeId Value::type() const {
  return static_cast<TypeId>(data_.index());
}

namespace {
Status TypeMismatch(TypeId want, TypeId got) {
  return Status::InvalidArgument(std::string("value type mismatch: want ") +
                                 TypeIdName(want) + ", got " +
                                 TypeIdName(got));
}
}  // namespace

StatusOr<bool> Value::AsBool() const {
  if (auto* v = std::get_if<bool>(&data_)) return *v;
  return TypeMismatch(TypeId::kBool, type());
}

StatusOr<int64_t> Value::AsInt() const {
  if (auto* v = std::get_if<int64_t>(&data_)) return *v;
  return TypeMismatch(TypeId::kInt, type());
}

StatusOr<double> Value::AsDouble() const {
  if (auto* v = std::get_if<double>(&data_)) return *v;
  if (auto* v = std::get_if<int64_t>(&data_)) {
    return static_cast<double>(*v);
  }
  return TypeMismatch(TypeId::kDouble, type());
}

StatusOr<std::string> Value::AsString() const {
  if (auto* v = std::get_if<std::string>(&data_)) return *v;
  return TypeMismatch(TypeId::kString, type());
}

StatusOr<Box> Value::AsBox() const {
  if (auto* v = std::get_if<Box>(&data_)) return *v;
  return TypeMismatch(TypeId::kBox, type());
}

StatusOr<AbsTime> Value::AsTime() const {
  if (auto* v = std::get_if<AbsTime>(&data_)) return *v;
  return TypeMismatch(TypeId::kTime, type());
}

StatusOr<ImagePtr> Value::AsImage() const {
  if (auto* v = std::get_if<ImagePtr>(&data_)) return *v;
  return TypeMismatch(TypeId::kImage, type());
}

StatusOr<MatrixPtr> Value::AsMatrix() const {
  if (auto* v = std::get_if<MatrixPtr>(&data_)) return *v;
  return TypeMismatch(TypeId::kMatrix, type());
}

StatusOr<const ValueList*> Value::AsList() const {
  if (auto* v = std::get_if<std::shared_ptr<const ValueList>>(&data_)) {
    return v->get();
  }
  return TypeMismatch(TypeId::kList, type());
}

bool Value::operator==(const Value& other) const {
  if (type() != other.type()) return false;
  switch (type()) {
    case TypeId::kNull:
      return true;
    case TypeId::kBool:
      return std::get<bool>(data_) == std::get<bool>(other.data_);
    case TypeId::kInt:
      return std::get<int64_t>(data_) == std::get<int64_t>(other.data_);
    case TypeId::kDouble:
      return std::get<double>(data_) == std::get<double>(other.data_);
    case TypeId::kString:
      return std::get<std::string>(data_) == std::get<std::string>(other.data_);
    case TypeId::kBox:
      return std::get<Box>(data_) == std::get<Box>(other.data_);
    case TypeId::kTime:
      return std::get<AbsTime>(data_) == std::get<AbsTime>(other.data_);
    case TypeId::kImage: {
      const auto& a = std::get<ImagePtr>(data_);
      const auto& b = std::get<ImagePtr>(other.data_);
      if (a == b) return true;
      if (!a || !b) return false;
      return *a == *b;
    }
    case TypeId::kMatrix: {
      const auto& a = std::get<MatrixPtr>(data_);
      const auto& b = std::get<MatrixPtr>(other.data_);
      if (a == b) return true;
      if (!a || !b) return false;
      return *a == *b;
    }
    case TypeId::kList: {
      const auto& a = std::get<std::shared_ptr<const ValueList>>(data_);
      const auto& b = std::get<std::shared_ptr<const ValueList>>(other.data_);
      if (a == b) return true;
      if (!a || !b) return false;
      return *a == *b;
    }
  }
  return false;
}

std::string Value::ToString() const {
  switch (type()) {
    case TypeId::kNull:
      return "null";
    case TypeId::kBool:
      return std::get<bool>(data_) ? "true" : "false";
    case TypeId::kInt:
      return std::to_string(std::get<int64_t>(data_));
    case TypeId::kDouble: {
      std::ostringstream os;
      os << std::get<double>(data_);
      return os.str();
    }
    case TypeId::kString:
      return "\"" + std::get<std::string>(data_) + "\"";
    case TypeId::kBox:
      return std::get<Box>(data_).ToString();
    case TypeId::kTime:
      return std::get<AbsTime>(data_).ToString();
    case TypeId::kImage: {
      const auto& p = std::get<ImagePtr>(data_);
      return p ? p->ToString() : "image(null)";
    }
    case TypeId::kMatrix: {
      const auto& p = std::get<MatrixPtr>(data_);
      return p ? p->ToString() : "matrix(null)";
    }
    case TypeId::kList: {
      const auto& p = std::get<std::shared_ptr<const ValueList>>(data_);
      std::string out = "[";
      if (p) {
        for (size_t i = 0; i < p->size(); ++i) {
          if (i > 0) out += ", ";
          out += (*p)[i].ToString();
        }
      }
      out += "]";
      return out;
    }
  }
  return "?";
}

void Value::Serialize(BinaryWriter* w) const {
  w->PutU8(static_cast<uint8_t>(type()));
  switch (type()) {
    case TypeId::kNull:
      return;
    case TypeId::kBool:
      w->PutBool(std::get<bool>(data_));
      return;
    case TypeId::kInt:
      w->PutI64(std::get<int64_t>(data_));
      return;
    case TypeId::kDouble:
      w->PutF64(std::get<double>(data_));
      return;
    case TypeId::kString:
      w->PutString(std::get<std::string>(data_));
      return;
    case TypeId::kBox:
      std::get<Box>(data_).Serialize(w);
      return;
    case TypeId::kTime:
      std::get<AbsTime>(data_).Serialize(w);
      return;
    case TypeId::kImage: {
      const auto& p = std::get<ImagePtr>(data_);
      if (p) {
        p->Serialize(w);
      } else {
        Image().Serialize(w);
      }
      return;
    }
    case TypeId::kMatrix: {
      const auto& p = std::get<MatrixPtr>(data_);
      if (p) {
        p->Serialize(w);
      } else {
        Matrix().Serialize(w);
      }
      return;
    }
    case TypeId::kList: {
      const auto& p = std::get<std::shared_ptr<const ValueList>>(data_);
      uint32_t n = p ? static_cast<uint32_t>(p->size()) : 0;
      w->PutU32(n);
      if (p) {
        for (const Value& v : *p) v.Serialize(w);
      }
      return;
    }
  }
}

StatusOr<Value> Value::Deserialize(BinaryReader* r) {
  GAEA_ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
  if (tag > static_cast<uint8_t>(TypeId::kList)) {
    return Status::Corruption("bad value type tag " + std::to_string(tag));
  }
  switch (static_cast<TypeId>(tag)) {
    case TypeId::kNull:
      return Value::Null();
    case TypeId::kBool: {
      GAEA_ASSIGN_OR_RETURN(bool v, r->GetBool());
      return Value::Bool(v);
    }
    case TypeId::kInt: {
      GAEA_ASSIGN_OR_RETURN(int64_t v, r->GetI64());
      return Value::Int(v);
    }
    case TypeId::kDouble: {
      GAEA_ASSIGN_OR_RETURN(double v, r->GetF64());
      return Value::Double(v);
    }
    case TypeId::kString: {
      GAEA_ASSIGN_OR_RETURN(std::string v, r->GetString());
      return Value::String(std::move(v));
    }
    case TypeId::kBox: {
      GAEA_ASSIGN_OR_RETURN(Box v, Box::Deserialize(r));
      return Value::OfBox(v);
    }
    case TypeId::kTime: {
      GAEA_ASSIGN_OR_RETURN(AbsTime v, AbsTime::Deserialize(r));
      return Value::Time(v);
    }
    case TypeId::kImage: {
      GAEA_ASSIGN_OR_RETURN(Image v, Image::Deserialize(r));
      return Value::OfImage(std::move(v));
    }
    case TypeId::kMatrix: {
      GAEA_ASSIGN_OR_RETURN(Matrix v, Matrix::Deserialize(r));
      return Value::OfMatrix(std::move(v));
    }
    case TypeId::kList: {
      GAEA_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
      ValueList items;
      items.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        GAEA_ASSIGN_OR_RETURN(Value v, Value::Deserialize(r));
        items.push_back(std::move(v));
      }
      return Value::List(std::move(items));
    }
  }
  return Status::Corruption("unreachable value tag");
}

}  // namespace gaea
