// Operator registry: "functions on primitive classes are called operators"
// (paper §2.1.3). Operators are pure functions from a list of Values to a
// Value; processes in the derivation layer are compiled down to applications
// of these operators, and compound operators (compound_op.h) are dataflow
// networks over them.
//
// The registry supports overloading by signature, variadic (SETOF) inputs,
// and the browsing queries of §4.2: operators applicable to a primitive
// class, and classes having a given operator.

#ifndef GAEA_TYPES_OP_REGISTRY_H_
#define GAEA_TYPES_OP_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "types/value.h"
#include "util/status.h"

namespace gaea {

// Implementation of one operator overload.
using OperatorFn = std::function<StatusOr<Value>(const ValueList&)>;

// One overload of an operator.
struct OperatorSignature {
  // Fixed parameter types. A kList parameter accepts a Value list whose
  // elements are `list_element` typed (kNull means "any").
  std::vector<TypeId> params;
  TypeId list_element = TypeId::kNull;
  // When true, the last parameter type repeats zero or more times
  // (variadic tail), e.g. composite(image...).
  bool variadic = false;
  TypeId result = TypeId::kNull;
  OperatorFn fn;
  std::string doc;
};

// A named operator: one or more overloads.
struct OperatorDef {
  std::string name;
  std::vector<OperatorSignature> overloads;
};

class OperatorRegistry {
 public:
  OperatorRegistry() = default;
  OperatorRegistry(const OperatorRegistry&) = delete;
  OperatorRegistry& operator=(const OperatorRegistry&) = delete;
  OperatorRegistry(OperatorRegistry&&) = default;
  OperatorRegistry& operator=(OperatorRegistry&&) = default;

  // Registers one overload under `name`. Rejects an exact duplicate
  // signature for the same name.
  Status Register(const std::string& name, OperatorSignature sig);

  bool Contains(const std::string& name) const;
  StatusOr<const OperatorDef*> Lookup(const std::string& name) const;

  // Selects the overload matching the argument types and invokes it.
  StatusOr<Value> Invoke(const std::string& name, const ValueList& args) const;

  // Type-checks a call without executing it: returns the result type of the
  // overload that would be selected for the given argument types.
  StatusOr<TypeId> ResultType(const std::string& name,
                              const std::vector<TypeId>& arg_types) const;

  // Browsing (paper §4.2): all operator names, operators accepting a value
  // of type `t` in any parameter slot, and parameter types used by an
  // operator name.
  std::vector<std::string> ListNames() const;
  std::vector<std::string> OperatorsForType(TypeId t) const;
  std::vector<TypeId> TypesForOperator(const std::string& name) const;

  size_t size() const { return ops_.size(); }

 private:
  // Returns the matching overload or nullptr.
  const OperatorSignature* Match(const OperatorDef& def,
                                 const std::vector<TypeId>& arg_types) const;

  std::map<std::string, OperatorDef> ops_;
};

// Registers all built-in Gaea operators (arithmetic, comparison, spatial,
// temporal, image analysis) into `reg`. Defined in builtin_ops.cc.
Status RegisterBuiltinOperators(OperatorRegistry* reg);

}  // namespace gaea

#endif  // GAEA_TYPES_OP_REGISTRY_H_
