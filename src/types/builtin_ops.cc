// Built-in operator vocabulary of the Gaea system-level layer. Names follow
// the paper where it names them (img_nrow, img_size_eq, composite,
// unsuperclassify, pca; Figure 4's convert-image-matrix pipeline uses '_'
// in place of '-').

#include <cmath>

#include "raster/classify.h"
#include "raster/image_ops.h"
#include "raster/pca.h"
#include "raster/watershed.h"
#include "types/op_registry.h"

namespace gaea {

namespace {

// Unwraps a list-of-images argument into borrowed pointers. The returned
// pointers alias `args`; keep `keepalive` in scope while using them.
StatusOr<std::vector<const Image*>> ImageListArg(const Value& v,
                                                 std::vector<ImagePtr>* keepalive) {
  GAEA_ASSIGN_OR_RETURN(const ValueList* items, v.AsList());
  std::vector<const Image*> out;
  out.reserve(items->size());
  for (const Value& item : *items) {
    GAEA_ASSIGN_OR_RETURN(ImagePtr img, item.AsImage());
    if (!img) return Status::InvalidArgument("null image in list");
    keepalive->push_back(img);
    out.push_back(img.get());
  }
  return out;
}

Status RegisterArithmetic(OperatorRegistry* reg) {
  struct ArithOp {
    const char* name;
    double (*fn)(double, double);
  };
  static constexpr ArithOp kOps[] = {
      {"add", [](double a, double b) { return a + b; }},
      {"sub", [](double a, double b) { return a - b; }},
      {"mul", [](double a, double b) { return a * b; }},
  };
  for (const ArithOp& op : kOps) {
    auto fn = op.fn;
    GAEA_RETURN_IF_ERROR(reg->Register(
        op.name,
        OperatorSignature{{TypeId::kDouble, TypeId::kDouble},
                          TypeId::kNull,
                          false,
                          TypeId::kDouble,
                          [fn](const ValueList& args) -> StatusOr<Value> {
                            GAEA_ASSIGN_OR_RETURN(double a, args[0].AsDouble());
                            GAEA_ASSIGN_OR_RETURN(double b, args[1].AsDouble());
                            return Value::Double(fn(a, b));
                          },
                          "scalar arithmetic"}));
  }
  GAEA_RETURN_IF_ERROR(reg->Register(
      "div",
      OperatorSignature{{TypeId::kDouble, TypeId::kDouble},
                        TypeId::kNull,
                        false,
                        TypeId::kDouble,
                        [](const ValueList& args) -> StatusOr<Value> {
                          GAEA_ASSIGN_OR_RETURN(double a, args[0].AsDouble());
                          GAEA_ASSIGN_OR_RETURN(double b, args[1].AsDouble());
                          if (b == 0.0) {
                            return Status::InvalidArgument("division by zero");
                          }
                          return Value::Double(a / b);
                        },
                        "scalar division"}));
  struct CmpOp {
    const char* name;
    bool (*fn)(double, double);
  };
  static constexpr CmpOp kCmps[] = {
      {"lt", [](double a, double b) { return a < b; }},
      {"le", [](double a, double b) { return a <= b; }},
      {"gt", [](double a, double b) { return a > b; }},
      {"ge", [](double a, double b) { return a >= b; }},
      {"eq", [](double a, double b) { return a == b; }},
      {"ne", [](double a, double b) { return a != b; }},
  };
  for (const CmpOp& op : kCmps) {
    auto fn = op.fn;
    GAEA_RETURN_IF_ERROR(reg->Register(
        op.name,
        OperatorSignature{{TypeId::kDouble, TypeId::kDouble},
                          TypeId::kNull,
                          false,
                          TypeId::kBool,
                          [fn](const ValueList& args) -> StatusOr<Value> {
                            GAEA_ASSIGN_OR_RETURN(double a, args[0].AsDouble());
                            GAEA_ASSIGN_OR_RETURN(double b, args[1].AsDouble());
                            return Value::Bool(fn(a, b));
                          },
                          "scalar comparison"}));
  }
  return Status::OK();
}

Status RegisterImageAccessors(OperatorRegistry* reg) {
  auto img_unary_int = [reg](const char* name,
                             int64_t (*fn)(const Image&)) -> Status {
    return reg->Register(
        name, OperatorSignature{{TypeId::kImage},
                                TypeId::kNull,
                                false,
                                TypeId::kInt,
                                [fn](const ValueList& args) -> StatusOr<Value> {
                                  GAEA_ASSIGN_OR_RETURN(ImagePtr img,
                                                        args[0].AsImage());
                                  return Value::Int(fn(*img));
                                },
                                "image accessor"});
  };
  GAEA_RETURN_IF_ERROR(img_unary_int(
      "img_nrow", [](const Image& i) { return static_cast<int64_t>(i.nrow()); }));
  GAEA_RETURN_IF_ERROR(img_unary_int(
      "img_ncol", [](const Image& i) { return static_cast<int64_t>(i.ncol()); }));
  GAEA_RETURN_IF_ERROR(reg->Register(
      "img_type",
      OperatorSignature{{TypeId::kImage},
                        TypeId::kNull,
                        false,
                        TypeId::kString,
                        [](const ValueList& args) -> StatusOr<Value> {
                          GAEA_ASSIGN_OR_RETURN(ImagePtr img, args[0].AsImage());
                          return Value::String(PixelTypeName(img->pixel_type()));
                        },
                        "pixel data type name"}));
  GAEA_RETURN_IF_ERROR(reg->Register(
      "img_size_eq",
      OperatorSignature{{TypeId::kImage, TypeId::kImage},
                        TypeId::kNull,
                        false,
                        TypeId::kBool,
                        [](const ValueList& args) -> StatusOr<Value> {
                          GAEA_ASSIGN_OR_RETURN(ImagePtr a, args[0].AsImage());
                          GAEA_ASSIGN_OR_RETURN(ImagePtr b, args[1].AsImage());
                          return Value::Bool(a->SameShape(*b));
                        },
                        "check if two image sizes are equal"}));
  GAEA_RETURN_IF_ERROR(reg->Register(
      "img_mean",
      OperatorSignature{{TypeId::kImage},
                        TypeId::kNull,
                        false,
                        TypeId::kDouble,
                        [](const ValueList& args) -> StatusOr<Value> {
                          GAEA_ASSIGN_OR_RETURN(ImagePtr img, args[0].AsImage());
                          return Value::Double(img->ComputeStats().mean);
                        },
                        "mean pixel value"}));
  return Status::OK();
}

Status RegisterImageMath(OperatorRegistry* reg) {
  struct BinOp {
    const char* name;
    StatusOr<Image> (*fn)(const Image&, const Image&);
    const char* doc;
  };
  static const BinOp kOps[] = {
      {"img_add", +[](const Image& a, const Image& b) { return ImgAdd(a, b); },
       "pixel-wise sum"},
      {"img_sub",
       +[](const Image& a, const Image& b) { return ImgSubtract(a, b); },
       "pixel-wise difference"},
      {"img_mul",
       +[](const Image& a, const Image& b) { return ImgMultiply(a, b); },
       "pixel-wise product"},
      {"img_div",
       +[](const Image& a, const Image& b) { return ImgDivide(a, b, 1e-12); },
       "pixel-wise ratio (0 where denominator is 0)"},
      {"ndvi", +[](const Image& a, const Image& b) { return Ndvi(a, b); },
       "normalized difference vegetation index (nir, red)"},
  };
  for (const BinOp& op : kOps) {
    auto fn = op.fn;
    GAEA_RETURN_IF_ERROR(reg->Register(
        op.name,
        OperatorSignature{{TypeId::kImage, TypeId::kImage},
                          TypeId::kNull,
                          false,
                          TypeId::kImage,
                          [fn](const ValueList& args) -> StatusOr<Value> {
                            GAEA_ASSIGN_OR_RETURN(ImagePtr a, args[0].AsImage());
                            GAEA_ASSIGN_OR_RETURN(ImagePtr b, args[1].AsImage());
                            GAEA_ASSIGN_OR_RETURN(Image out, fn(*a, *b));
                            return Value::OfImage(std::move(out));
                          },
                          op.doc}));
  }
  GAEA_RETURN_IF_ERROR(reg->Register(
      "img_scale",
      OperatorSignature{{TypeId::kImage, TypeId::kDouble},
                        TypeId::kNull,
                        false,
                        TypeId::kImage,
                        [](const ValueList& args) -> StatusOr<Value> {
                          GAEA_ASSIGN_OR_RETURN(ImagePtr a, args[0].AsImage());
                          GAEA_ASSIGN_OR_RETURN(double f, args[1].AsDouble());
                          GAEA_ASSIGN_OR_RETURN(Image out, ImgScale(*a, f));
                          return Value::OfImage(std::move(out));
                        },
                        "multiply pixels by a scalar"}));
  GAEA_RETURN_IF_ERROR(reg->Register(
      "img_threshold",
      OperatorSignature{{TypeId::kImage, TypeId::kDouble},
                        TypeId::kNull,
                        false,
                        TypeId::kImage,
                        [](const ValueList& args) -> StatusOr<Value> {
                          GAEA_ASSIGN_OR_RETURN(ImagePtr a, args[0].AsImage());
                          GAEA_ASSIGN_OR_RETURN(double t, args[1].AsDouble());
                          GAEA_ASSIGN_OR_RETURN(Image out, Threshold(*a, t));
                          return Value::OfImage(std::move(out));
                        },
                        "binary threshold"}));
  GAEA_RETURN_IF_ERROR(reg->Register(
      "img_blend",
      OperatorSignature{{TypeId::kImage, TypeId::kImage, TypeId::kDouble},
                        TypeId::kNull,
                        false,
                        TypeId::kImage,
                        [](const ValueList& args) -> StatusOr<Value> {
                          GAEA_ASSIGN_OR_RETURN(ImagePtr a, args[0].AsImage());
                          GAEA_ASSIGN_OR_RETURN(ImagePtr b, args[1].AsImage());
                          GAEA_ASSIGN_OR_RETURN(double w, args[2].AsDouble());
                          GAEA_ASSIGN_OR_RETURN(Image out,
                                                BlendLinear(*a, *b, w));
                          return Value::OfImage(std::move(out));
                        },
                        "linear temporal interpolation between snapshots"}));
  return Status::OK();
}

Status RegisterAnalysis(OperatorRegistry* reg) {
  // composite(list of images) -> list of float8 images (validated stack).
  GAEA_RETURN_IF_ERROR(reg->Register(
      "composite",
      OperatorSignature{
          {TypeId::kList},
          TypeId::kImage,
          false,
          TypeId::kList,
          [](const ValueList& args) -> StatusOr<Value> {
            std::vector<ImagePtr> keep;
            GAEA_ASSIGN_OR_RETURN(std::vector<const Image*> bands,
                                  ImageListArg(args[0], &keep));
            GAEA_ASSIGN_OR_RETURN(std::vector<Image> stack, Composite(bands));
            ValueList out;
            out.reserve(stack.size());
            for (Image& img : stack) out.push_back(Value::OfImage(std::move(img)));
            return Value::List(std::move(out));
          },
          "stack co-registered bands (Figure 3)"}));

  // unsuperclassify(list, k) -> label image (Figure 3, process P20).
  GAEA_RETURN_IF_ERROR(reg->Register(
      "unsuperclassify",
      OperatorSignature{
          {TypeId::kList, TypeId::kInt},
          TypeId::kImage,
          false,
          TypeId::kImage,
          [](const ValueList& args) -> StatusOr<Value> {
            std::vector<ImagePtr> keep;
            GAEA_ASSIGN_OR_RETURN(std::vector<const Image*> bands,
                                  ImageListArg(args[0], &keep));
            GAEA_ASSIGN_OR_RETURN(int64_t k, args[1].AsInt());
            GAEA_ASSIGN_OR_RETURN(
                Image out, UnsupervisedClassify(bands, static_cast<int>(k)));
            return Value::OfImage(std::move(out));
          },
          "k-means unsupervised classification (Figure 3)"}));

  // maxlike(list, training image) -> label image.
  GAEA_RETURN_IF_ERROR(reg->Register(
      "maxlike",
      OperatorSignature{
          {TypeId::kList, TypeId::kImage},
          TypeId::kImage,
          false,
          TypeId::kImage,
          [](const ValueList& args) -> StatusOr<Value> {
            std::vector<ImagePtr> keep;
            GAEA_ASSIGN_OR_RETURN(std::vector<const Image*> bands,
                                  ImageListArg(args[0], &keep));
            GAEA_ASSIGN_OR_RETURN(ImagePtr training, args[1].AsImage());
            GAEA_ASSIGN_OR_RETURN(Image out,
                                  MaxLikelihoodClassify(bands, *training));
            return Value::OfImage(std::move(out));
          },
          "maximum likelihood supervised classification"}));

  // changemap(before, after, num_classes) -> change label image (Figure 5).
  GAEA_RETURN_IF_ERROR(reg->Register(
      "changemap",
      OperatorSignature{
          {TypeId::kImage, TypeId::kImage, TypeId::kInt},
          TypeId::kNull,
          false,
          TypeId::kImage,
          [](const ValueList& args) -> StatusOr<Value> {
            GAEA_ASSIGN_OR_RETURN(ImagePtr a, args[0].AsImage());
            GAEA_ASSIGN_OR_RETURN(ImagePtr b, args[1].AsImage());
            GAEA_ASSIGN_OR_RETURN(int64_t k, args[2].AsInt());
            GAEA_ASSIGN_OR_RETURN(Image out,
                                  ChangeMap(*a, *b, static_cast<int>(k)));
            return Value::OfImage(std::move(out));
          },
          "label-transition change map (Figure 5)"}));

  // watershed(elevation) -> basin label image (Vincent & Soille [39]).
  GAEA_RETURN_IF_ERROR(reg->Register(
      "watershed",
      OperatorSignature{
          {TypeId::kImage},
          TypeId::kNull,
          false,
          TypeId::kImage,
          [](const ValueList& args) -> StatusOr<Value> {
            GAEA_ASSIGN_OR_RETURN(ImagePtr elevation, args[0].AsImage());
            GAEA_ASSIGN_OR_RETURN(WatershedResult result,
                                  Watershed(*elevation));
            return Value::OfImage(std::move(result.labels));
          },
          "immersion watershed segmentation into catchment basins"}));

  // pca(list, n) / spca(list, n) -> list of component images.
  for (bool standardized : {false, true}) {
    GAEA_RETURN_IF_ERROR(reg->Register(
        standardized ? "spca" : "pca",
        OperatorSignature{
            {TypeId::kList, TypeId::kInt},
            TypeId::kImage,
            false,
            TypeId::kList,
            [standardized](const ValueList& args) -> StatusOr<Value> {
              std::vector<ImagePtr> keep;
              GAEA_ASSIGN_OR_RETURN(std::vector<const Image*> bands,
                                    ImageListArg(args[0], &keep));
              GAEA_ASSIGN_OR_RETURN(int64_t n, args[1].AsInt());
              GAEA_ASSIGN_OR_RETURN(
                  PcaResult res,
                  standardized ? Spca(bands, static_cast<int>(n))
                               : Pca(bands, static_cast<int>(n)));
              ValueList out;
              out.reserve(res.components.size());
              for (Image& img : res.components) {
                out.push_back(Value::OfImage(std::move(img)));
              }
              return Value::List(std::move(out));
            },
            standardized ? "standardized principal components (Eastman SPCA)"
                         : "principal components (Figure 4)"}));
  }

  // Figure 4's individual pipeline stages, exposed as first-class operators
  // so compound operators can be assembled exactly as drawn.
  GAEA_RETURN_IF_ERROR(reg->Register(
      "convert_image_matrix",
      OperatorSignature{
          {TypeId::kList},
          TypeId::kImage,
          false,
          TypeId::kMatrix,
          [](const ValueList& args) -> StatusOr<Value> {
            std::vector<ImagePtr> keep;
            GAEA_ASSIGN_OR_RETURN(std::vector<const Image*> bands,
                                  ImageListArg(args[0], &keep));
            GAEA_ASSIGN_OR_RETURN(Matrix m, ImagesToMatrix(bands));
            return Value::OfMatrix(std::move(m));
          },
          "stack band pixels into an observation matrix (Figure 4)"}));
  GAEA_RETURN_IF_ERROR(reg->Register(
      "compute_covariance",
      OperatorSignature{{TypeId::kMatrix},
                        TypeId::kNull,
                        false,
                        TypeId::kMatrix,
                        [](const ValueList& args) -> StatusOr<Value> {
                          GAEA_ASSIGN_OR_RETURN(MatrixPtr m, args[0].AsMatrix());
                          GAEA_ASSIGN_OR_RETURN(Matrix cov, m->Covariance());
                          return Value::OfMatrix(std::move(cov));
                        },
                        "column covariance of observations (Figure 4)"}));
  GAEA_RETURN_IF_ERROR(reg->Register(
      "get_eigen_vector",
      OperatorSignature{{TypeId::kMatrix},
                        TypeId::kNull,
                        false,
                        TypeId::kMatrix,
                        [](const ValueList& args) -> StatusOr<Value> {
                          GAEA_ASSIGN_OR_RETURN(MatrixPtr m, args[0].AsMatrix());
                          GAEA_ASSIGN_OR_RETURN(Matrix::Eigen eig,
                                                m->SymmetricEigen());
                          return Value::OfMatrix(std::move(eig.vectors));
                        },
                        "eigenvectors (columns, descending) (Figure 4)"}));
  GAEA_RETURN_IF_ERROR(reg->Register(
      "linear_combination",
      OperatorSignature{
          {TypeId::kMatrix, TypeId::kMatrix},
          TypeId::kNull,
          false,
          TypeId::kMatrix,
          [](const ValueList& args) -> StatusOr<Value> {
            GAEA_ASSIGN_OR_RETURN(MatrixPtr a, args[0].AsMatrix());
            GAEA_ASSIGN_OR_RETURN(MatrixPtr b, args[1].AsMatrix());
            GAEA_ASSIGN_OR_RETURN(Matrix out, LinearCombination(*a, *b));
            return Value::OfMatrix(std::move(out));
          },
          "project observations onto loading columns (Figure 4)"}));
  GAEA_RETURN_IF_ERROR(reg->Register(
      "convert_matrix_image",
      OperatorSignature{
          {TypeId::kMatrix, TypeId::kInt, TypeId::kInt},
          TypeId::kNull,
          false,
          TypeId::kList,
          [](const ValueList& args) -> StatusOr<Value> {
            GAEA_ASSIGN_OR_RETURN(MatrixPtr m, args[0].AsMatrix());
            GAEA_ASSIGN_OR_RETURN(int64_t nrow, args[1].AsInt());
            GAEA_ASSIGN_OR_RETURN(int64_t ncol, args[2].AsInt());
            GAEA_ASSIGN_OR_RETURN(
                std::vector<Image> imgs,
                MatrixToImages(*m, static_cast<int>(nrow),
                               static_cast<int>(ncol)));
            ValueList out;
            for (Image& img : imgs) out.push_back(Value::OfImage(std::move(img)));
            return Value::List(std::move(out));
          },
          "unstack matrix columns into images (Figure 4)"}));
  return Status::OK();
}

Status RegisterSpatialTemporal(OperatorRegistry* reg) {
  GAEA_RETURN_IF_ERROR(reg->Register(
      "box_overlaps",
      OperatorSignature{{TypeId::kBox, TypeId::kBox},
                        TypeId::kNull,
                        false,
                        TypeId::kBool,
                        [](const ValueList& args) -> StatusOr<Value> {
                          GAEA_ASSIGN_OR_RETURN(Box a, args[0].AsBox());
                          GAEA_ASSIGN_OR_RETURN(Box b, args[1].AsBox());
                          return Value::Bool(a.Overlaps(b));
                        },
                        "spatial extent overlap"}));
  GAEA_RETURN_IF_ERROR(reg->Register(
      "box_union",
      OperatorSignature{{TypeId::kBox, TypeId::kBox},
                        TypeId::kNull,
                        false,
                        TypeId::kBox,
                        [](const ValueList& args) -> StatusOr<Value> {
                          GAEA_ASSIGN_OR_RETURN(Box a, args[0].AsBox());
                          GAEA_ASSIGN_OR_RETURN(Box b, args[1].AsBox());
                          return Value::OfBox(a.Union(b));
                        },
                        "bounding union of extents"}));
  GAEA_RETURN_IF_ERROR(reg->Register(
      "box_intersect",
      OperatorSignature{{TypeId::kBox, TypeId::kBox},
                        TypeId::kNull,
                        false,
                        TypeId::kBox,
                        [](const ValueList& args) -> StatusOr<Value> {
                          GAEA_ASSIGN_OR_RETURN(Box a, args[0].AsBox());
                          GAEA_ASSIGN_OR_RETURN(Box b, args[1].AsBox());
                          return Value::OfBox(a.Intersect(b));
                        },
                        "intersection of extents"}));
  GAEA_RETURN_IF_ERROR(reg->Register(
      "box_area",
      OperatorSignature{{TypeId::kBox},
                        TypeId::kNull,
                        false,
                        TypeId::kDouble,
                        [](const ValueList& args) -> StatusOr<Value> {
                          GAEA_ASSIGN_OR_RETURN(Box a, args[0].AsBox());
                          return Value::Double(a.Area());
                        },
                        "area of an extent"}));
  GAEA_RETURN_IF_ERROR(reg->Register(
      "time_diff",
      OperatorSignature{{TypeId::kTime, TypeId::kTime},
                        TypeId::kNull,
                        false,
                        TypeId::kInt,
                        [](const ValueList& args) -> StatusOr<Value> {
                          GAEA_ASSIGN_OR_RETURN(AbsTime a, args[0].AsTime());
                          GAEA_ASSIGN_OR_RETURN(AbsTime b, args[1].AsTime());
                          return Value::Int(a - b);
                        },
                        "seconds between timestamps"}));
  return Status::OK();
}

}  // namespace

Status RegisterBuiltinOperators(OperatorRegistry* reg) {
  GAEA_RETURN_IF_ERROR(RegisterArithmetic(reg));
  GAEA_RETURN_IF_ERROR(RegisterImageAccessors(reg));
  GAEA_RETURN_IF_ERROR(RegisterImageMath(reg));
  GAEA_RETURN_IF_ERROR(RegisterAnalysis(reg));
  GAEA_RETURN_IF_ERROR(RegisterSpatialTemporal(reg));
  return Status::OK();
}

}  // namespace gaea
