// Spatial reference systems for Gaea classes (the `ref_system` / `ref_unit`
// attributes of the paper's landcover example). We support the two systems
// the paper names (long/lat and UTM) plus a generic local grid, with a
// simple equirectangular conversion between geographic and projected
// coordinates so that extents expressed in different systems can be compared.

#ifndef GAEA_SPATIAL_REF_SYSTEM_H_
#define GAEA_SPATIAL_REF_SYSTEM_H_

#include <string>

#include "spatial/box.h"
#include "util/status.h"

namespace gaea {

enum class RefSystem {
  kLongLat,   // degrees
  kUtm,       // meters within a zone; we model a single abstract zone
  kLocalGrid, // scene-local pixel/meter grid
};

// Parses "long/lat", "longlat", "utm", "local" (case-insensitive).
StatusOr<RefSystem> RefSystemFromString(const std::string& s);
const char* RefSystemName(RefSystem rs);

// Canonical unit of each system ("degree", "meter").
const char* RefSystemUnit(RefSystem rs);

// Converts a box between reference systems using an equirectangular
// approximation anchored at `anchor_lat_deg` (degrees). Sufficient for
// extent-overlap guard checks; not a cartographic projection library.
StatusOr<Box> ConvertBox(const Box& box, RefSystem from, RefSystem to,
                         double anchor_lat_deg = 0.0);

}  // namespace gaea

#endif  // GAEA_SPATIAL_REF_SYSTEM_H_
