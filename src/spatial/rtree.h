// In-memory R-tree over object spatial extents.
//
// Gaea is a spatio-temporal DBMS: queries routinely carry a REGION OVERLAPS
// window, and the catalog must find candidate objects without deserializing
// every raster in the class. This is a classic Guttman R-tree with
// quadratic-split insertion and lazy deletion; entries map a Box to an
// opaque 64-bit payload (an OID).
//
// The tree is rebuilt from the catalog's objects on open (extents live in
// the stored tuples; the tree is a volatile acceleration structure, like
// Postgres' in-memory relcache of the era).

#ifndef GAEA_SPATIAL_RTREE_H_
#define GAEA_SPATIAL_RTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "spatial/box.h"
#include "util/status.h"

namespace gaea {

class RTree {
 public:
  // `max_entries` per node (min is half of it).
  explicit RTree(int max_entries = 8);
  ~RTree();

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  // Inserts an entry. Empty boxes are rejected (they overlap nothing, so
  // indexing them would silently hide the object from region queries).
  Status Insert(const Box& box, uint64_t value);

  // Removes the exact (box, value) entry. kNotFound if absent.
  Status Remove(const Box& box, uint64_t value);

  // Visits every entry whose box overlaps `query`.
  Status Search(const Box& query,
                const std::function<Status(const Box&, uint64_t)>& fn) const;

  // All payloads overlapping `query`, ascending.
  std::vector<uint64_t> SearchValues(const Box& query) const;

  size_t size() const { return size_; }
  int height() const;

  // Internal consistency check (every child MBR within its parent's), for
  // tests: returns kInternal on violation.
  Status CheckInvariants() const;

 private:
  struct Node;
  struct Entry;

  Node* ChooseLeaf(Node* node, const Box& box) const;
  void SplitNode(Node* node);
  void AdjustUpward(Node* node);
  static Box NodeMbr(const Node& node);

  int max_entries_;
  int min_entries_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace gaea

#endif  // GAEA_SPATIAL_RTREE_H_
