// Temporal extent support: the `abstime` primitive class (paper §2.1.1,
// landcover TEMPORAL EXTENT) and time intervals with Allen's interval
// relations [Allen 83], which the paper cites as the temporal semantics Gaea
// builds on.

#ifndef GAEA_SPATIAL_ABSTIME_H_
#define GAEA_SPATIAL_ABSTIME_H_

#include <cstdint>
#include <string>

#include "util/serialize.h"
#include "util/status.h"

namespace gaea {

// Absolute time: seconds since the epoch. A thin strong typedef so temporal
// attributes cannot be confused with plain integers in mappings.
class AbsTime {
 public:
  AbsTime() = default;
  explicit AbsTime(int64_t seconds) : seconds_(seconds) {}

  // Builds from a calendar date (proleptic Gregorian, UTC). Validates ranges.
  static StatusOr<AbsTime> FromDate(int year, int month, int day, int hour = 0,
                                    int minute = 0, int second = 0);

  int64_t seconds() const { return seconds_; }

  AbsTime operator+(int64_t delta_seconds) const {
    return AbsTime(seconds_ + delta_seconds);
  }
  int64_t operator-(const AbsTime& other) const {
    return seconds_ - other.seconds_;
  }

  auto operator<=>(const AbsTime& other) const = default;

  // "YYYY-MM-DDThh:mm:ss".
  std::string ToString() const;

  void Serialize(BinaryWriter* w) const { w->PutI64(seconds_); }
  static StatusOr<AbsTime> Deserialize(BinaryReader* r);

 private:
  int64_t seconds_ = 0;
};

// Allen's thirteen interval relations.
enum class AllenRelation {
  kBefore,
  kAfter,
  kMeets,
  kMetBy,
  kOverlaps,
  kOverlappedBy,
  kStarts,
  kStartedBy,
  kDuring,
  kContains,
  kFinishes,
  kFinishedBy,
  kEquals,
};

const char* AllenRelationName(AllenRelation r);

// Closed time interval [begin, end].
class TimeInterval {
 public:
  TimeInterval() = default;
  TimeInterval(AbsTime begin, AbsTime end);

  static TimeInterval Instant(AbsTime t) { return TimeInterval(t, t); }

  AbsTime begin() const { return begin_; }
  AbsTime end() const { return end_; }
  int64_t DurationSeconds() const { return end_ - begin_; }

  bool Contains(AbsTime t) const { return t >= begin_ && t <= end_; }
  bool Contains(const TimeInterval& other) const;
  bool Overlaps(const TimeInterval& other) const;

  // The Allen relation of *this* relative to `other`. For closed intervals
  // that degenerate to instants, the classification still returns the
  // closest matching relation (equal instants => kEquals).
  AllenRelation RelationTo(const TimeInterval& other) const;

  TimeInterval Intersect(const TimeInterval& other) const;
  TimeInterval Union(const TimeInterval& other) const;

  bool operator==(const TimeInterval& other) const = default;

  std::string ToString() const;

 private:
  AbsTime begin_;
  AbsTime end_;
};

}  // namespace gaea

#endif  // GAEA_SPATIAL_ABSTIME_H_
