#include "spatial/abstime.h"

#include <algorithm>
#include <cstdio>

namespace gaea {

namespace {

constexpr int64_t kSecondsPerDay = 86400;

bool IsLeap(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30,
                                  31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeap(year)) return 29;
  return kDays[month - 1];
}

// Days from 1970-01-01 to year-month-day (proleptic Gregorian).
// Based on Howard Hinnant's civil_from_days inverse.
int64_t DaysFromCivil(int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  int64_t era = (y >= 0 ? y : y - 399) / 400;
  unsigned yoe = static_cast<unsigned>(y - era * 400);
  unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

// Inverse: civil date from days since epoch.
void CivilFromDays(int64_t z, int* year, int* month, int* day) {
  z += 719468;
  int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  unsigned doe = static_cast<unsigned>(z - era * 146097);
  unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  int64_t y = static_cast<int64_t>(yoe) + era * 400;
  unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  unsigned mp = (5 * doy + 2) / 153;
  unsigned d = doy - (153 * mp + 2) / 5 + 1;
  unsigned m = mp + (mp < 10 ? 3 : -9);
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

}  // namespace

StatusOr<AbsTime> AbsTime::FromDate(int year, int month, int day, int hour,
                                    int minute, int second) {
  if (month < 1 || month > 12) {
    return Status::InvalidArgument("month out of range: " +
                                   std::to_string(month));
  }
  if (day < 1 || day > DaysInMonth(year, month)) {
    return Status::InvalidArgument("day out of range: " + std::to_string(day));
  }
  if (hour < 0 || hour > 23 || minute < 0 || minute > 59 || second < 0 ||
      second > 59) {
    return Status::InvalidArgument("time of day out of range");
  }
  int64_t days = DaysFromCivil(year, static_cast<unsigned>(month),
                               static_cast<unsigned>(day));
  return AbsTime(days * kSecondsPerDay + hour * 3600 + minute * 60 + second);
}

std::string AbsTime::ToString() const {
  int64_t days = seconds_ / kSecondsPerDay;
  int64_t rem = seconds_ % kSecondsPerDay;
  if (rem < 0) {
    rem += kSecondsPerDay;
    days -= 1;
  }
  int year, month, day;
  CivilFromDays(days, &year, &month, &day);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02lld:%02lld:%02lld", year,
                month, day, static_cast<long long>(rem / 3600),
                static_cast<long long>((rem % 3600) / 60),
                static_cast<long long>(rem % 60));
  return buf;
}

StatusOr<AbsTime> AbsTime::Deserialize(BinaryReader* r) {
  GAEA_ASSIGN_OR_RETURN(int64_t s, r->GetI64());
  return AbsTime(s);
}

const char* AllenRelationName(AllenRelation r) {
  switch (r) {
    case AllenRelation::kBefore: return "before";
    case AllenRelation::kAfter: return "after";
    case AllenRelation::kMeets: return "meets";
    case AllenRelation::kMetBy: return "met-by";
    case AllenRelation::kOverlaps: return "overlaps";
    case AllenRelation::kOverlappedBy: return "overlapped-by";
    case AllenRelation::kStarts: return "starts";
    case AllenRelation::kStartedBy: return "started-by";
    case AllenRelation::kDuring: return "during";
    case AllenRelation::kContains: return "contains";
    case AllenRelation::kFinishes: return "finishes";
    case AllenRelation::kFinishedBy: return "finished-by";
    case AllenRelation::kEquals: return "equals";
  }
  return "unknown";
}

TimeInterval::TimeInterval(AbsTime begin, AbsTime end)
    : begin_(std::min(begin, end)), end_(std::max(begin, end)) {}

bool TimeInterval::Contains(const TimeInterval& other) const {
  return other.begin_ >= begin_ && other.end_ <= end_;
}

bool TimeInterval::Overlaps(const TimeInterval& other) const {
  return begin_ <= other.end_ && other.begin_ <= end_;
}

AllenRelation TimeInterval::RelationTo(const TimeInterval& other) const {
  if (begin_ == other.begin_ && end_ == other.end_) {
    return AllenRelation::kEquals;
  }
  if (end_ < other.begin_) return AllenRelation::kBefore;
  if (begin_ > other.end_) return AllenRelation::kAfter;
  if (end_ == other.begin_) return AllenRelation::kMeets;
  if (begin_ == other.end_) return AllenRelation::kMetBy;
  if (begin_ == other.begin_) {
    return end_ < other.end_ ? AllenRelation::kStarts
                             : AllenRelation::kStartedBy;
  }
  if (end_ == other.end_) {
    return begin_ > other.begin_ ? AllenRelation::kFinishes
                                 : AllenRelation::kFinishedBy;
  }
  if (begin_ > other.begin_ && end_ < other.end_) {
    return AllenRelation::kDuring;
  }
  if (begin_ < other.begin_ && end_ > other.end_) {
    return AllenRelation::kContains;
  }
  return begin_ < other.begin_ ? AllenRelation::kOverlaps
                               : AllenRelation::kOverlappedBy;
}

TimeInterval TimeInterval::Intersect(const TimeInterval& other) const {
  if (!Overlaps(other)) return TimeInterval();
  return TimeInterval(std::max(begin_, other.begin_),
                      std::min(end_, other.end_));
}

TimeInterval TimeInterval::Union(const TimeInterval& other) const {
  return TimeInterval(std::min(begin_, other.begin_),
                      std::max(end_, other.end_));
}

std::string TimeInterval::ToString() const {
  return "[" + begin_.ToString() + ", " + end_.ToString() + "]";
}

}  // namespace gaea
