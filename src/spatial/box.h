// Axis-aligned bounding box: the `box` primitive class used for the
// SPATIAL EXTENT attribute of every non-primitive Gaea class (paper §2.1.1,
// landcover example). Coordinates are interpreted in the reference system of
// the class (`ref_system` attribute): e.g. degrees for long/lat, meters for
// UTM.

#ifndef GAEA_SPATIAL_BOX_H_
#define GAEA_SPATIAL_BOX_H_

#include <optional>
#include <string>

#include "util/serialize.h"
#include "util/status.h"

namespace gaea {

// Closed rectangle [x_min, x_max] x [y_min, y_max].
class Box {
 public:
  // Default: the empty box (contains nothing, overlaps nothing).
  Box() = default;

  // Builds a box; corners may be given in any order.
  Box(double x0, double y0, double x1, double y1);

  static Box Empty() { return Box(); }

  bool empty() const { return empty_; }
  double x_min() const { return x_min_; }
  double y_min() const { return y_min_; }
  double x_max() const { return x_max_; }
  double y_max() const { return y_max_; }

  double width() const { return empty_ ? 0.0 : x_max_ - x_min_; }
  double height() const { return empty_ ? 0.0 : y_max_ - y_min_; }
  double Area() const { return width() * height(); }

  // Closed-interval point containment.
  bool Contains(double x, double y) const;
  // True when `other` lies entirely within this box. The empty box is
  // contained by every box.
  bool Contains(const Box& other) const;
  // Closed-interval overlap (shared edges count). This is the paper's
  // `common(bands.spatialextent)` guard when extents must overlap.
  bool Overlaps(const Box& other) const;

  // Intersection (empty when disjoint) and bounding union.
  Box Intersect(const Box& other) const;
  Box Union(const Box& other) const;

  // Intersection-over-union in [0,1]; 0 for disjoint or empty operands.
  double Jaccard(const Box& other) const;

  bool operator==(const Box& other) const;
  bool operator!=(const Box& other) const { return !(*this == other); }

  std::string ToString() const;

  void Serialize(BinaryWriter* w) const;
  static StatusOr<Box> Deserialize(BinaryReader* r);

 private:
  bool empty_ = true;
  double x_min_ = 0, y_min_ = 0, x_max_ = 0, y_max_ = 0;
};

}  // namespace gaea

#endif  // GAEA_SPATIAL_BOX_H_
