#include "spatial/box.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace gaea {

Box::Box(double x0, double y0, double x1, double y1)
    : empty_(false),
      x_min_(std::min(x0, x1)),
      y_min_(std::min(y0, y1)),
      x_max_(std::max(x0, x1)),
      y_max_(std::max(y0, y1)) {}

bool Box::Contains(double x, double y) const {
  if (empty_) return false;
  return x >= x_min_ && x <= x_max_ && y >= y_min_ && y <= y_max_;
}

bool Box::Contains(const Box& other) const {
  if (other.empty_) return true;
  if (empty_) return false;
  return other.x_min_ >= x_min_ && other.x_max_ <= x_max_ &&
         other.y_min_ >= y_min_ && other.y_max_ <= y_max_;
}

bool Box::Overlaps(const Box& other) const {
  if (empty_ || other.empty_) return false;
  return x_min_ <= other.x_max_ && other.x_min_ <= x_max_ &&
         y_min_ <= other.y_max_ && other.y_min_ <= y_max_;
}

Box Box::Intersect(const Box& other) const {
  if (!Overlaps(other)) return Box::Empty();
  return Box(std::max(x_min_, other.x_min_), std::max(y_min_, other.y_min_),
             std::min(x_max_, other.x_max_), std::min(y_max_, other.y_max_));
}

Box Box::Union(const Box& other) const {
  if (empty_) return other;
  if (other.empty_) return *this;
  return Box(std::min(x_min_, other.x_min_), std::min(y_min_, other.y_min_),
             std::max(x_max_, other.x_max_), std::max(y_max_, other.y_max_));
}

double Box::Jaccard(const Box& other) const {
  Box inter = Intersect(other);
  if (inter.empty()) return 0.0;
  double union_area = Area() + other.Area() - inter.Area();
  if (union_area <= 0.0) {
    // Degenerate (zero-area) boxes that coincide: treat as identical.
    return 1.0;
  }
  return inter.Area() / union_area;
}

bool Box::operator==(const Box& other) const {
  if (empty_ && other.empty_) return true;
  if (empty_ != other.empty_) return false;
  return x_min_ == other.x_min_ && y_min_ == other.y_min_ &&
         x_max_ == other.x_max_ && y_max_ == other.y_max_;
}

std::string Box::ToString() const {
  if (empty_) return "box(empty)";
  std::ostringstream os;
  os << "box(" << x_min_ << "," << y_min_ << "," << x_max_ << "," << y_max_
     << ")";
  return os.str();
}

void Box::Serialize(BinaryWriter* w) const {
  w->PutBool(empty_);
  w->PutF64(x_min_);
  w->PutF64(y_min_);
  w->PutF64(x_max_);
  w->PutF64(y_max_);
}

StatusOr<Box> Box::Deserialize(BinaryReader* r) {
  GAEA_ASSIGN_OR_RETURN(bool empty, r->GetBool());
  GAEA_ASSIGN_OR_RETURN(double x0, r->GetF64());
  GAEA_ASSIGN_OR_RETURN(double y0, r->GetF64());
  GAEA_ASSIGN_OR_RETURN(double x1, r->GetF64());
  GAEA_ASSIGN_OR_RETURN(double y1, r->GetF64());
  if (empty) return Box::Empty();
  return Box(x0, y0, x1, y1);
}

}  // namespace gaea
