#include "spatial/ref_system.h"

#include <cmath>

#include "util/string_util.h"

namespace gaea {

namespace {
// Meters per degree of latitude on the WGS84-ish sphere.
constexpr double kMetersPerDegree = 111320.0;
constexpr double kPi = 3.14159265358979323846;
}  // namespace

StatusOr<RefSystem> RefSystemFromString(const std::string& s) {
  std::string lower = StrToLower(StrTrim(s));
  if (lower == "long/lat" || lower == "longlat" || lower == "lat/long" ||
      lower == "geographic") {
    return RefSystem::kLongLat;
  }
  if (lower == "utm") return RefSystem::kUtm;
  if (lower == "local" || lower == "localgrid" || lower == "grid") {
    return RefSystem::kLocalGrid;
  }
  return Status::InvalidArgument("unknown reference system: " + s);
}

const char* RefSystemName(RefSystem rs) {
  switch (rs) {
    case RefSystem::kLongLat: return "long/lat";
    case RefSystem::kUtm: return "utm";
    case RefSystem::kLocalGrid: return "local";
  }
  return "unknown";
}

const char* RefSystemUnit(RefSystem rs) {
  switch (rs) {
    case RefSystem::kLongLat: return "degree";
    case RefSystem::kUtm: return "meter";
    case RefSystem::kLocalGrid: return "meter";
  }
  return "unknown";
}

StatusOr<Box> ConvertBox(const Box& box, RefSystem from, RefSystem to,
                         double anchor_lat_deg) {
  if (from == to) return box;
  if (box.empty()) return Box::Empty();
  double cos_lat = std::cos(anchor_lat_deg * kPi / 180.0);
  if (cos_lat <= 1e-9) {
    return Status::InvalidArgument("anchor latitude too close to the pole");
  }
  // Treat UTM and the local grid as interchangeable metric systems.
  bool from_deg = from == RefSystem::kLongLat;
  bool to_deg = to == RefSystem::kLongLat;
  if (from_deg == to_deg) return box;  // meter <-> meter
  if (from_deg) {
    return Box(box.x_min() * kMetersPerDegree * cos_lat,
               box.y_min() * kMetersPerDegree,
               box.x_max() * kMetersPerDegree * cos_lat,
               box.y_max() * kMetersPerDegree);
  }
  return Box(box.x_min() / (kMetersPerDegree * cos_lat),
             box.y_min() / kMetersPerDegree,
             box.x_max() / (kMetersPerDegree * cos_lat),
             box.y_max() / kMetersPerDegree);
}

}  // namespace gaea
