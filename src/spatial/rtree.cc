#include "spatial/rtree.h"

#include <algorithm>
#include <limits>

namespace gaea {

// Leaf entries carry (box, value); internal entries carry (box, child).
struct RTree::Entry {
  Box box;
  uint64_t value = 0;
  std::unique_ptr<Node> child;
};

struct RTree::Node {
  bool leaf = true;
  Node* parent = nullptr;
  std::vector<Entry> entries;
};

RTree::RTree(int max_entries)
    : max_entries_(std::max(max_entries, 4)),
      min_entries_(std::max(max_entries, 4) / 2),
      root_(std::make_unique<Node>()) {}

RTree::~RTree() = default;

Box RTree::NodeMbr(const Node& node) {
  Box mbr;
  for (const Entry& entry : node.entries) mbr = mbr.Union(entry.box);
  return mbr;
}

RTree::Node* RTree::ChooseLeaf(Node* node, const Box& box) const {
  while (!node->leaf) {
    // Guttman: child needing least area enlargement; ties by smaller area.
    Entry* best = nullptr;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (Entry& entry : node->entries) {
      double area = entry.box.Area();
      double enlarged = entry.box.Union(box).Area() - area;
      if (enlarged < best_enlargement ||
          (enlarged == best_enlargement && area < best_area)) {
        best_enlargement = enlarged;
        best_area = area;
        best = &entry;
      }
    }
    node = best->child.get();
  }
  return node;
}

void RTree::SplitNode(Node* node) {
  // Quadratic split: pick the pair wasting the most area as seeds.
  std::vector<Entry> entries = std::move(node->entries);
  node->entries.clear();
  size_t seed_a = 0, seed_b = 1;
  double worst = -1;
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      double waste = entries[i].box.Union(entries[j].box).Area() -
                     entries[i].box.Area() - entries[j].box.Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  auto sibling = std::make_unique<Node>();
  sibling->leaf = node->leaf;

  Box mbr_a = entries[seed_a].box;
  Box mbr_b = entries[seed_b].box;
  std::vector<Entry> group_a, group_b;
  group_a.push_back(std::move(entries[seed_a]));
  group_b.push_back(std::move(entries[seed_b]));
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i == seed_a || i == seed_b) continue;
    Entry& entry = entries[i];
    size_t remaining = entries.size() - i;
    // Force assignment when a group must take all the rest to reach min.
    if (group_a.size() + remaining <= static_cast<size_t>(min_entries_)) {
      mbr_a = mbr_a.Union(entry.box);
      group_a.push_back(std::move(entry));
      continue;
    }
    if (group_b.size() + remaining <= static_cast<size_t>(min_entries_)) {
      mbr_b = mbr_b.Union(entry.box);
      group_b.push_back(std::move(entry));
      continue;
    }
    double grow_a = mbr_a.Union(entry.box).Area() - mbr_a.Area();
    double grow_b = mbr_b.Union(entry.box).Area() - mbr_b.Area();
    if (grow_a < grow_b || (grow_a == grow_b && group_a.size() < group_b.size())) {
      mbr_a = mbr_a.Union(entry.box);
      group_a.push_back(std::move(entry));
    } else {
      mbr_b = mbr_b.Union(entry.box);
      group_b.push_back(std::move(entry));
    }
  }

  node->entries = std::move(group_a);
  sibling->entries = std::move(group_b);
  for (Entry& entry : node->entries) {
    if (entry.child) entry.child->parent = node;
  }
  Node* sibling_raw = sibling.get();
  for (Entry& entry : sibling_raw->entries) {
    if (entry.child) entry.child->parent = sibling_raw;
  }

  if (node->parent == nullptr) {
    // Grow a new root.
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    auto old_root = std::move(root_);
    old_root->parent = new_root.get();
    sibling_raw->parent = new_root.get();
    Entry left;
    left.box = NodeMbr(*old_root);
    left.child = std::move(old_root);
    Entry right;
    right.box = NodeMbr(*sibling_raw);
    right.child = std::move(sibling);
    new_root->entries.push_back(std::move(left));
    new_root->entries.push_back(std::move(right));
    root_ = std::move(new_root);
    return;
  }

  Node* parent = node->parent;
  // Refresh the existing child entry's MBR.
  for (Entry& entry : parent->entries) {
    if (entry.child.get() == node) {
      entry.box = NodeMbr(*node);
      break;
    }
  }
  sibling_raw->parent = parent;
  Entry added;
  added.box = NodeMbr(*sibling_raw);
  added.child = std::move(sibling);
  parent->entries.push_back(std::move(added));
  if (parent->entries.size() > static_cast<size_t>(max_entries_)) {
    SplitNode(parent);
  } else {
    AdjustUpward(parent);
  }
}

void RTree::AdjustUpward(Node* node) {
  while (node->parent != nullptr) {
    Node* parent = node->parent;
    for (Entry& entry : parent->entries) {
      if (entry.child.get() == node) {
        entry.box = NodeMbr(*node);
        break;
      }
    }
    node = parent;
  }
}

Status RTree::Insert(const Box& box, uint64_t value) {
  if (box.empty()) {
    return Status::InvalidArgument(
        "cannot index an empty extent (it would never match region queries)");
  }
  Node* leaf = ChooseLeaf(root_.get(), box);
  Entry entry;
  entry.box = box;
  entry.value = value;
  leaf->entries.push_back(std::move(entry));
  ++size_;
  if (leaf->entries.size() > static_cast<size_t>(max_entries_)) {
    SplitNode(leaf);
  } else {
    AdjustUpward(leaf);
  }
  return Status::OK();
}

Status RTree::Remove(const Box& box, uint64_t value) {
  // Find the leaf containing the exact entry by guided search.
  Node* found_leaf = nullptr;
  size_t found_idx = 0;
  std::vector<Node*> stack{root_.get()};
  while (!stack.empty() && found_leaf == nullptr) {
    Node* node = stack.back();
    stack.pop_back();
    for (size_t i = 0; i < node->entries.size(); ++i) {
      Entry& entry = node->entries[i];
      if (node->leaf) {
        if (entry.value == value && entry.box == box) {
          found_leaf = node;
          found_idx = i;
          break;
        }
      } else if (entry.box.Overlaps(box) || entry.box.Contains(box)) {
        stack.push_back(entry.child.get());
      }
    }
  }
  if (found_leaf == nullptr) {
    return Status::NotFound("rtree entry not found");
  }
  found_leaf->entries.erase(found_leaf->entries.begin() + found_idx);
  --size_;
  // Lazy deletion: underfull nodes are tolerated (append-mostly workload);
  // ancestor MBRs are tightened.
  AdjustUpward(found_leaf);
  return Status::OK();
}

Status RTree::Search(
    const Box& query,
    const std::function<Status(const Box&, uint64_t)>& fn) const {
  if (query.empty()) return Status::OK();
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const Entry& entry : node->entries) {
      if (!entry.box.Overlaps(query)) continue;
      if (node->leaf) {
        GAEA_RETURN_IF_ERROR(fn(entry.box, entry.value));
      } else {
        stack.push_back(entry.child.get());
      }
    }
  }
  return Status::OK();
}

std::vector<uint64_t> RTree::SearchValues(const Box& query) const {
  std::vector<uint64_t> out;
  (void)Search(query, [&out](const Box&, uint64_t value) {
    out.push_back(value);
    return Status::OK();
  });
  std::sort(out.begin(), out.end());
  return out;
}

int RTree::height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->entries.front().child.get();
    ++h;
  }
  return h;
}

Status RTree::CheckInvariants() const {
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const Entry& entry : node->entries) {
      if (!node->leaf) {
        if (entry.child == nullptr) {
          return Status::Internal("internal entry without child");
        }
        if (entry.child->parent != node) {
          return Status::Internal("child/parent link broken");
        }
        Box child_mbr = NodeMbr(*entry.child);
        if (!entry.box.Contains(child_mbr)) {
          return Status::Internal("entry MBR does not contain child MBR");
        }
        stack.push_back(entry.child.get());
      } else if (entry.child != nullptr) {
        return Status::Internal("leaf entry with child pointer");
      }
    }
  }
  return Status::OK();
}

}  // namespace gaea
